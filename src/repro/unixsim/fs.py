"""An in-memory Unix-like filesystem.

The paper's third class of porting problem is workstation assumptions
like "a filesystem with nearly unlimited capacity (e.g., for keeping a
log)" -- something the RMC2000 simply lacks.  The Unix build profile of
issl reads key material from files and appends to a log through this
module; the embedded profile has no filesystem at all, and its logging
is a circular buffer (:mod:`repro.issl.log`).
"""

from __future__ import annotations


class FsError(OSError):
    """Raised on missing files, bad modes, or a full disk."""


class FileHandle:
    """An open file with a cursor, like a Unix file descriptor."""

    def __init__(self, fs: "FileSystem", path: str, mode: str):
        if mode not in ("r", "w", "a", "r+"):
            raise FsError(f"bad mode {mode!r}")
        self._fs = fs
        self.path = path
        self.mode = mode
        self.closed = False
        if mode == "w":
            fs._files[path] = bytearray()
        elif path not in fs._files:
            if mode == "r" or mode == "r+":
                raise FsError(f"no such file: {path}")
            fs._files[path] = bytearray()
        self._offset = len(fs._files[path]) if mode == "a" else 0

    def read(self, nbytes: int | None = None) -> bytes:
        self._check_open()
        if self.mode in ("w", "a"):
            raise FsError(f"file {self.path} not open for reading")
        data = self._fs._files[self.path]
        if nbytes is None:
            nbytes = len(data) - self._offset
        chunk = bytes(data[self._offset: self._offset + nbytes])
        self._offset += len(chunk)
        return chunk

    def write(self, data: bytes) -> int:
        self._check_open()
        if self.mode == "r":
            raise FsError(f"file {self.path} not open for writing")
        self._fs._charge(len(data))
        buf = self._fs._files[self.path]
        end = self._offset + len(data)
        if self._offset == len(buf):
            buf += data
        else:
            buf[self._offset: end] = data
        self._offset = end
        return len(data)

    def seek(self, offset: int) -> None:
        self._check_open()
        if offset < 0:
            raise FsError("negative seek")
        self._offset = offset

    def tell(self) -> int:
        return self._offset

    def close(self) -> None:
        self.closed = True

    def _check_open(self) -> None:
        if self.closed:
            raise FsError(f"I/O on closed file {self.path}")

    def __enter__(self) -> "FileHandle":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class FileSystem:
    """Path -> bytes store with an optional capacity ceiling.

    ``capacity=None`` models the workstation's "nearly unlimited" disk;
    a finite capacity lets tests demonstrate why append-forever logging
    cannot survive a port.
    """

    def __init__(self, capacity: int | None = None):
        self._files: dict[str, bytearray] = {}
        self.capacity = capacity
        self.bytes_written = 0

    def _charge(self, nbytes: int) -> None:
        self.bytes_written += nbytes
        if self.capacity is not None and self.total_size() + nbytes > self.capacity:
            raise FsError("disk full")

    def open(self, path: str, mode: str = "r") -> FileHandle:
        return FileHandle(self, path, mode)

    def exists(self, path: str) -> bool:
        return path in self._files

    def unlink(self, path: str) -> None:
        if path not in self._files:
            raise FsError(f"no such file: {path}")
        del self._files[path]

    def listdir(self, prefix: str = "") -> list[str]:
        return sorted(p for p in self._files if p.startswith(prefix))

    def size(self, path: str) -> int:
        if path not in self._files:
            raise FsError(f"no such file: {path}")
        return len(self._files[path])

    def total_size(self) -> int:
        return sum(len(data) for data in self._files.values())

    def write_file(self, path: str, data: bytes) -> None:
        """Convenience: create/overwrite ``path`` with ``data``."""
        with self.open(path, "w") as fh:
            fh.write(data)

    def read_file(self, path: str) -> bytes:
        with self.open(path, "r") as fh:
            return fh.read()
