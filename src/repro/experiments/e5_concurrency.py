"""E5: the three-connection ceiling (paper, Section 5.3 / Figure 3).

"to handle multiple connections and processes, we split the application
into four processes: three processes to handle requests (allowing a
maximum of three connections), and one to drive the TCP stack. ... We
could easily increase the number of processes (and hence simultaneous
connections) by adding more costatements, but the program would have to
be re-compiled."

M clients connect at once, each running a fixed request load.  With 3
handler costatements at most 3 sessions are ever live concurrently; a
4th client waits for a slot, which shows up as a completion-time step.
"Recompiling" with 5 costatements removes the step.
"""

from __future__ import annotations

import dataclasses

from repro.crypto.demokeys import DEMO_PSK
from repro.crypto.prng import CipherRng
from repro.experiments.harness import ExperimentResult
from repro.issl import FREE, IsslContext, RMC2000_PORT, UNIX_FULL
from repro.net.dynctcp import DyncTcpStack
from repro.net.host import build_lan
from repro.net.sim import Simulator
from repro.services import (
    BACKEND_PORT,
    ClientReport,
    TLS_PORT,
    backend_line_server,
    build_rmc_redirector,
    secure_request_client,
)


def run_scenario(clients: int, handlers: int, requests: int = 20,
                 request_size: int = 256):
    """All ``clients`` connect at t=0 against ``handlers`` costatements.

    Returns (reports, server_context); crypto cost is zeroed so the
    measured delays are pure slot queueing.
    """
    sim = Simulator()
    names = ["rmc", "backend"] + [f"c{i}" for i in range(clients)]
    # Fast LAN: the experiment isolates handler-slot queueing, so the
    # wire must not be the bottleneck (E4 owns the bandwidth story).
    _lan, hosts = build_lan(sim, names, bandwidth_bps=100_000_000)
    stack = DyncTcpStack(hosts["rmc"])
    profile = dataclasses.replace(
        RMC2000_PORT.with_cost_model(FREE), max_sessions=handlers
    )
    context = IsslContext(profile, CipherRng(b"e5"), psk=DEMO_PSK)
    hosts["backend"].spawn(backend_line_server(hosts["backend"]))
    scheduler = build_rmc_redirector(
        stack, context, str(hosts["backend"].ip_address),
        backend_port=BACKEND_PORT, listen_port=TLS_PORT, handlers=handlers,
    )
    scheduler.start()
    reports = []
    processes = []
    for index in range(clients):
        host = hosts[f"c{index}"]
        report = ClientReport(f"c{index}")
        reports.append(report)
        client_context = IsslContext(
            UNIX_FULL, CipherRng(b"e5c%d" % index), psk=DEMO_PSK
        )
        processes.append(host.spawn(secure_request_client(
            host, client_context, str(hosts["rmc"].ip_address), TLS_PORT,
            requests, request_size, report,
        )))
    for process in processes:
        sim.run_until_complete(process, timeout=3600)
    return reports, context


def run_e5(max_clients: int = 5) -> ExperimentResult:
    rows = []
    peaks = {}
    max_waits = {}
    served_all = True
    for clients in range(1, max_clients + 1):
        reports, context = run_scenario(clients, handlers=3)
        finished = [r for r in reports if not r.error]
        completion = max(r.end for r in reports)
        # A queued client's ClientHello sits unanswered until a handler
        # slot frees, so its handshake time *is* its queueing delay.
        max_wait = max(r.handshake_time for r in reports)
        peaks[clients] = context.sessions_peak
        max_waits[clients] = max_wait
        rows.append({
            "clients": clients,
            "handlers": 3,
            "served": len(finished),
            "peak concurrent sessions": context.sessions_peak,
            "worst handshake wait (ms)": round(max_wait * 1000, 2),
            "all done (s)": round(completion, 3),
        })
        if len(finished) != clients:
            served_all = False
    # "Recompile with more costatements": same 5-client load, 5 handlers.
    wide_reports, wide_context = run_scenario(max_clients, handlers=5)
    wide_completion = max(r.end for r in wide_reports)
    wide_wait = max(r.handshake_time for r in wide_reports)
    rows.append({
        "clients": max_clients,
        "handlers": 5,
        "served": len([r for r in wide_reports if not r.error]),
        "peak concurrent sessions": wide_context.sessions_peak,
        "worst handshake wait (ms)": round(wide_wait * 1000, 2),
        "all done (s)": round(wide_completion, 3),
    })
    ceiling_respected = all(
        peaks[m] <= min(m, 3) for m in peaks
    ) and peaks[max_clients] == 3
    wide_peak_rises = wide_context.sessions_peak > 3
    # 4th/5th clients wait a full service turn; with 5 handlers they don't.
    queue_step = max_waits[4] / max(max_waits[3], 1e-9)
    recompile_relief = max_waits[max_clients] / max(wide_wait, 1e-9)
    reproduced = (
        served_all
        and ceiling_respected
        and wide_peak_rises
        and queue_step > 3.0
        and recompile_relief > 3.0
    )
    metrics = {
        "peak_sessions_3_handlers": peaks[max_clients],
        "peak_sessions_5_handlers": wide_context.sessions_peak,
        "queue_step_ratio": queue_step,
        "recompile_relief_ratio": recompile_relief,
        "worst_wait_ms_at_ceiling": max_waits[max_clients] * 1000,
        "worst_wait_ms_5_handlers": wide_wait * 1000,
        "clients_tested": max_clients,
    }
    return ExperimentResult(
        experiment_id="E5",
        title="Connection concurrency ceiling of the costatement structure",
        metrics=metrics,
        paper_claim=(
            "three handler costatements allow a maximum of three "
            "connections; more requires recompiling with more costatements"
        ),
        rows=rows,
        summary=(
            f"peak concurrency pinned at 3 with 3 handlers; worst "
            f"handshake wait jumps {queue_step:.1f}x when the 4th client "
            f"arrives; recompiling with 5 handlers cuts that wait "
            f"{recompile_relief:.1f}x and lifts peak concurrency to "
            f"{wide_context.sessions_peak}"
        ),
        reproduced=reproduced,
        notes="crypto cost zeroed so the measured delay is pure queueing",
    )
