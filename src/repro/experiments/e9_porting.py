"""E9: the three porting-problem classes, counted (paper, Section 5).

Runs the static porting analyzer over the reconstructed Unix issl
sources and checks that every problem class and strategy the paper
reports is represented -- including the specific calls the text names
(random, fork, malloc/free, the filesystem, signal, the bignum ops).
"""

from __future__ import annotations

from repro.experiments.harness import ExperimentResult
from repro.porting import ISSL_UNIX_SOURCES, ProblemClass, scan_sources, Strategy


def run_e9() -> ExperimentResult:
    report = scan_sources(ISSL_UNIX_SOURCES)
    by_class = report.by_class()
    by_strategy = report.by_strategy()
    rows = []
    for problem_class in ProblemClass:
        issues = by_class[problem_class]
        symbols = sorted({issue.rule.symbol for issue in issues})
        rows.append({
            "problem class": problem_class.name,
            "occurrences": len(issues),
            "distinct symbols": len(symbols),
            "examples": ", ".join(symbols[:5]),
        })
    named_in_paper = {
        "random", "fork", "malloc", "free", "fopen", "signal",
        "bignum_modexp", "accept", "select",
    }
    found = report.unique_symbols()
    missing = named_in_paper - found
    strategies_used = {s for s in Strategy if by_strategy[s]}
    reproduced = (
        all(by_class[cls] for cls in ProblemClass)
        and not missing
        and strategies_used == set(Strategy)
    )
    metrics = {
        "issue_sites": len(report.issues),
        "files_scanned": report.files_scanned,
        "missing_facility_sites": len(by_class[ProblemClass.MISSING_FACILITY]),
        "different_api_sites": len(by_class[ProblemClass.DIFFERENT_API]),
        "invalid_assumption_sites": len(
            by_class[ProblemClass.INVALID_ASSUMPTION]
        ),
        "paper_named_symbols_missing": len(missing),
        "strategies_used": len(strategies_used),
    }
    return ExperimentResult(
        experiment_id="E9",
        title="Porting-problem census of the Unix issl service",
        metrics=metrics,
        paper_claim=(
            "three broad classes of porting problems; solutions ranged "
            "from reimplementing to reworking to abandoning functionality"
        ),
        rows=rows,
        summary=(
            f"{len(report.issues)} issue sites across "
            f"{report.files_scanned} files; all 3 classes and all 3 "
            f"strategies represented; paper-named symbols all found"
            + (f" (missing: {sorted(missing)})" if missing else "")
        ),
        reproduced=reproduced,
    )
