"""E3: code size vs. speed (paper, Section 6).

"Code size appeared uncorrelated to execution speed.  The assembly
implementation was 9% smaller than the C, but ran more than an order of
magnitude faster."

We measure code bytes (instructions + runtime, tables excluded on both
sides) and cycles/block for the assembly and every E2 compiler variant,
then compute the size/speed correlation across the C variants.
"""

from __future__ import annotations

import math

from repro.experiments.e1_aes import measure_implementation
from repro.experiments.e2_sweep import SWEEP
from repro.experiments.harness import ExperimentResult
from repro.rabbit.board import Board
from repro.rabbit.programs.aes_asm import AesAsm
from repro.rabbit.programs.aes_c import AesC


def _pearson(xs: list[float], ys: list[float]) -> float:
    n = len(xs)
    mx = sum(xs) / n
    my = sum(ys) / n
    cov = sum((x - mx) * (y - my) for x, y in zip(xs, ys))
    vx = math.sqrt(sum((x - mx) ** 2 for x in xs))
    vy = math.sqrt(sum((y - my) ** 2 for y in ys))
    if vx == 0 or vy == 0:
        return 0.0
    return cov / (vx * vy)


def run_e3(keys: int = 1, blocks_per_key: int = 1) -> ExperimentResult:
    rows = []
    sizes = []
    speeds = []
    for label, options in SWEEP:
        measurement = measure_implementation(
            AesC(Board(), options, include_decrypt=False), keys,
            blocks_per_key, label
        )
        rows.append({
            "implementation": f"C: {label}",
            "code bytes": measurement.code_size,
            "cycles/block": round(measurement.cycles_per_block),
        })
        sizes.append(float(measurement.code_size))
        speeds.append(measurement.cycles_per_block)
    asm = measure_implementation(
        AesAsm(Board(), include_decrypt=False), keys, blocks_per_key,
        "assembly"
    )
    rows.append({
        "implementation": "hand assembly",
        "code bytes": asm.code_size,
        "cycles/block": round(asm.cycles_per_block),
    })
    correlation = _pearson(sizes, speeds)
    # The release-build comparison the paper implies: both sides built
    # for speed.  Our 'all optimizations' C variant is the last sweep row.
    best_c_size = rows[-2]["code bytes"]
    best_c_speed = rows[-2]["cycles/block"]
    size_delta = (best_c_size - asm.code_size) / best_c_size * 100
    speed_ratio = best_c_speed / asm.cycles_per_block
    # The operative claim is that size does not predict speed: the
    # assembly is smaller than the release C build yet vastly faster,
    # and across C variants bigger code is certainly not slower code
    # (no positive size->cycles correlation).
    reproduced = correlation < 0.5 and speed_ratio >= 5 and size_delta > 0
    metrics = {
        "pearson_r_size_cycles": correlation,
        "asm_size_delta_pct": size_delta,
        "asm_speed_ratio": speed_ratio,
        "asm_code_bytes": asm.code_size,
        "best_c_code_bytes": best_c_size,
        "best_c_cycles_per_block": float(best_c_speed),
    }
    return ExperimentResult(
        experiment_id="E3",
        title="Code size vs execution speed",
        metrics=metrics,
        paper_claim=(
            "assembly 9% smaller than the C yet >10x faster; size "
            "uncorrelated with speed"
        ),
        rows=rows,
        summary=(
            f"assembly {size_delta:.1f}% smaller than the fastest C build "
            f"while {speed_ratio:.1f}x faster; Pearson r(size, cycles) = "
            f"{correlation:+.2f} across C variants"
        ),
        reproduced=reproduced,
        notes=(
            "sizes exclude the 512 bytes of S-box/xtime tables both "
            "implementations carry; the naive compiler's rolled loops are "
            "denser than the paper's full Dynamic C, so the absolute size "
            "gap differs while the uncorrelated-shape conclusion holds"
        ),
    )
