"""E2: the C-level optimization sweep (paper, Section 6).

"We tried a variety of optimizations on the C code, including moving
data to root memory, unrolling loops, disabling debugging, and enabling
compiler optimization, but this only improved run time by perhaps 20%."

One run per knob (individually) plus all-knobs-on, all over the same
key/block workload as E1.
"""

from __future__ import annotations

from repro.dync.compiler import CompilerOptions
from repro.experiments.e1_aes import measure_implementation
from repro.experiments.harness import ExperimentResult
from repro.obs.profile import CycleProfiler, compiled_function_symbols
from repro.rabbit.board import Board
from repro.rabbit.programs.aes_c import AesC

#: The sweep: label -> options.  The baseline is Dynamic C out of the
#: box (debug on, tables in wait-stated flash).
SWEEP: tuple[tuple[str, CompilerOptions], ...] = (
    ("baseline (debug, flash data)", CompilerOptions()),
    ("+ data to root RAM", CompilerOptions(data_placement="root_ram")),
    ("+ loop unrolling", CompilerOptions(unroll=True)),
    ("+ disable debugging", CompilerOptions(debug=False)),
    ("+ compiler optimization", CompilerOptions(optimize=True)),
    ("data in xmem (worse)", CompilerOptions(data_placement="xmem")),
    (
        "all optimizations",
        CompilerOptions(debug=False, optimize=True, unroll=True,
                        data_placement="root_ram"),
    ),
)


def run_e2(keys: int = 1, blocks_per_key: int = 2,
           profile_routines: bool = True) -> ExperimentResult:
    """Run the sweep; ``profile_routines`` adds per-routine cycle
    attribution for the two interesting endpoints (baseline and
    all-knobs-on) so the 20% can be traced to specific routines."""
    measurements = []
    extra_tables: dict = {}
    profiled = {SWEEP[0][0], SWEEP[-1][0]} if profile_routines else set()
    for label, options in SWEEP:
        implementation = AesC(Board(), options, include_decrypt=False)
        if label in profiled:
            profiler = CycleProfiler(
                implementation.board.cpu,
                compiled_function_symbols(implementation.program.compilation),
            )
            with profiler:
                measurement = measure_implementation(
                    implementation, keys, blocks_per_key, label
                )
            extra_tables[f"{label}: cycles by routine"] = (
                profiler.report_rows(top=6)
            )
        else:
            measurement = measure_implementation(
                implementation, keys, blocks_per_key, label
            )
        measurements.append((label, options, measurement))
    baseline = measurements[0][2].cycles_per_block
    rows = []
    for label, options, measurement in measurements:
        gain = (baseline - measurement.cycles_per_block) / baseline * 100
        rows.append({
            "configuration": label,
            "options": options.describe(),
            "cycles/block": round(measurement.cycles_per_block),
            "vs baseline": f"{gain:+.1f}%",
            "code bytes": measurement.code_size,
        })
    all_on = measurements[-1][2].cycles_per_block
    combined_gain = (baseline - all_on) / baseline * 100
    individual_gains = [
        (baseline - m.cycles_per_block) / baseline * 100
        for label, _opts, m in measurements[1:5]
    ]
    # The paper's finding has two halves: each knob is small, and even
    # all of them together land in the tens of percent -- nowhere near
    # the 10x the assembly buys.
    reproduced = (
        all(gain < 30 for gain in individual_gains)
        and 10 <= combined_gain <= 45
    )
    metrics = {
        "baseline_cycles_per_block": baseline,
        "all_on_cycles_per_block": all_on,
        "combined_gain_pct": combined_gain,
        "min_individual_gain_pct": min(individual_gains),
        "max_individual_gain_pct": max(individual_gains),
        "xmem_cycles_per_block": measurements[5][2].cycles_per_block,
    }
    return ExperimentResult(
        experiment_id="E2",
        title="C optimization sweep: root data, unrolling, nodebug, optimizer",
        paper_claim="all of it together improved run time by perhaps 20%",
        rows=rows,
        metrics=metrics,
        summary=(
            f"individual knobs {min(individual_gains):.1f}%.."
            f"{max(individual_gains):.1f}%, all together "
            f"{combined_gain:.1f}% -- far short of the assembly's 10x+"
        ),
        reproduced=reproduced,
        extra_tables=extra_tables,
    )
