"""E1: the C port of AES vs. hand-coded assembly (paper, Section 6).

"A testbench that pumped keys through the two implementations of the
AES cipher showed the assembly implementation ran faster than the C
port by a factor of [more than an order of magnitude]."

The testbench pumps ``keys`` distinct keys through both implementations
on the cycle-counting Rabbit core: for each key, run the key schedule
and encrypt ``blocks_per_key`` blocks; cross-check every ciphertext
against the Python reference.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.rijndael import Rijndael
from repro.dync.compiler import CompilerOptions
from repro.experiments.harness import ExperimentResult
from repro.obs.profile import (
    CycleProfiler,
    assembly_function_symbols,
    compiled_function_symbols,
)
from repro.rabbit.board import Board, CLOCK_HZ
from repro.rabbit.programs.aes_asm import AesAsm
from repro.rabbit.programs.aes_c import AesC


@dataclass
class AesMeasurement:
    """Cycle counts for one implementation over the whole workload."""

    name: str
    key_schedule_cycles: int
    encrypt_cycles: int
    blocks: int
    code_size: int

    @property
    def cycles_per_block(self) -> float:
        return self.encrypt_cycles / self.blocks

    @property
    def blocks_per_second(self) -> float:
        return CLOCK_HZ / self.cycles_per_block

    @property
    def throughput_bytes_per_second(self) -> float:
        return 16 * self.blocks_per_second


def _workload(keys: int, blocks_per_key: int):
    for key_index in range(keys):
        key = bytes((key_index * 17 + j * 31 + 3) & 0xFF for j in range(16))
        blocks = [
            bytes((key_index + j * 13 + b * 7) & 0xFF for j in range(16))
            for b in range(blocks_per_key)
        ]
        yield key, blocks


def measure_implementation(implementation, keys: int,
                           blocks_per_key: int, name: str) -> AesMeasurement:
    """Pump the workload through one implementation, verifying output."""
    key_cycles = 0
    encrypt_cycles = 0
    total_blocks = 0
    for key, blocks in _workload(keys, blocks_per_key):
        reference = Rijndael(key)
        key_cycles += implementation.set_key(key)
        for block in blocks:
            ciphertext, cycles = implementation.encrypt_block(block)
            if ciphertext != reference.encrypt_block(block):
                raise AssertionError(
                    f"{name}: wrong ciphertext for key={key.hex()}"
                )
            encrypt_cycles += cycles
            total_blocks += 1
    return AesMeasurement(
        name=name,
        key_schedule_cycles=key_cycles,
        encrypt_cycles=encrypt_cycles,
        blocks=total_blocks,
        code_size=implementation.code_size,
    )


def run_e1(keys: int = 2, blocks_per_key: int = 2,
           c_options: CompilerOptions | None = None,
           profile_routines: bool = True) -> ExperimentResult:
    """Run the E1 testbench; returns the result record.

    With ``profile_routines`` (the default) each implementation runs
    under a :class:`repro.obs.profile.CycleProfiler` and the result
    carries per-routine cycle attribution in ``extra_tables`` -- the
    answer to *where* the order of magnitude goes, not just that it
    does.
    """
    c_impl = AesC(Board(), c_options or CompilerOptions(),
                  include_decrypt=False)
    asm_impl = AesAsm(Board(), include_decrypt=False)
    extra_tables: dict = {}
    if profile_routines:
        c_profiler = CycleProfiler(
            c_impl.board.cpu,
            compiled_function_symbols(c_impl.program.compilation),
        )
        asm_profiler = CycleProfiler(
            asm_impl.board.cpu,
            assembly_function_symbols(asm_impl.assembly, prefix="aes_"),
        )
        with c_profiler:
            c_measurement = measure_implementation(
                c_impl, keys, blocks_per_key, "C port (Dynamic C defaults)"
            )
        with asm_profiler:
            asm_measurement = measure_implementation(
                asm_impl, keys, blocks_per_key, "hand assembly"
            )
        extra_tables["C port: cycles by routine"] = c_profiler.report_rows(
            top=8
        )
        extra_tables["hand assembly: cycles by routine"] = (
            asm_profiler.report_rows()
        )
    else:
        c_measurement = measure_implementation(
            c_impl, keys, blocks_per_key, "C port (Dynamic C defaults)"
        )
        asm_measurement = measure_implementation(
            asm_impl, keys, blocks_per_key, "hand assembly"
        )
    ratio = c_measurement.cycles_per_block / asm_measurement.cycles_per_block
    rows = [
        {
            "implementation": m.name,
            "cycles/block": round(m.cycles_per_block),
            "blocks/s @30MHz": round(m.blocks_per_second, 1),
            "KB/s": round(m.throughput_bytes_per_second / 1024, 2),
            "keysched cycles": m.key_schedule_cycles // keys,
            "code bytes": m.code_size,
        }
        for m in (c_measurement, asm_measurement)
    ]
    metrics = {
        "c_cycles_per_block": c_measurement.cycles_per_block,
        "asm_cycles_per_block": asm_measurement.cycles_per_block,
        "asm_over_c_speed_ratio": ratio,
        "c_code_bytes": c_measurement.code_size,
        "asm_code_bytes": asm_measurement.code_size,
        "c_key_schedule_cycles": c_measurement.key_schedule_cycles // keys,
        "asm_key_schedule_cycles": asm_measurement.key_schedule_cycles // keys,
        "c_kb_per_s": c_measurement.throughput_bytes_per_second / 1024,
        "asm_kb_per_s": asm_measurement.throughput_bytes_per_second / 1024,
        "blocks_measured": c_measurement.blocks,
    }
    return ExperimentResult(
        experiment_id="E1",
        title="AES: straightforward C port vs hand-coded assembly",
        paper_claim="assembly faster by more than an order of magnitude",
        rows=rows,
        metrics=metrics,
        summary=f"assembly is {ratio:.1f}x faster than the C port",
        reproduced=ratio >= 10.0,
        notes=(
            "every ciphertext cross-checked against the FIPS-197 "
            "reference implementation"
        ),
        extra_tables=extra_tables,
    )
