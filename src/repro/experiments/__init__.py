"""Experiment runners, one per paper claim (DESIGN.md S15).

Each ``run_eN()`` returns an
:class:`~repro.experiments.harness.ExperimentResult`; ``run_all()``
executes the full battery.  ``python -m repro.experiments`` prints the
whole report.
"""

from repro.experiments.e1_aes import run_e1
from repro.experiments.e2_sweep import run_e2
from repro.experiments.e3_size import run_e3
from repro.experiments.e4_throughput import run_e4
from repro.experiments.e5_concurrency import run_e5
from repro.experiments.e6_api_gap import run_e6
from repro.experiments.e7_memory import run_e7
from repro.experiments.e8_interrupts import run_e8
from repro.experiments.e9_porting import run_e9
from repro.experiments.e10_rsa import run_e10
from repro.experiments.harness import ExperimentResult, format_table

RUNNERS = {
    "E1": run_e1,
    "E2": run_e2,
    "E3": run_e3,
    "E4": run_e4,
    "E5": run_e5,
    "E6": run_e6,
    "E7": run_e7,
    "E8": run_e8,
    "E9": run_e9,
    "E10": run_e10,
}


def run_all() -> list[ExperimentResult]:
    """Run every experiment in order; returns the result records."""
    return [runner() for runner in RUNNERS.values()]


__all__ = [
    "ExperimentResult",
    "RUNNERS",
    "format_table",
    "run_all",
    "run_e1",
    "run_e2",
    "run_e3",
    "run_e4",
    "run_e5",
    "run_e6",
    "run_e7",
    "run_e8",
    "run_e9",
    "run_e10",
]
