"""E8: interrupt-driven serial debugging (paper, Section 5.1).

The firmware of :mod:`repro.rabbit.programs.serial_debug` runs on the
emulated board; we measure ISR entry latency in cycles and exercise the
status/reset command protocol the paper describes.
"""

from __future__ import annotations

from repro.experiments.harness import ExperimentResult
from repro.rabbit.board import Board, CLOCK_HZ
from repro.rabbit.programs.serial_debug import SerialDebugMonitor


def _parse_status(reply: bytes) -> int:
    """'S' + little-endian 16-bit counter."""
    if len(reply) != 3 or reply[:1] != b"S":
        return -1
    return reply[1] | (reply[2] << 8)


def run_e8() -> ExperimentResult:
    board = Board()
    monitor = SerialDebugMonitor(board)
    monitor.boot()

    latencies = []
    for _ in range(5):
        latencies.append(monitor.interrupt_latency())
        board.run_cycles(2000)  # let the ISR run to completion

    # Let the main loop accumulate work, then ask for status.
    board.run_cycles(150_000)
    status_before = _parse_status(monitor.send_command(b"s"))
    reset_reply = monitor.send_command(b"r")
    status_after = _parse_status(monitor.send_command(b"s", run_cycles=1500))
    warm_reply = monitor.send_command(b"R")
    ignored_reply = monitor.send_command(b"x")

    mean_latency = sum(latencies) / len(latencies)
    rows = [
        {"measure": "ISR entry latency (cycles)",
         "value": f"{min(latencies)}..{max(latencies)}",
         "note": f"{mean_latency / CLOCK_HZ * 1e6:.2f} us mean at 30 MHz"},
        {"measure": "status ('s') before reset",
         "value": status_before,
         "note": "counter after 150k cycles of main loop"},
        {"measure": "reset command ('r')",
         "value": reset_reply.decode(errors="replace"),
         "note": "acknowledged with 'Z'"},
        {"measure": "status ('s') after reset",
         "value": status_after,
         "note": "counter restarted near zero"},
        {"measure": "warm reset ('R') keeps state",
         "value": warm_reply.decode(errors="replace"),
         "note": f"saved counter = {monitor.saved_counter}"},
        {"measure": "unknown command",
         "value": ignored_reply.decode(errors="replace") or "(no reply)",
         "note": "errors mostly ignored, per the paper"},
    ]
    reproduced = (
        status_before > 500
        and 0 <= status_after < status_before // 2
        and reset_reply == b"Z"
        and warm_reply == b"K"
        and ignored_reply == b""
        and monitor.saved_counter > 0
        and max(latencies) <= 30
    )
    metrics = {
        "isr_latency_min_cycles": min(latencies),
        "isr_latency_max_cycles": max(latencies),
        "isr_latency_mean_us": mean_latency / CLOCK_HZ * 1e6,
        "status_counter_before_reset": status_before,
        "status_counter_after_reset": status_after,
        "saved_counter_after_warm_reset": monitor.saved_counter,
    }
    return ExperimentResult(
        experiment_id="E8",
        title="Interrupt-driven serial debug channel",
        metrics=metrics,
        paper_claim=(
            "serial port interrupts the processor on each character; the "
            "system replies with status or resets, possibly keeping state"
        ),
        rows=rows,
        summary=(
            f"ISR latency {min(latencies)}-{max(latencies)} cycles "
            f"({mean_latency / CLOCK_HZ * 1e6:.2f} us); status counter "
            f"{status_before} -> reset -> {status_after}; warm reset "
            f"preserves state in {monitor.saved_counter}"
        ),
        reproduced=reproduced,
    )
