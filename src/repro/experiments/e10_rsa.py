"""E10: why the port dropped RSA (paper, Sections 2 and 5).

"Because the RSA algorithm uses a difficult-to-port bignum package, we
only ported the AES cipher" ... "our final port did not implement the
RSA cipher because it relied on a fairly complex bignum library that we
considered too complicated to rework."

The paper never measures what reworking would have bought, so this
experiment does: a clean straightforward-port bignum (byte limbs,
division-free modular multiply) compiled by the Dynamic C subset
compiler and run on the cycle-counting board at several operand widths.
Modexp cost scales as O(bits^3); extrapolating the measurements to the
RSA-512 private operation of a real handshake shows minutes per
connection naive -- and still tens of seconds even granting the full
25x hand-assembly speedup E1 measured -- against ~20 ms on the
workstation.  Abandoning RSA (PSK mode) was the only shippable choice.
"""

from __future__ import annotations

from repro.experiments.harness import ExperimentResult
from repro.issl.costmodel import WORKSTATION
from repro.rabbit.board import Board, CLOCK_HZ
from repro.rabbit.programs.rsa_c import RsaC

#: E1's measured hand-assembly speedup, granted as best-case credit.
E1_ASSEMBLY_SPEEDUP = 25.0

#: Test operands per width (base, exponent, modulus); exponents have
#: full width so the measurement reflects a private-key-shaped op.
_CASES = {
    2: (0x1234, 0xFFF1, 0xFFF1 + 0x0A),     # 16-bit
    3: (0x123456, 0xFFFFF1, 0xFFFFFB),      # 24-bit
    4: (0x12345678, 0xFFFFFFF1, 0xFFFFFFFB),  # 32-bit
}


def measure_widths(widths=(2, 3, 4)) -> dict[int, int]:
    """Measured modexp cycles per operand width (bytes), cross-checked
    against Python's pow()."""
    cycles_by_width = {}
    for width in widths:
        base, exponent, modulus = _CASES[width]
        implementation = RsaC(Board(), n_bytes=width)
        result, cycles = implementation.modexp(base % modulus, exponent,
                                               modulus)
        expected = pow(base % modulus, exponent, modulus)
        if result != expected:
            raise AssertionError(f"modexp wrong at width {width}")
        cycles_by_width[width] = cycles
    return cycles_by_width


def run_e10(widths: tuple[int, ...] = (2, 3, 4)) -> ExperimentResult:
    cycles_by_width = measure_widths(widths)
    rows = []
    for width, cycles in cycles_by_width.items():
        rows.append({
            "operand bits": 8 * width,
            "modexp cycles": cycles,
            "seconds @30MHz": round(cycles / CLOCK_HZ, 3),
        })
    # Extrapolate bits^3 from the widest measurement.
    base_bits = 8 * max(cycles_by_width)
    base_cycles = cycles_by_width[max(cycles_by_width)]
    rsa512_cycles = base_cycles * (512 / base_bits) ** 3
    rsa512_naive_s = rsa512_cycles / CLOCK_HZ
    rsa512_asm_s = rsa512_naive_s / E1_ASSEMBLY_SPEEDUP
    workstation_s = WORKSTATION.rsa_private_seconds()
    rows.append({
        "operand bits": 512,
        "modexp cycles": round(rsa512_cycles),
        "seconds @30MHz": round(rsa512_naive_s, 1),
    })
    # Scaling sanity: cycles must grow super-quadratically in bits.
    narrow = min(cycles_by_width)
    wide = max(cycles_by_width)
    growth = cycles_by_width[wide] / cycles_by_width[narrow]
    # Normalize to the doubled-width growth the full sweep measures so
    # subset runs (quick workloads) judge against the same bar.
    width_factor = wide / narrow
    cubic_like = growth > 4.5 * (width_factor / 2.0) ** 2
    reproduced = (
        cubic_like
        and rsa512_naive_s > 300
        and rsa512_asm_s > 10
        and rsa512_asm_s / workstation_s > 100
    )
    metrics = {
        f"modexp_cycles_{8 * width}b": cycles
        for width, cycles in cycles_by_width.items()
    }
    metrics.update({
        "rsa512_cycles_extrapolated": rsa512_cycles,
        "rsa512_naive_seconds": rsa512_naive_s,
        "rsa512_asm_seconds": rsa512_asm_s,
        "workstation_seconds": workstation_s,
        "growth_ratio": growth,
    })
    return ExperimentResult(
        experiment_id="E10",
        title="The RSA private op on the Rabbit: why the port dropped RSA",
        metrics=metrics,
        paper_claim=(
            "RSA not ported: the bignum package was 'too complicated to "
            "rework' -- the port keeps only the AES cipher"
        ),
        rows=rows,
        summary=(
            f"RSA-512 private op extrapolates to {rsa512_naive_s / 60:.0f} "
            f"minutes on the 30 MHz Rabbit as a straightforward port, and "
            f"~{rsa512_asm_s:.0f} s even granting E1's {E1_ASSEMBLY_SPEEDUP:.0f}x "
            f"assembly speedup, vs {workstation_s * 1000:.0f} ms on the "
            f"workstation -- per connection; abandoning RSA was the only "
            f"shippable option"
        ),
        reproduced=reproduced,
        notes=(
            "every board result cross-checked against Python pow(); "
            "extrapolation is cubic in modulus bits from the 32-bit "
            "measurement"
        ),
    )
