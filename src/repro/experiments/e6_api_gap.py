"""E6: the API gap of Figure 2 -- same echo server, two APIs.

Both echo servers run against identical clients on the simulated
network; the payloads must match byte for byte, while the API-call
inventories (taken from the servers' actual source) differ in exactly
the ways the paper's Figure 2 shows.
"""

from __future__ import annotations

import inspect
import re

from repro.dync.runtime.costate import CostateScheduler
from repro.experiments.harness import ExperimentResult
from repro.net.dynctcp import DyncTcpStack
from repro.net.host import build_lan
from repro.net.sim import Simulator
from repro.porting.api_map import RULE_INDEX
from repro.services.echo import bsd_echo_server, dync_echo_costate, echo_client

#: The API symbols each style uses, harvested from the service source.
_BSD_CALLS = ("socket", "bind", "listen", "accept", "recv", "sendall", "close")
_DYNC_CALLS = (
    "sock_init", "tcp_listen", "sock_wait_established", "sock_mode",
    "tcp_tick", "sock_gets", "sock_puts", "sock_close",
)


def _calls_in(function) -> set[str]:
    source = inspect.getsource(function)
    return set(re.findall(r"\b([a-z_][a-z0-9_]*)\s*\(", source))


def run_echo_pair(message: bytes = b"hello, embedded world"):
    """Run both servers against the same client; returns both echoes."""
    # BSD flavour.
    sim = Simulator()
    _lan, hosts = build_lan(sim, ["server", "client"])
    hosts["server"].spawn(bsd_echo_server(hosts["server"], 7))
    results: dict[str, bytes] = {}
    process = hosts["client"].spawn(echo_client(
        hosts["client"], "10.0.0.1", 7, message, results, "bsd"
    ))
    sim.run_until_complete(process, timeout=600)

    # Dynamic C flavour: costatements need the big-loop scheduler.
    sim2 = Simulator()
    _lan2, hosts2 = build_lan(sim2, ["rmc", "client"])
    stack = DyncTcpStack(hosts2["rmc"])
    scheduler = CostateScheduler(sim2)
    scheduler.add(dync_echo_costate(stack, 7), name="echo")
    scheduler.start()
    process2 = hosts2["client"].spawn(echo_client(
        hosts2["client"], "10.0.0.1", 7, message, results, "dync"
    ))
    sim2.run_until_complete(process2, timeout=600)
    return results


def run_e6() -> ExperimentResult:
    message = b"figure two, both halves"
    results = run_echo_pair(message)
    behaviour_equal = (
        results.get("bsd") == results.get("dync") == message + b"\n"
    )
    bsd_used = _calls_in(bsd_echo_server)
    dync_used = _calls_in(dync_echo_costate)
    shared = sorted(
        c for c in bsd_used & dync_used
        if c in set(_BSD_CALLS) | set(_DYNC_CALLS)
    )
    rows = []
    for bsd_call in _BSD_CALLS:
        rule = RULE_INDEX.get(bsd_call.replace("sendall", "send"))
        rows.append({
            "BSD call": bsd_call,
            "in BSD server": "yes" if bsd_call in bsd_used else "no",
            "Dynamic C analogue": rule.replacement if rule else "-",
        })
    dync_only = sorted(set(_DYNC_CALLS) & dync_used - bsd_used)
    api_overlap = len(shared)
    reproduced = behaviour_equal and api_overlap == 0 and len(dync_only) >= 6
    metrics = {
        "api_overlap_calls": api_overlap,
        "dync_only_calls": len(dync_only),
        "bsd_calls": len(set(_BSD_CALLS) & bsd_used),
        "payloads_identical": int(behaviour_equal),
    }
    return ExperimentResult(
        experiment_id="E6",
        title="Figure 2: BSD vs Dynamic C echo server",
        metrics=metrics,
        paper_claim=(
            "equivalent code, significantly different API (Figure 2a vs 2b)"
        ),
        rows=rows,
        summary=(
            f"payloads byte-identical: {behaviour_equal}; API overlap "
            f"between the two servers: {api_overlap} calls; Dynamic C-only "
            f"surface: {', '.join(dync_only)}"
        ),
        reproduced=reproduced,
    )
