"""E4: what security costs in throughput (paper, Section 2).

"Security, sadly, is not cheap. ... Goldberg et al. observed SSL
reducing throughput by an order of magnitude."  That observation is the
paper's motivation for offloading TLS to a device like the RMC2000 in
the first place, so the reproduction runs the redirector service both
ways on the simulated network:

* plaintext redirector on the RMC2000 (Figure 3 structure, no issl),
* issl-secured redirector on the RMC2000, crypto charged at the
  E1-calibrated cycle costs (hand-assembly AES, the shipped config),
* optionally the same pair on the simulated Unix host.

The embedded CPU burns milliseconds per record on AES+HMAC, and the
measured secure/plain throughput gap lands around an order of
magnitude.
"""

from __future__ import annotations

from repro.crypto.demokeys import DEMO_PSK
from repro.crypto.prng import CipherRng
from repro.experiments.harness import ExperimentResult
from repro.issl import (
    IsslContext,
    RMC2000_ASM,
    RMC2000_C_PORT,
    RMC2000_PORT,
    UNIX_FULL,
)
from repro.net.dynctcp import DyncTcpStack
from repro.net.host import build_lan
from repro.net.sim import Simulator
from repro.services import (
    BACKEND_PORT,
    ClientReport,
    PLAIN_PORT,
    TLS_PORT,
    backend_line_server,
    build_rmc_redirector,
    plain_request_client,
    secure_request_client,
)


def _run_rmc_service(secure: bool, requests: int, request_size: int,
                     cost_model, obs=None) -> tuple[ClientReport, object]:
    """One simulation: client -> RMC redirector -> backend.

    Returns ``(report, obs)``; pass ``obs=None`` for an uninstrumented
    run (the null handle costs one attribute lookup per site).
    """
    from repro.obs import NULL_OBS
    sim = Simulator(obs=obs)
    _lan, hosts = build_lan(sim, ["rmc", "backend", "client"])
    stack = DyncTcpStack(hosts["rmc"])
    profile = RMC2000_PORT.with_cost_model(cost_model)
    context = IsslContext(profile, CipherRng(b"rmc-e4"), psk=DEMO_PSK,
                          obs=obs if obs is not None else NULL_OBS)
    hosts["backend"].spawn(backend_line_server(hosts["backend"]))
    port = TLS_PORT if secure else PLAIN_PORT
    scheduler = build_rmc_redirector(
        stack, context, str(hosts["backend"].ip_address),
        backend_port=BACKEND_PORT, listen_port=port, handlers=3,
        secure=secure,
    )
    scheduler.start()
    report = ClientReport("client")
    client_context = IsslContext(UNIX_FULL, CipherRng(b"cli-e4"), psk=DEMO_PSK)
    if secure:
        process = hosts["client"].spawn(secure_request_client(
            hosts["client"], client_context, str(hosts["rmc"].ip_address),
            port, requests, request_size, report,
        ))
    else:
        process = hosts["client"].spawn(plain_request_client(
            hosts["client"], str(hosts["rmc"].ip_address),
            port, requests, request_size, report,
        ))
    sim.run_until_complete(process, timeout=3600)
    if report.error:
        raise AssertionError(f"E4 client failed: {report.error}")
    return report, sim.obs


def run_e4(requests: int = 8, request_size: int = 256,
           instrument: bool = True) -> ExperimentResult:
    """Run E4; ``instrument`` (default on) gives each simulation its own
    :class:`repro.obs.Obs` handle and reports the secure runs' issl
    counters alongside the throughput table.  ``instrument=False`` is
    the overhead-check configuration: every site sees the null handle.
    """
    from repro.obs import Obs

    def fresh_obs():
        return Obs() if instrument else None

    plain, _ = _run_rmc_service(
        False, requests, request_size, RMC2000_ASM, obs=fresh_obs()
    )
    secure_asm, obs_asm = _run_rmc_service(
        True, requests, request_size, RMC2000_ASM, obs=fresh_obs()
    )
    secure_c, obs_c = _run_rmc_service(
        True, requests, request_size, RMC2000_C_PORT, obs=fresh_obs()
    )
    extra_tables: dict = {}
    if instrument:
        counter_rows = []
        for label, obs in (("asm AES", obs_asm), ("C-port AES", obs_c)):
            counters = obs.metrics.snapshot()["counters"]
            counter_rows.append({
                "run": label,
                "records sent": counters.get("issl.records.sent", 0),
                "bytes encrypted": counters.get("issl.bytes.encrypted", 0),
                "handshakes": counters.get("issl.handshakes.completed", 0),
                "retransmits": counters.get("tcp.segments.retransmitted", 0),
            })
        extra_tables["issl counters (server side)"] = counter_rows
    rows = []
    for label, report in (
        ("plaintext redirector", plain),
        ("issl redirector (asm AES)", secure_asm),
        ("issl redirector (C-port AES)", secure_c),
    ):
        rows.append({
            "service": label,
            "throughput kb/s": round(report.throughput_bps / 1000, 2),
            "mean request ms": round(
                1000 * sum(report.request_times) / len(report.request_times), 2
            ),
            "handshake ms": round(report.handshake_time * 1000, 2),
        })
    ratio_asm = plain.throughput_bps / secure_asm.throughput_bps
    ratio_c = plain.throughput_bps / secure_c.throughput_bps
    reproduced = ratio_asm >= 5.0
    metrics = {
        "plain_kb_per_s": plain.throughput_bps / 1000,
        "secure_asm_kb_per_s": secure_asm.throughput_bps / 1000,
        "secure_c_kb_per_s": secure_c.throughput_bps / 1000,
        "plain_over_secure_asm_ratio": ratio_asm,
        "plain_over_secure_c_ratio": ratio_c,
        "secure_asm_handshake_ms": secure_asm.handshake_time * 1000,
        "secure_c_handshake_ms": secure_c.handshake_time * 1000,
        "secure_asm_mean_request_ms": 1000 * sum(secure_asm.request_times)
        / len(secure_asm.request_times),
    }
    if instrument:
        counters = obs_asm.metrics.snapshot()["counters"]
        metrics["asm_records_sent"] = counters.get("issl.records.sent", 0)
        metrics["asm_bytes_encrypted"] = counters.get(
            "issl.bytes.encrypted", 0
        )
        metrics["asm_handshakes_completed"] = counters.get(
            "issl.handshakes.completed", 0
        )
    return ExperimentResult(
        experiment_id="E4",
        title="Throughput cost of TLS on the embedded redirector",
        paper_claim=(
            "SSL reduces throughput by an order of magnitude "
            "(Goldberg et al., cited as motivation)"
        ),
        rows=rows,
        summary=(
            f"plain/secure throughput ratio: {ratio_asm:.1f}x with assembly "
            f"AES, {ratio_c:.1f}x with the C-port AES"
        ),
        reproduced=reproduced,
        notes=(
            "crypto CPU time charged at E1-calibrated cycles/block on the "
            "30 MHz Rabbit; the C-port row shows why the assembly cipher "
            "mattered for the product, not just the benchmark"
        ),
        extra_tables=extra_tables,
        metrics=metrics,
    )
