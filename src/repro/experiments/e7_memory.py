"""E7: memory management on the port (paper, Section 5.2).

Three demonstrations in one experiment:

1. Memory plans for both issl build profiles against their boards --
   the Unix build's dynamic, multi-key-size buffers vs the port's fully
   static allocation, which "prompted us to drop support of multiple
   key and block sizes".
2. ``xalloc`` has no ``free``: a connection-churn loop that would be a
   slow leak under malloc/free becomes pool exhaustion under xalloc.
3. The static port, by contrast, serves unlimited churn at constant
   footprint.
"""

from __future__ import annotations

from repro.dync.runtime.xalloc import XallocError, XmemAllocator
from repro.experiments.harness import ExperimentResult
from repro.issl.config import RMC2000_PORT, UNIX_FULL
from repro.porting.memory_plan import (
    MemoryPlan,
    RMC2000_BUDGET,
    StorageClass,
    WORKSTATION_BUDGET,
)

#: Sizes of issl session pieces (bytes), from the record/handshake code.
_SESSION_STATIC = {
    "record buffer": 1024 + 64,       # max_record + header/MAC slack
    "cipher state (AES-128)": 176 + 32,  # round keys + IVs
    "MAC keys + state": 2 * 20 + 96,
    "handshake transcript": 256,
}
_UNIX_SESSION_DYNAMIC = {
    "record buffer": 16384 + 64,
    "cipher state (up to 256-bit keys/blocks)": 480 + 64,
    "MAC keys + state": 2 * 20 + 96,
    "handshake transcript": 1024,
    "bignum workspace (RSA-512)": 4 * 64 * 2,
}


def build_unix_plan() -> MemoryPlan:
    plan = MemoryPlan(WORKSTATION_BUDGET)
    plan.declare("issl library code", StorageClass.CODE, 96 * 1024)
    plan.declare("service code", StorageClass.CODE, 24 * 1024)
    for name, size in _UNIX_SESSION_DYNAMIC.items():
        plan.declare(
            f"per-session {name} x{UNIX_FULL.max_sessions}",
            StorageClass.HEAP, size * UNIX_FULL.max_sessions,
            note="malloc'd per connection, freed at close",
        )
    plan.declare("per-child process stacks", StorageClass.STACK,
                 UNIX_FULL.max_sessions * 64 * 1024)
    plan.declare("log file growth", StorageClass.HEAP, 0,
                 note="unbounded, on disk")
    return plan


def build_port_plan() -> MemoryPlan:
    plan = MemoryPlan(RMC2000_BUDGET)
    plan.declare("firmware code (issl port + service + stack)",
                 StorageClass.CODE, 48 * 1024)
    plan.declare("S-box/xtime tables", StorageClass.CONST, 512)
    for name, size in _SESSION_STATIC.items():
        plan.declare(
            f"per-session {name} x{RMC2000_PORT.max_sessions}",
            StorageClass.STATIC, size * RMC2000_PORT.max_sessions,
            note="statically allocated (no malloc on the port)",
        )
    plan.declare("circular log buffer", StorageClass.STATIC, 1024)
    plan.declare("big-loop stack", StorageClass.STACK, 512)
    plan.declare("protected state backup", StorageClass.BATTERY, 32)
    return plan


def xalloc_churn(pool_bytes: int, per_connection: int) -> int:
    """Connections served before an allocate-only pool runs dry."""
    allocator = XmemAllocator(pool_bytes)
    served = 0
    try:
        while True:
            # The leak *is* the experiment: churn until the pool dies.
            allocator.xalloc(per_connection)  # dclint: allow(PY101)
            served += 1
    except XallocError:
        return served


def run_e7() -> ExperimentResult:
    unix_plan = build_unix_plan()
    port_plan = build_port_plan()
    per_connection = sum(_SESSION_STATIC.values())
    # Suppose the port had kept malloc-style per-connection allocation
    # via xalloc, with the whole free SRAM as the pool:
    pool = 64 * 1024
    churn_limit = xalloc_churn(pool, per_connection)
    rows = [
        {
            "profile": "UNIX_FULL",
            "board": unix_plan.budget.name,
            "RAM bytes": unix_plan.ram_used,
            "allocation": "dynamic (malloc/free per connection)",
            "fits": unix_plan.fits,
        },
        {
            "profile": "RMC2000_PORT",
            "board": port_plan.budget.name,
            "RAM bytes": port_plan.ram_used,
            "allocation": "fully static, 3 sessions, AES-128 only",
            "fits": port_plan.fits,
        },
        {
            "profile": "hypothetical xalloc-per-connection port",
            "board": f"RMC2000 ({pool // 1024}K pool)",
            "RAM bytes": pool,
            "allocation": f"dies after {churn_limit} connections (no free)",
            "fits": False,
        },
    ]
    static_total = per_connection * RMC2000_PORT.max_sessions
    reproduced = (
        port_plan.fits
        and port_plan.data_segment_used <= RMC2000_BUDGET.data_segment
        and churn_limit < 100
        and RMC2000_PORT.suites[0].key_bytes == 16
        and len(RMC2000_PORT.suites) == 1
    )
    metrics = {
        "unix_ram_bytes": unix_plan.ram_used,
        "port_ram_bytes": port_plan.ram_used,
        "port_data_segment_bytes": port_plan.data_segment_used,
        "static_session_bytes": static_total,
        "xalloc_churn_connections": churn_limit,
        "port_fits": int(port_plan.fits),
    }
    return ExperimentResult(
        experiment_id="E7",
        title="Memory: static allocation, xalloc without free, dropped key sizes",
        metrics=metrics,
        paper_claim=(
            "no malloc/free: removed all dynamic allocation, statically "
            "allocated all variables, dropped multiple key/block sizes; "
            "memory requirements proved modest"
        ),
        rows=rows,
        summary=(
            f"static port needs {static_total} bytes of session state "
            f"({port_plan.data_segment_used} total data-segment bytes of "
            f"{RMC2000_BUDGET.data_segment}); an allocate-only xalloc port "
            f"would die after {churn_limit} connections"
        ),
        reproduced=reproduced,
        notes="port profile supports exactly one suite: PSK_AES128 (16-byte key)",
    )
