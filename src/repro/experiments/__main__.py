"""``python -m repro.experiments [--json] [E1 E2 ...]``: run experiments.

Default output is the text report (one table per experiment).  With
``--json`` the same runs are emitted as a JSON array of
:class:`~repro.experiments.harness.ExperimentResult` dicts -- the exact
serialization :mod:`repro.bench` snapshots use, so experiments and
bench share one pipeline.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.experiments import RUNNERS


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Run the paper-claim experiment battery (E1..E10).",
    )
    parser.add_argument("ids", nargs="*", metavar="EN",
                        help="experiment ids to run (default: all)")
    parser.add_argument("--json", action="store_true", dest="as_json",
                        help="emit results as a JSON array instead of text")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    wanted = [arg.upper() for arg in args.ids] or list(RUNNERS)
    unknown = [w for w in wanted if w not in RUNNERS]
    if unknown:
        print(f"unknown experiment ids: {unknown}; known: {list(RUNNERS)}",
              file=sys.stderr)
        return 2
    failures = 0
    records = []
    for experiment_id in wanted:
        start = time.time()  # dclint: allow(PY105)
        result = RUNNERS[experiment_id]()
        elapsed = time.time() - start  # dclint: allow(PY105)
        if args.as_json:
            record = result.to_dict()
            record["wall_seconds"] = round(elapsed, 3)
            records.append(record)
        else:
            print(result.format())
            print(f"  ({elapsed:.1f}s wall)")
            print()
        if not result.reproduced:
            failures += 1
    if args.as_json:
        json.dump(records, sys.stdout, indent=2, sort_keys=True)
        sys.stdout.write("\n")
    else:
        print(f"{len(wanted) - failures}/{len(wanted)} experiments reproduced")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
