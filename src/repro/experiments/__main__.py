"""``python -m repro.experiments [E1 E2 ...]``: run and print experiments."""

from __future__ import annotations

import sys
import time

from repro.experiments import RUNNERS


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    wanted = [arg.upper() for arg in argv] or list(RUNNERS)
    unknown = [w for w in wanted if w not in RUNNERS]
    if unknown:
        print(f"unknown experiment ids: {unknown}; known: {list(RUNNERS)}")
        return 2
    failures = 0
    for experiment_id in wanted:
        start = time.time()
        result = RUNNERS[experiment_id]()
        elapsed = time.time() - start
        print(result.format())
        print(f"  ({elapsed:.1f}s wall)")
        print()
        if not result.reproduced:
            failures += 1
    print(f"{len(wanted) - failures}/{len(wanted)} experiments reproduced")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
