"""Experiment harness: result records and table rendering (DESIGN.md S15).

Every experiment runner returns an :class:`ExperimentResult`; the
benchmark suite asserts on its ``reproduced`` flag, the CLI prints
its table, and the bench subsystem (:mod:`repro.bench`) serializes it
into ``BENCH_*.json`` snapshots.  EXPERIMENTS.md is the prose record of
the same runs.

Results are data first: ``metrics`` carries every headline number as a
named scalar, and ``to_dict``/``from_dict`` round-trip the whole record
through JSON so a committed snapshot can regenerate any table.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field


@dataclass
class ExperimentResult:
    """One experiment's outcome, paper claim vs. measurement."""

    experiment_id: str
    title: str
    paper_claim: str
    rows: list[dict] = field(default_factory=list)
    summary: str = ""
    reproduced: bool = False
    notes: str = ""
    #: Named side tables (per-routine cycle attribution, issl counters,
    #: ...), rendered after the main table.
    extra_tables: dict = field(default_factory=dict)
    #: Machine-readable headline numbers (``name -> scalar``): exactly
    #: the values the summary sentence is built from, so snapshots can
    #: be diffed metric by metric.  Deterministic on the simulator.
    metrics: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        """Plain-data form; every value is JSON-serializable."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "ExperimentResult":
        """Inverse of :meth:`to_dict`; ignores unknown keys so newer
        snapshots load under older code."""
        known = {f for f in cls.__dataclass_fields__}
        return cls(**{k: v for k, v in data.items() if k in known})

    def format(self) -> str:
        lines = [
            f"[{self.experiment_id}] {self.title}",
            f"  paper: {self.paper_claim}",
        ]
        if self.rows:
            lines.append(_format_table(self.rows, indent="  "))
        for title, rows in self.extra_tables.items():
            lines.append(f"  -- {title} --")
            lines.append(_format_table(rows, indent="  "))
        lines.append(f"  measured: {self.summary}")
        lines.append(f"  reproduced: {'YES' if self.reproduced else 'NO'}")
        if self.notes:
            lines.append(f"  notes: {self.notes}")
        return "\n".join(lines)


def _format_table(rows: list[dict], indent: str = "") -> str:
    if not rows:
        return indent + "(no rows)"
    columns = list(rows[0].keys())
    rendered = [[_cell(row.get(col)) for col in columns] for row in rows]
    widths = [
        max(len(col), *(len(r[i]) for r in rendered))
        for i, col in enumerate(columns)
    ]
    out = [
        indent + "  ".join(col.ljust(w) for col, w in zip(columns, widths)),
        indent + "  ".join("-" * w for w in widths),
    ]
    for rendered_row in rendered:
        out.append(
            indent + "  ".join(cell.ljust(w) for cell, w in zip(rendered_row, widths))
        )
    return "\n".join(out)


def _cell(value) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        return f"{value:.3g}"
    return str(value)


def format_table(rows: list[dict]) -> str:
    """Public table renderer used by examples and the CLI."""
    return _format_table(rows)
