"""Load clients for the redirector services: secure and plain.

Each client records per-request timings into a shared results list so
the benchmarks (E4 throughput, E5 concurrency) can compute throughput
and queueing delay.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.issl.api import issl_bind
from repro.issl.session import IsslContext, IsslError
from repro.net.bsd import SocketError, socket
from repro.net.host import Host
from repro.obs.trace import CAT_APP, NEW_TRACE, context_of


@dataclass
class ClientReport:
    """What one client run measured."""

    name: str
    connect_time: float = 0.0
    handshake_time: float = 0.0
    request_times: list[float] = field(default_factory=list)
    bytes_sent: int = 0
    bytes_received: int = 0
    start: float = 0.0
    end: float = 0.0
    error: str | None = None

    @property
    def total_time(self) -> float:
        return self.end - self.start

    @property
    def throughput_bps(self) -> float:
        duration = self.end - self.start
        if duration <= 0:
            return 0.0
        return 8.0 * (self.bytes_sent + self.bytes_received) / duration


def secure_request_client(host: Host, context: IsslContext, server_ip: str,
                          port: int, requests: int, request_size: int,
                          report: ClientReport):
    """Generator: issl handshake, then ``requests`` request/response pairs."""
    sim = host.sim
    report.start = sim.now
    try:
        sock = socket(host)
        t0 = sim.now
        yield from sock.connect((server_ip, port))
        report.connect_time = sim.now - t0
        session = issl_bind(context, sock, role="client")
        t0 = sim.now
        yield from session.handshake()
        report.handshake_time = sim.now - t0
        payload = _make_payload(request_size)
        tracer = sim.obs.tracer
        tid = f"client:{report.name}"
        for index in range(requests):
            t0 = sim.now
            # Each request mints a fresh trace; the context rides the
            # wire so the redirector and backend spans join this tree.
            span = tracer.begin("client.request", cat=CAT_APP, tid=tid,
                                trace=NEW_TRACE, seq=index)
            session.set_trace_context(context_of(span))
            yield from session.write(payload + b"\n")
            report.bytes_sent += len(payload) + 1
            response = yield from _read_secure_line(session)
            if response is None:
                report.error = f"EOF at request {index}"
                tracer.end(span, error="eof")
                break
            report.bytes_received += len(response) + 1
            report.request_times.append(sim.now - t0)
            tracer.end(span)
        yield from session.close()
    except (SocketError, IsslError) as exc:
        report.error = str(exc)
    report.end = sim.now
    return report


def plain_request_client(host: Host, server_ip: str, port: int,
                         requests: int, request_size: int,
                         report: ClientReport):
    """Generator: the same workload without TLS."""
    sim = host.sim
    report.start = sim.now
    try:
        sock = socket(host)
        t0 = sim.now
        yield from sock.connect((server_ip, port))
        report.connect_time = sim.now - t0
        payload = _make_payload(request_size)
        tracer = sim.obs.tracer
        tid = f"client:{report.name}"
        for index in range(requests):
            t0 = sim.now
            span = tracer.begin("client.request", cat=CAT_APP, tid=tid,
                                trace=NEW_TRACE, seq=index)
            sock.set_trace_context(context_of(span))
            yield from sock.sendall(payload + b"\n")
            report.bytes_sent += len(payload) + 1
            response = yield from _read_plain_line(sock)
            if response is None:
                report.error = f"EOF at request {index}"
                tracer.end(span, error="eof")
                break
            report.bytes_received += len(response) + 1
            report.request_times.append(sim.now - t0)
            tracer.end(span)
        sock.close()
    except SocketError as exc:
        report.error = str(exc)
    report.end = sim.now
    return report


def _make_payload(size: int) -> bytes:
    if size <= 0:
        return b"x"
    alphabet = b"abcdefghijklmnopqrstuvwxyz"
    return bytes(alphabet[i % len(alphabet)] for i in range(size))


def _read_secure_line(session):
    buffer = b""
    while b"\n" not in buffer:
        chunk = yield from session.read()
        if not chunk:
            return None
        buffer += chunk
    return buffer.split(b"\n", 1)[0]


def _read_plain_line(sock):
    buffer = b""
    while b"\n" not in buffer:
        chunk = yield from sock.recv(4096)
        if not chunk:
            return None
        buffer += chunk
    return buffer.split(b"\n", 1)[0]
