"""The paper's applications (DESIGN.md S8): echo servers, the secure
redirector (Unix original and RMC2000 port), and load clients."""

from repro.services.client import (
    ClientReport,
    plain_request_client,
    secure_request_client,
)
from repro.services.echo import bsd_echo_server, dync_echo_costate, echo_client
from repro.services.redirector import (
    BACKEND_PORT,
    PLAIN_PORT,
    SLOT_BUFFER_BYTES,
    TLS_PORT,
    backend_line_server,
    build_pooled_redirector,
    build_rmc_redirector,
    unix_plain_redirector,
    unix_secure_redirector,
)
from repro.services.scaling import SCALING_POOL_SIZES, run_scaling_curve

__all__ = [
    "BACKEND_PORT",
    "ClientReport",
    "PLAIN_PORT",
    "SCALING_POOL_SIZES",
    "SLOT_BUFFER_BYTES",
    "TLS_PORT",
    "backend_line_server",
    "bsd_echo_server",
    "build_pooled_redirector",
    "build_rmc_redirector",
    "dync_echo_costate",
    "echo_client",
    "plain_request_client",
    "run_scaling_curve",
    "secure_request_client",
    "unix_plain_redirector",
    "unix_secure_redirector",
]
