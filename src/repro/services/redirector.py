"""The case-study service: a secure redirector (DESIGN.md S8).

The paper's authors "implemented a simple Unix service that used the
issl library to establish a secure redirector" and later ported it to
the RMC2000.  The service is an SSL terminator: clients speak issl to
it; it decrypts each request line, forwards it over plain TCP to a
backend, and returns the backend's response line over the secure
channel -- the coprocessor-offload pattern Section 2 motivates.

Five variants:

* :func:`unix_secure_redirector` -- the original: BSD sockets, one
  forked child per connection (the listing in Section 5.3).
* :func:`build_rmc_redirector` -- the port: Figure 3's main loop, N
  handler costatements (default 3) plus one ``tcp_tick`` driver.
* :func:`build_pooled_redirector` -- past the Figure-3 ceiling: ONE
  indexed pooled costatement whose slot capacity is set at
  scheduler-build time, per-slot state drawn from an
  :class:`~repro.dync.runtime.xalloc.XmemBufferPool`, and admission
  control that refuses (``redirector.refused.*``) instead of
  allocating past the xmem budget.
* :func:`unix_plain_redirector` / plain handlers -- the no-TLS baseline
  the E4 throughput experiment compares against.
* :func:`backend_line_server` -- the plaintext backend behind all of
  them.
"""

from __future__ import annotations

from collections import deque
from typing import Callable

from repro.dync.runtime.costate import (
    CostateScheduler,
    IDLE,
    IndexedCofunctionPool,
    idle_until,
)
from repro.dync.runtime.xalloc import XallocError, XmemBufferPool
from repro.issl.api import issl_bind
from repro.issl.session import (
    IsslContext,
    IsslError,
    IsslSessionLimitError,
    IsslTimeout,
)
from repro.issl.transport import TransportError, TransportTimeout
from repro.net.addresses import Ipv4Address
from repro.net.bsd import LISTENQ, SocketError, socket
from repro.net.dynctcp import DyncTcpStack, make_socket
from repro.net.host import Host
from repro.obs.trace import CAT_SERVICE, context_of
from repro.unixsim.host import UnixHost
from repro.unixsim.process import exit_process

#: Figure 3's port.
TLS_PORT = 4433
PLAIN_PORT = 8000
BACKEND_PORT = 9000

_LINE_MAX = 4096


# ---------------------------------------------------------------------------
# Backend
# ---------------------------------------------------------------------------

def backend_line_server(host: Host, port: int = BACKEND_PORT,
                        transform: Callable[[bytes], bytes] | None = None,
                        stats: dict | None = None,
                        backlog: int = LISTENQ):
    """Generator: accept-loop line server; one child process per client.

    The default transform upper-cases the request, making redirection
    observable end to end.  ``backlog`` must cover the redirector's
    slot count: a dynamic pool opens up to one backend connection per
    slot simultaneously, and a burst past the backlog reads as
    ``redirector.errors.backend`` on the other side.
    """
    if transform is None:
        transform = bytes.upper
    lsock = socket(host)
    lsock.bind(("", port))
    lsock.listen(backlog)
    tracer = host.sim.obs.tracer
    backend_tid = f"svc:{host.name}:backend"

    def handle(conn):
        buffer = b""
        while True:
            try:
                chunk = yield from conn.recv(_LINE_MAX)
            except SocketError:
                break
            if not chunk:
                break
            buffer += chunk
            while b"\n" in buffer:
                line, buffer = buffer.split(b"\n", 1)
                if stats is not None:
                    stats["requests"] = stats.get("requests", 0) + 1
                # Parent on the redirector's propagated trace context so
                # the backend leg hangs off the service.request span.
                ctx = conn.rx_trace_ctx
                span = tracer.begin(
                    "backend.request", cat=CAT_SERVICE, tid=backend_tid,
                    parent=None if ctx is None else ctx.span_id,
                    trace=None if ctx is None else ctx.trace_id,
                    bytes=len(line),
                )
                yield from conn.sendall(transform(line) + b"\n")
                tracer.end(span)
        conn.close()

    while True:
        conn = yield from lsock.accept()
        host.sim.spawn(handle(conn), name=f"{host.name}:backend-child")


# ---------------------------------------------------------------------------
# Line helpers shared by the redirector variants
# ---------------------------------------------------------------------------

def _read_secure_line(session, sim=None, deadline=None):
    """Generator: accumulate issl records until a full line.

    With ``sim`` and ``deadline`` each read is bounded by the remaining
    budget; a stalled peer surfaces as :class:`IsslTimeout`.
    """
    buffer = b""
    while b"\n" not in buffer:
        timeout = None
        if deadline is not None and sim is not None:
            timeout = max(0.0, deadline - sim.now)
        chunk = yield from session.read(timeout=timeout)
        if not chunk:
            return None if not buffer else buffer
        buffer += chunk
    line, _rest = buffer.split(b"\n", 1)
    # Records align with lines in our clients; keep any tail for safety.
    return line


def _read_plain_line(conn):
    buffer = b""
    while b"\n" not in buffer:
        chunk = yield from conn.recv(_LINE_MAX)
        if not chunk:
            return None
        buffer += chunk
    line, _rest = buffer.split(b"\n", 1)
    return line


# ---------------------------------------------------------------------------
# The original Unix service (fork-per-connection, Section 5.3 listing)
# ---------------------------------------------------------------------------

def unix_secure_redirector(host: UnixHost, context: IsslContext,
                           backend_ip: Ipv4Address | str,
                           backend_port: int = BACKEND_PORT,
                           listen_port: int = TLS_PORT,
                           stats: dict | None = None):
    """Generator (run as a Unix process): the original issl service.

    Structure follows the paper's listing: ``listen``; loop ``accept``;
    ``fork`` a child per request; the parent immediately re-accepts.
    """
    lsock = socket(host)
    lsock.bind(("", listen_port))
    lsock.listen(LISTENQ)
    accepted = 0
    while True:
        conn = yield from lsock.accept()
        accepted += 1
        # if ((childpid = fork()) == 0) { handle(accept_fd); exit(0); }
        host.kernel.fork(
            _unix_child(host, context, conn, backend_ip, backend_port, stats,
                        f"svc:unix-child:{accepted}"),
            name="issl-child",
        )


def _unix_child(host, context, conn, backend_ip, backend_port, stats,
                tid="svc:unix-child"):
    obs = host.sim.obs
    tracer = obs.tracer
    ctr_redirected = obs.metrics.counter("redirector.redirected")
    span = tracer.begin("service.connection", cat=CAT_SERVICE, tid=tid)
    try:
        session = issl_bind(context, conn, role="server")
    except IsslSessionLimitError as exc:
        # The static session budget is a refusal, not a crash.
        obs.metrics.counter("redirector.refused.sessions").inc()
        context.logger.log(f"redirector: {tid}: refused: {exc}")
        conn.close()
        tracer.end(span, error="sessions")
        exit_process(1)
    try:
        yield from session.handshake()
    except IsslError as exc:
        context.logger.log(f"redirector: {tid}: handshake failed: {exc}")
        conn.close()
        tracer.end(span, error="handshake")
        exit_process(1)
    backend = socket(host)
    try:
        yield from backend.connect((backend_ip, backend_port))
    except SocketError:
        yield from session.close()
        tracer.end(span, error="backend-connect")
        exit_process(1)
    requests = 0
    while True:
        line = yield from _read_secure_line(session)
        if line is None:
            break
        ctx = session.rx_trace_ctx
        req_span = tracer.begin(
            "service.request", cat=CAT_SERVICE, tid=tid,
            parent=None if ctx is None else ctx.span_id,
            trace=None if ctx is None else ctx.trace_id,
            bytes=len(line),
        )
        backend.set_trace_context(context_of(req_span))
        yield from backend.sendall(line + b"\n")
        response = yield from _read_plain_line(backend)
        if response is None:
            tracer.end(req_span, error="backend-eof")
            break
        yield from session.write(response + b"\n")
        requests += 1
        ctr_redirected.inc()
        tracer.end(req_span)
        if stats is not None:
            stats["redirected"] = stats.get("redirected", 0) + 1
    backend.close()
    yield from session.close()
    tracer.end(span, requests=requests)
    exit_process(0)


def unix_plain_redirector(host: Host, backend_ip: Ipv4Address | str,
                          backend_port: int = BACKEND_PORT,
                          listen_port: int = PLAIN_PORT,
                          stats: dict | None = None):
    """Generator: the same service without TLS (E4 baseline)."""
    lsock = socket(host)
    lsock.bind(("", listen_port))
    lsock.listen(LISTENQ)

    def handle(conn):
        backend = socket(host)
        try:
            yield from backend.connect((backend_ip, backend_port))
        except SocketError:
            conn.close()
            return
        while True:
            line = yield from _read_plain_line(conn)
            if line is None:
                break
            yield from backend.sendall(line + b"\n")
            response = yield from _read_plain_line(backend)
            if response is None:
                break
            yield from conn.sendall(response + b"\n")
            if stats is not None:
                stats["redirected"] = stats.get("redirected", 0) + 1
        backend.close()
        conn.close()

    while True:
        conn = yield from lsock.accept()
        host.sim.spawn(handle(conn), name=f"{host.name}:plain-child")


# ---------------------------------------------------------------------------
# The RMC2000 port (Figure 3: costatements + tick driver)
# ---------------------------------------------------------------------------

def _tick_driver(stack: DyncTcpStack):
    """The dedicated stack-driver costatement (Figure 3's fourth process).

    When the stack is quiescent a tick would be a pure no-op, so the
    pass is declared IDLE -- new segments arrive as simulator events,
    which end the big loop's bulk replay before the next resume.  A
    non-quiescent pass ticks and yields bare so the pass after it runs
    live and the handlers see the freshly drained bytes.
    """
    while True:
        if stack.quiescent:
            yield IDLE
        else:
            stack.tcp_tick(None)
            yield


def _sock_dead(sock) -> bool:
    """True once an attached connection can never serve a request."""
    conn = sock.conn
    return conn is not None and (
        conn.at_eof or conn.state.value == "CLOSED"
    )


def _rmc_handler(stack: DyncTcpStack, context: IsslContext,
                 backend_ip, backend_port, listen_port,
                 stats: dict | None, secure: bool, label: str = "handler",
                 *, handshake_timeout_s: float | None = None,
                 handshake_retries: int = 0,
                 conn_deadline_s: float | None = None,
                 backend_timeout_s: float | None = None,
                 buffer_pool=None):
    """One handler costatement: serve one connection at a time, forever.

    Every failure path -- dead embryonic connection, refused session
    slot, exhausted buffer pool, handshake timeout, backend outage,
    stalled peer -- recovers back to ``tcp_listen``; the handler never
    wedges and never lets an exception escape into the big loop.
    """
    sim = stack.host.sim
    obs = sim.obs
    tracer = obs.tracer
    recorder = obs.recorder
    metrics = obs.metrics
    ctr_refused_sessions = metrics.counter("redirector.refused.sessions")
    ctr_refused_memory = metrics.counter("redirector.refused.memory")
    ctr_hs_errors = metrics.counter("redirector.errors.handshake")
    ctr_backend_errors = metrics.counter("redirector.errors.backend")
    ctr_recovered = metrics.counter("redirector.recovered")
    gauge_active = metrics.gauge("redirector.active_connections")
    ts_active = obs.telemetry.series("redirector.active_connections")
    log = context.logger.log
    tid = f"svc:{label}"
    sock = make_socket(stack)
    while True:
        # tcp_listen refuses while the previous connection is still
        # tearing down; keep trying, one big-loop pass at a time.  The
        # failure path is a pure state check and teardown only advances
        # through simulator events, so the retry is a declared
        # event-wait the big loop may bulk-replay past.
        while not stack.tcp_listen(sock, listen_port):
            yield IDLE
        # Wait for establishment -- or for the embryonic connection to
        # die under us (lost handshake, immediate RST).  Without the
        # second arm this handler would wedge forever on a connection
        # that will never establish.  Inlined waitfor: this poll runs
        # every big-loop pass for every idle handler, and the generator
        # plus lambda indirection dominated fault-campaign profiles.
        # Both arms read connection state that only the tick driver's
        # drain (itself a non-idle pass) or a timer event can change,
        # so the poll yields IDLE.
        while not (stack.sock_established(sock) or _sock_dead(sock)):
            yield IDLE
        if not stack.sock_established(sock):
            log(f"redirector: {label}: connection died before established")
            recorder.warn(CAT_SERVICE, tid, "connection died before established")
            stack.sock_abort(sock)
            ctr_recovered.inc()
            yield
            continue
        span = tracer.begin("service.connection", cat=CAT_SERVICE, tid=tid)
        buffer = None
        if buffer_pool is not None:
            try:
                buffer = buffer_pool.acquire()
            except XallocError as exc:
                # Graceful degradation: no record buffer, no service.
                ctr_refused_memory.inc()
                log(f"redirector: {label}: out of xmem, refusing: {exc}")
                recorder.warn(CAT_SERVICE, tid, "refused: out of xmem")
                stack.sock_abort(sock)
                tracer.end(span, error="memory")
                ctr_recovered.inc()
                yield
                continue
        session = None
        if secure:
            try:
                session = issl_bind(context, sock, stack=stack,
                                    role="server")
            except IsslSessionLimitError as exc:
                # Figure 3's static ceiling: refuse, count, re-listen.
                ctr_refused_sessions.inc()
                log(f"redirector: {label}: refused: {exc}")
                recorder.warn(CAT_SERVICE, tid, "refused: session limit")
                stack.sock_abort(sock)
                if buffer is not None:
                    buffer_pool.release(buffer)
                tracer.end(span, error="sessions")
                ctr_recovered.inc()
                yield
                continue
            try:
                yield from session.handshake(
                    timeout=handshake_timeout_s,
                    retries=handshake_retries,
                )
            except IsslError as exc:
                ctr_hs_errors.inc()
                log(f"redirector: {label}: handshake failed: {exc}")
                recorder.error(
                    CAT_SERVICE, tid, f"handshake failed: {type(exc).__name__}"
                )
                stack.sock_abort(sock)
                if buffer is not None:
                    buffer_pool.release(buffer)
                tracer.end(span, error="handshake")
                ctr_recovered.inc()
                yield
                continue
        backend = make_socket(stack)
        stack.tcp_open(backend, 0, backend_ip, backend_port)
        backend_deadline = (
            None if backend_timeout_s is None
            else sim.now + backend_timeout_s
        )
        # Event-wait: the SYN/ACK arrives as a simulator event and the
        # timeout arm is pinned by the token's deadline.
        backend_token = (
            IDLE if backend_deadline is None
            else idle_until(backend_deadline)
        )
        while not (
            stack.sock_established(backend) or _sock_dead(backend)
            or (backend_deadline is not None
                and sim.now >= backend_deadline)
        ):
            yield backend_token
        if not stack.sock_established(backend):
            ctr_backend_errors.inc()
            log(f"redirector: {label}: backend unreachable")
            recorder.error(CAT_SERVICE, tid, "backend unreachable")
            stack.sock_abort(backend)
            if secure:
                yield from session.close()
            else:
                stack.sock_close(sock)
            if buffer is not None:
                buffer_pool.release(buffer)
            tracer.end(span, error="backend-connect")
            ctr_recovered.inc()
            yield
            continue
        # One handler serves one connection; the shared gauge counts how
        # many of the N handlers are mid-service, and the telemetry
        # series records when that level changed on the simulated clock.
        gauge_active.set(gauge_active.value + 1)
        ts_active.record(gauge_active.value)
        requests = yield from _rmc_serve(
            stack, sock, backend, session, stats, tid,
            deadline_s=conn_deadline_s, logger=context.logger,
        )
        gauge_active.set(gauge_active.value - 1)
        ts_active.record(gauge_active.value)
        stack.sock_close(backend)
        if secure:
            yield from session.close()
        # Close our TCP side regardless of who spoke last; sock_close is
        # idempotent and tcp_listen above waits for the teardown.
        stack.sock_close(sock)
        if buffer is not None:
            buffer_pool.release(buffer)
        tracer.end(span, requests=requests)
        yield


def _rmc_serve(stack, sock, backend, session, stats, tid="svc:handler",
               deadline_s=None, logger=None):
    """Relay request/response lines until the client is done.

    ``deadline_s`` is a per-connection progress deadline: the budget for
    each request/response exchange, renewed after every completed
    request.  A peer that stalls past it is aborted (counted under
    ``redirector.deadline.expired``) instead of pinning the handler.
    """
    sim = stack.host.sim
    obs = sim.obs
    tracer = obs.tracer
    ctr_redirected = obs.metrics.counter("redirector.redirected")
    ctr_deadline = obs.metrics.counter("redirector.deadline.expired")
    deadline = None if deadline_s is None else sim.now + deadline_s
    requests = 0
    while True:
        try:
            if session is not None:
                line = yield from _read_secure_line(session, sim, deadline)
            else:
                line = yield from _dync_read_line(stack, sock, deadline)
        except (IsslTimeout, TransportTimeout):
            ctr_deadline.inc()
            if logger is not None:
                logger.log(
                    f"redirector: {tid}: connection deadline expired "
                    f"after {requests} request(s)"
                )
            stack.sock_abort(sock)
            return requests
        except IsslError:
            return requests
        if line is None:
            return requests
        # Open the relay span parented on the client's propagated trace
        # context (delivered alongside the request bytes), and raise our
        # own context on the backend leg, so one client request renders
        # as client.request -> service.request -> backend.request.
        if session is not None:
            ctx = session.rx_trace_ctx
        else:
            ctx = None if sock.conn is None else sock.conn.rx_trace_ctx
        span = tracer.begin(
            "service.request", cat=CAT_SERVICE, tid=tid,
            parent=None if ctx is None else ctx.span_id,
            trace=None if ctx is None else ctx.trace_id,
            bytes=len(line),
        )
        if backend.conn is not None:
            backend.conn.set_trace_context(context_of(span))
        stack.sock_write(backend, line + b"\n")
        try:
            response = yield from _dync_read_line(stack, backend, deadline)
        except TransportTimeout:
            ctr_deadline.inc()
            if logger is not None:
                logger.log(
                    f"redirector: {tid}: backend response deadline expired"
                )
            stack.sock_abort(sock)
            tracer.end(span, error="backend-deadline")
            return requests
        if response is None:
            tracer.end(span, error="backend-eof")
            return requests
        if session is not None:
            try:
                yield from session.write(response + b"\n")
            except (IsslError, TransportError):
                tracer.end(span, error="client-write")
                return requests
        else:
            stack.sock_write(sock, response + b"\n")
        requests += 1
        ctr_redirected.inc()
        if deadline is not None:
            deadline = sim.now + deadline_s
        tracer.end(span)
        if stats is not None:
            stats["redirected"] = stats.get("redirected", 0) + 1


def _dync_read_line(stack, sock, deadline=None):
    sim = stack.host.sim
    buffer = b""
    # Declared event-wait: an empty poll only turns non-empty after a
    # frame event plus a tick-driver drain (a non-idle pass), EOF/CLOSED
    # flip on the same events, and the deadline arm is pinned by the
    # token -- so the big loop may bulk-replay these passes.
    token = IDLE if deadline is None else idle_until(deadline)
    while b"\n" not in buffer:
        chunk = stack.sock_read(sock, _LINE_MAX)
        if chunk:
            buffer += chunk
            continue
        if sock.conn is None or sock.conn.at_eof \
                or sock.conn.state.value == "CLOSED":
            return None
        if deadline is not None and sim.now >= deadline:
            raise TransportTimeout("line read deadline expired")
        yield token
    line, _rest = buffer.split(b"\n", 1)
    return line


def build_rmc_redirector(stack: DyncTcpStack, context: IsslContext,
                         backend_ip: Ipv4Address | str,
                         backend_port: int = BACKEND_PORT,
                         listen_port: int = TLS_PORT,
                         handlers: int = 3,
                         secure: bool = True,
                         stats: dict | None = None,
                         pass_overhead_s: float | None = None,
                         obs=None,
                         handshake_timeout_s: float | None = None,
                         handshake_retries: int = 0,
                         conn_deadline_s: float | None = None,
                         backend_timeout_s: float | None = None,
                         buffer_pool=None) -> CostateScheduler:
    """Assemble Figure 3's main loop and return its (unstarted) scheduler.

    ``handlers`` defaults to 3: "three processes to handle requests
    (allowing a maximum of three connections), and one to drive the TCP
    stack".  Increasing it is the paper's "add more costatements and
    recompile".  ``obs`` overrides the simulator's observability handle
    for the scheduler (slice spans, jitter histogram).

    The hardening knobs all default to off (historical behaviour):
    ``handshake_timeout_s``/``handshake_retries`` bound the issl
    handshake, ``conn_deadline_s`` is the per-request progress deadline,
    ``backend_timeout_s`` bounds the backend connect, and
    ``buffer_pool`` (an :class:`~repro.dync.runtime.xalloc.XmemBufferPool`)
    makes record buffers a refusable resource instead of an assumed one.
    """
    if isinstance(backend_ip, str):
        backend_ip = Ipv4Address.parse(backend_ip)
    stack.sock_init()
    kwargs = {}
    if pass_overhead_s is not None:
        kwargs["pass_overhead_s"] = pass_overhead_s
    scheduler = CostateScheduler(stack.host.sim, name="rmc-redirector",
                                 obs=obs, **kwargs)
    for index in range(handlers):
        scheduler.add(
            _rmc_handler(stack, context, backend_ip, backend_port,
                         listen_port, stats, secure,
                         label=f"handler{index + 1}",
                         handshake_timeout_s=handshake_timeout_s,
                         handshake_retries=handshake_retries,
                         conn_deadline_s=conn_deadline_s,
                         backend_timeout_s=backend_timeout_s,
                         buffer_pool=buffer_pool),
            name=f"handler{index + 1}",
        )
    scheduler.add(_tick_driver(stack), name="tick-driver")
    return scheduler


# ---------------------------------------------------------------------------
# Past the Figure-3 ceiling: the dynamic connection-slot pool
# ---------------------------------------------------------------------------

#: Per-slot record buffer carved from the no-free xmem pool (matches
#: the fault worlds' per-handler buffer size).
SLOT_BUFFER_BYTES = 4096


class _SlotMailbox:
    """Admission -> slot hand-off cell: the accepted socket, or None."""

    __slots__ = ("sock",)

    def __init__(self):
        self.sock = None


def _pool_slot(stack: DyncTcpStack, context: IsslContext,
               backend_ip, backend_port,
               stats: dict | None, secure: bool, label: str,
               mailbox: _SlotMailbox, slot, free_socks, *,
               handshake_timeout_s: float | None = None,
               handshake_retries: int = 0,
               conn_deadline_s: float | None = None,
               backend_timeout_s: float | None = None,
               buffer_pool=None):
    """One indexed-cofunction slot: serve handed-off connections forever.

    The admission step (not this body) listens, accepts, and either
    places an established connection into this slot's mailbox or
    refuses it; from the hand-off on, the slot mirrors
    :func:`_rmc_handler`'s established path exactly -- same counters,
    same recorder events, same per-request progress deadline -- and
    every exit path releases its pool buffer exactly once and returns
    the socket to the admission free list.
    """
    sim = stack.host.sim
    obs = sim.obs
    tracer = obs.tracer
    recorder = obs.recorder
    metrics = obs.metrics
    ctr_refused_sessions = metrics.counter("redirector.refused.sessions")
    ctr_refused_memory = metrics.counter("redirector.refused.memory")
    ctr_hs_errors = metrics.counter("redirector.errors.handshake")
    ctr_backend_errors = metrics.counter("redirector.errors.backend")
    ctr_recovered = metrics.counter("redirector.recovered")
    gauge_active = metrics.gauge("redirector.active_connections")
    ts_active = obs.telemetry.series("redirector.active_connections")
    gauge_occupied = metrics.gauge("redirector.slots.occupied")
    ts_occupied = obs.telemetry.series("redirector.slots.occupied")
    log = context.logger.log
    tid = f"svc:{label}"

    def release_slot(sock):
        # The one place a slot goes idle: socket back on the admission
        # free list, mailbox cleared, occupancy stepped down.
        free_socks.append(sock)
        mailbox.sock = None
        slot.busy = False
        gauge_occupied.set(gauge_occupied.value - 1)
        ts_occupied.record(gauge_occupied.value)

    while True:
        # The mailbox is only filled by the admission step, which runs
        # in this same pool driver and declares its own pass non-idle
        # when it hands off -- so an empty-mailbox poll is a pure
        # event-wait the big loop may bulk-replay past.
        while mailbox.sock is None:
            yield IDLE
        sock = mailbox.sock
        span = tracer.begin("service.connection", cat=CAT_SERVICE, tid=tid)
        buffer = None
        if buffer_pool is not None:
            try:
                buffer = buffer_pool.acquire()
            except XallocError as exc:
                # The xmem budget is a refusal, never an allocation past
                # it: the slot sheds the connection and goes back idle.
                ctr_refused_memory.inc()
                log(f"redirector: {label}: out of xmem, refusing: {exc}")
                recorder.warn(CAT_SERVICE, tid, "refused: out of xmem")
                stack.sock_abort(sock)
                tracer.end(span, error="memory")
                ctr_recovered.inc()
                release_slot(sock)
                yield
                continue
        session = None
        if secure:
            try:
                session = issl_bind(context, sock, stack=stack,
                                    role="server")
            except IsslSessionLimitError as exc:
                ctr_refused_sessions.inc()
                log(f"redirector: {label}: refused: {exc}")
                recorder.warn(CAT_SERVICE, tid, "refused: session limit")
                stack.sock_abort(sock)
                if buffer is not None:
                    buffer_pool.release(buffer)
                tracer.end(span, error="sessions")
                ctr_recovered.inc()
                release_slot(sock)
                yield
                continue
            try:
                yield from session.handshake(
                    timeout=handshake_timeout_s,
                    retries=handshake_retries,
                )
            except IsslError as exc:
                ctr_hs_errors.inc()
                log(f"redirector: {label}: handshake failed: {exc}")
                recorder.error(
                    CAT_SERVICE, tid, f"handshake failed: {type(exc).__name__}"
                )
                stack.sock_abort(sock)
                if buffer is not None:
                    buffer_pool.release(buffer)
                tracer.end(span, error="handshake")
                ctr_recovered.inc()
                release_slot(sock)
                yield
                continue
        backend = make_socket(stack)
        stack.tcp_open(backend, 0, backend_ip, backend_port)
        backend_deadline = (
            None if backend_timeout_s is None
            else sim.now + backend_timeout_s
        )
        # Event-wait, same contract as the static handler's.
        backend_token = (
            IDLE if backend_deadline is None
            else idle_until(backend_deadline)
        )
        while not (
            stack.sock_established(backend) or _sock_dead(backend)
            or (backend_deadline is not None
                and sim.now >= backend_deadline)
        ):
            yield backend_token
        if not stack.sock_established(backend):
            ctr_backend_errors.inc()
            log(f"redirector: {label}: backend unreachable")
            recorder.error(CAT_SERVICE, tid, "backend unreachable")
            stack.sock_abort(backend)
            if secure:
                yield from session.close()
            else:
                stack.sock_close(sock)
            if buffer is not None:
                buffer_pool.release(buffer)
            tracer.end(span, error="backend-connect")
            ctr_recovered.inc()
            release_slot(sock)
            yield
            continue
        gauge_active.set(gauge_active.value + 1)
        ts_active.record(gauge_active.value)
        requests = yield from _rmc_serve(
            stack, sock, backend, session, stats, tid,
            deadline_s=conn_deadline_s, logger=context.logger,
        )
        gauge_active.set(gauge_active.value - 1)
        ts_active.record(gauge_active.value)
        stack.sock_close(backend)
        if secure:
            yield from session.close()
        stack.sock_close(sock)
        if buffer is not None:
            buffer_pool.release(buffer)
        tracer.end(span, requests=requests)
        release_slot(sock)
        yield


def build_pooled_redirector(stack: DyncTcpStack, context: IsslContext,
                            backend_ip: Ipv4Address | str,
                            backend_port: int = BACKEND_PORT,
                            listen_port: int = TLS_PORT,
                            slots: int = 3,
                            admission: bool = True,
                            secure: bool = True,
                            stats: dict | None = None,
                            pass_overhead_s: float | None = None,
                            obs=None,
                            handshake_timeout_s: float | None = None,
                            handshake_retries: int = 0,
                            conn_deadline_s: float | None = None,
                            backend_timeout_s: float | None = None,
                            buffer_pool=None,
                            xmem=None,
                            slot_bytes: int = SLOT_BUFFER_BYTES
                            ) -> CostateScheduler:
    """The dynamic connection-slot pool: one pooled costatement, N slots.

    Where Figure 3 hardcodes one costatement per connection,
    this builder registers a single indexed pooled costatement
    (:class:`~repro.dync.runtime.costate.IndexedCofunctionPool`) whose
    capacity is ``slots`` -- the "add more costatements and recompile"
    knob turned into a build-time parameter, exactly the shape dclint
    DC003 counts by its configured bound.

    Two wirings:

    * ``admission=True`` (default): one acceptor socket listens; each
      established connection is handed to the lowest-index idle slot or
      refused (``redirector.refused.slots`` + a flight-recorder event)
      when all slots are busy.  Occupancy is published as the
      ``redirector.slots.occupied`` gauge and telemetry series.
    * ``admission=False``: every slot runs the classic
      :func:`_rmc_handler` body (listen/serve/re-listen) inside the
      pooled costatement -- step-for-step the static variant's
      behaviour, which the differential regression tests pin.

    Per-slot record buffers come from ``buffer_pool``; passing ``xmem``
    instead builds an :class:`~repro.dync.runtime.xalloc.XmemBufferPool`
    of ``slots`` x ``slot_bytes`` over it, so a pool sized past the
    budget refuses at admission (``redirector.refused.memory``) rather
    than allocating past it.  The per-request progress deadline
    (``conn_deadline_s``) and the other hardening knobs carry over
    from the static builder unchanged.
    """
    if slots < 1:
        raise ValueError(f"slots must be >= 1, got {slots}")
    if isinstance(backend_ip, str):
        backend_ip = Ipv4Address.parse(backend_ip)
    stack.sock_init()
    if buffer_pool is None and xmem is not None:
        buffer_pool = XmemBufferPool(xmem, slots, slot_bytes,
                                     obs=stack.host.sim.obs)
    kwargs = {}
    if pass_overhead_s is not None:
        kwargs["pass_overhead_s"] = pass_overhead_s
    scheduler = CostateScheduler(stack.host.sim, name="rmc-redirector",
                                 obs=obs, **kwargs)
    handler_kwargs = dict(
        handshake_timeout_s=handshake_timeout_s,
        handshake_retries=handshake_retries,
        conn_deadline_s=conn_deadline_s,
        backend_timeout_s=backend_timeout_s,
        buffer_pool=buffer_pool,
    )
    pool = IndexedCofunctionPool(name="slot-pool")
    if not admission:
        # Listen-mode slots: the static handler body, pooled.  Counter
        # parity with build_rmc_redirector is by construction.
        for index in range(slots):
            slot = pool.add_slot(name=f"slot{index + 1}")
            slot.bind(_rmc_handler(
                stack, context, backend_ip, backend_port, listen_port,
                stats, secure, label=f"slot{index + 1}", **handler_kwargs,
            ))
        scheduler.add_pool(pool)
        scheduler.add(_tick_driver(stack), name="tick-driver")
        return scheduler

    sim = stack.host.sim
    world_obs = sim.obs
    metrics = world_obs.metrics
    recorder = world_obs.recorder
    ctr_refused_slots = metrics.counter("redirector.refused.slots")
    ctr_handoffs = metrics.counter("redirector.slots.handoffs")
    ctr_recovered = metrics.counter("redirector.recovered")
    gauge_occupied = metrics.gauge("redirector.slots.occupied")
    ts_occupied = world_obs.telemetry.series("redirector.slots.occupied")
    log = context.logger.log
    admission_tid = "svc:admission"
    # Statically allocated sockets, Rabbit style: one in the acceptor's
    # hand, the rest on the free list; slots return theirs on release.
    free_socks = deque(make_socket(stack) for _ in range(slots))
    acceptor = [make_socket(stack)]
    table = []
    for index in range(slots):
        mailbox = _SlotMailbox()
        slot = pool.add_slot(name=f"slot{index + 1}")
        slot.bind(_pool_slot(
            stack, context, backend_ip, backend_port, stats, secure,
            f"slot{index + 1}", mailbox, slot, free_socks, **handler_kwargs,
        ))
        table.append((mailbox, slot))

    def admission_step():
        # One non-blocking admission decision per big-loop pass.
        # Returns True when the decision was a pure "still listening"
        # check -- the one branch that is a declared event-wait (an
        # attachment only happens in a tick-driver drain, itself a
        # non-idle pass); every other branch does work.
        sock = acceptor[0]
        if sock.waiting:
            return True  # listening; nothing attached yet
        conn = sock.conn
        if conn is None or conn.state.value in ("CLOSED", "TIME_WAIT"):
            # (Re-)arm the listener; always succeeds from these states.
            stack.tcp_listen(sock, listen_port)
            return False
        if stack.sock_established(sock):
            for mailbox, slot in table:
                if not slot.busy:
                    # Hand off to the lowest-index idle slot.
                    slot.busy = True
                    mailbox.sock = sock
                    ctr_handoffs.inc()
                    gauge_occupied.set(gauge_occupied.value + 1)
                    ts_occupied.record(gauge_occupied.value)
                    acceptor[0] = free_socks.popleft()
                    return False
            # Every slot busy: refuse instead of queueing unboundedly --
            # the pool's capacity is the budget, and the refusal is the
            # observable (counter + recorder event), not a wedge.
            ctr_refused_slots.inc()
            log(f"redirector: admission: refused: all {len(table)} "
                f"slots busy")
            recorder.warn(CAT_SERVICE, admission_tid, "refused: no idle slot")
            stack.sock_abort(sock)
            ctr_recovered.inc()
            return False
        if _sock_dead(sock):
            # Died while queued for admission (lost handshake, RST);
            # the abort lands the conn in CLOSED, so the next pass
            # re-arms the listener.
            log("redirector: admission: connection died before established")
            recorder.warn(CAT_SERVICE, admission_tid,
                          "connection died before established")
            stack.sock_abort(sock)
            ctr_recovered.inc()
            return False
        # A teardown-in-flight socket off the free list: rotate it to
        # the back so one lingering close never stalls admission.
        free_socks.append(sock)
        acceptor[0] = free_socks.popleft()
        return False

    def pool_driver():
        # The driver's pass is idle only when the admission decision was
        # the pure listening check AND every live slot declared idle --
        # sweep_yield folds the slots' tokens into one.
        while True:
            admission_idle = admission_step()
            yield pool.sweep_yield(pool.step_all(),
                                   extra_idle=admission_idle)

    scheduler.add_pool(pool, driver=pool_driver())
    scheduler.add(_tick_driver(stack), name="tick-driver")
    return scheduler
