"""The case-study service: a secure redirector (DESIGN.md S8).

The paper's authors "implemented a simple Unix service that used the
issl library to establish a secure redirector" and later ported it to
the RMC2000.  The service is an SSL terminator: clients speak issl to
it; it decrypts each request line, forwards it over plain TCP to a
backend, and returns the backend's response line over the secure
channel -- the coprocessor-offload pattern Section 2 motivates.

Four variants:

* :func:`unix_secure_redirector` -- the original: BSD sockets, one
  forked child per connection (the listing in Section 5.3).
* :func:`build_rmc_redirector` -- the port: Figure 3's main loop, N
  handler costatements (default 3) plus one ``tcp_tick`` driver.
* :func:`unix_plain_redirector` / plain handlers -- the no-TLS baseline
  the E4 throughput experiment compares against.
* :func:`backend_line_server` -- the plaintext backend behind all of
  them.
"""

from __future__ import annotations

from typing import Callable

from repro.dync.runtime.costate import CostateScheduler, waitfor
from repro.issl.api import issl_bind
from repro.issl.session import IsslContext, IsslError
from repro.issl.transport import TransportError
from repro.net.addresses import Ipv4Address
from repro.net.bsd import LISTENQ, SocketError, socket
from repro.net.dynctcp import DyncTcpStack, make_socket
from repro.net.host import Host
from repro.unixsim.host import UnixHost
from repro.unixsim.process import exit_process

#: Figure 3's port.
TLS_PORT = 4433
PLAIN_PORT = 8000
BACKEND_PORT = 9000

_LINE_MAX = 4096


# ---------------------------------------------------------------------------
# Backend
# ---------------------------------------------------------------------------

def backend_line_server(host: Host, port: int = BACKEND_PORT,
                        transform: Callable[[bytes], bytes] | None = None,
                        stats: dict | None = None):
    """Generator: accept-loop line server; one child process per client.

    The default transform upper-cases the request, making redirection
    observable end to end.
    """
    if transform is None:
        transform = bytes.upper
    lsock = socket(host)
    lsock.bind(("", port))
    lsock.listen(LISTENQ)

    def handle(conn):
        buffer = b""
        while True:
            try:
                chunk = yield from conn.recv(_LINE_MAX)
            except SocketError:
                break
            if not chunk:
                break
            buffer += chunk
            while b"\n" in buffer:
                line, buffer = buffer.split(b"\n", 1)
                if stats is not None:
                    stats["requests"] = stats.get("requests", 0) + 1
                yield from conn.sendall(transform(line) + b"\n")
        conn.close()

    while True:
        conn = yield from lsock.accept()
        host.sim.spawn(handle(conn), name=f"{host.name}:backend-child")


# ---------------------------------------------------------------------------
# Line helpers shared by the redirector variants
# ---------------------------------------------------------------------------

def _read_secure_line(session):
    """Generator: accumulate issl records until a full line."""
    buffer = b""
    while b"\n" not in buffer:
        chunk = yield from session.read()
        if not chunk:
            return None if not buffer else buffer
        buffer += chunk
    line, _rest = buffer.split(b"\n", 1)
    # Records align with lines in our clients; keep any tail for safety.
    return line


def _read_plain_line(conn):
    buffer = b""
    while b"\n" not in buffer:
        chunk = yield from conn.recv(_LINE_MAX)
        if not chunk:
            return None
        buffer += chunk
    line, _rest = buffer.split(b"\n", 1)
    return line


# ---------------------------------------------------------------------------
# The original Unix service (fork-per-connection, Section 5.3 listing)
# ---------------------------------------------------------------------------

def unix_secure_redirector(host: UnixHost, context: IsslContext,
                           backend_ip: Ipv4Address | str,
                           backend_port: int = BACKEND_PORT,
                           listen_port: int = TLS_PORT,
                           stats: dict | None = None):
    """Generator (run as a Unix process): the original issl service.

    Structure follows the paper's listing: ``listen``; loop ``accept``;
    ``fork`` a child per request; the parent immediately re-accepts.
    """
    lsock = socket(host)
    lsock.bind(("", listen_port))
    lsock.listen(LISTENQ)
    while True:
        conn = yield from lsock.accept()
        # if ((childpid = fork()) == 0) { handle(accept_fd); exit(0); }
        host.kernel.fork(
            _unix_child(host, context, conn, backend_ip, backend_port, stats),
            name="issl-child",
        )


def _unix_child(host, context, conn, backend_ip, backend_port, stats):
    session = issl_bind(context, conn, role="server")
    try:
        yield from session.handshake()
    except IsslError:
        conn.close()
        exit_process(1)
    backend = socket(host)
    try:
        yield from backend.connect((backend_ip, backend_port))
    except SocketError:
        yield from session.close()
        exit_process(1)
    while True:
        line = yield from _read_secure_line(session)
        if line is None:
            break
        yield from backend.sendall(line + b"\n")
        response = yield from _read_plain_line(backend)
        if response is None:
            break
        yield from session.write(response + b"\n")
        if stats is not None:
            stats["redirected"] = stats.get("redirected", 0) + 1
    backend.close()
    yield from session.close()
    exit_process(0)


def unix_plain_redirector(host: Host, backend_ip: Ipv4Address | str,
                          backend_port: int = BACKEND_PORT,
                          listen_port: int = PLAIN_PORT,
                          stats: dict | None = None):
    """Generator: the same service without TLS (E4 baseline)."""
    lsock = socket(host)
    lsock.bind(("", listen_port))
    lsock.listen(LISTENQ)

    def handle(conn):
        backend = socket(host)
        try:
            yield from backend.connect((backend_ip, backend_port))
        except SocketError:
            conn.close()
            return
        while True:
            line = yield from _read_plain_line(conn)
            if line is None:
                break
            yield from backend.sendall(line + b"\n")
            response = yield from _read_plain_line(backend)
            if response is None:
                break
            yield from conn.sendall(response + b"\n")
            if stats is not None:
                stats["redirected"] = stats.get("redirected", 0) + 1
        backend.close()
        conn.close()

    while True:
        conn = yield from lsock.accept()
        host.sim.spawn(handle(conn), name=f"{host.name}:plain-child")


# ---------------------------------------------------------------------------
# The RMC2000 port (Figure 3: costatements + tick driver)
# ---------------------------------------------------------------------------

def _rmc_handler(stack: DyncTcpStack, context: IsslContext,
                 backend_ip, backend_port, listen_port,
                 stats: dict | None, secure: bool):
    """One handler costatement: serve one connection at a time, forever."""
    sock = make_socket(stack)
    while True:
        # tcp_listen refuses while the previous connection is still
        # tearing down; keep trying, one big-loop pass at a time.
        while not stack.tcp_listen(sock, listen_port):
            yield
        yield from waitfor(lambda: stack.sock_established(sock))
        if secure:
            session = issl_bind(context, sock, stack=stack, role="server")
            try:
                yield from session.handshake()
            except IsslError:
                stack.sock_abort(sock)
                yield
                continue
        backend = make_socket(stack)
        stack.tcp_open(backend, 0, backend_ip, backend_port)
        yield from waitfor(lambda: stack.sock_established(backend))
        yield from _rmc_serve(stack, sock, backend, session if secure else None,
                              stats)
        stack.sock_close(backend)
        if secure:
            yield from session.close()
        # Close our TCP side regardless of who spoke last; sock_close is
        # idempotent and tcp_listen above waits for the teardown.
        stack.sock_close(sock)
        yield


def _rmc_serve(stack, sock, backend, session, stats):
    """Relay request/response lines until the client is done."""
    while True:
        if session is not None:
            try:
                line = yield from _read_secure_line(session)
            except IsslError:
                return
        else:
            line = yield from _dync_read_line(stack, sock)
        if line is None:
            return
        stack.sock_write(backend, line + b"\n")
        response = yield from _dync_read_line(stack, backend)
        if response is None:
            return
        if session is not None:
            try:
                yield from session.write(response + b"\n")
            except (IsslError, TransportError):
                return
        else:
            stack.sock_write(sock, response + b"\n")
        if stats is not None:
            stats["redirected"] = stats.get("redirected", 0) + 1


def _dync_read_line(stack, sock):
    buffer = b""
    while b"\n" not in buffer:
        chunk = stack.sock_read(sock, _LINE_MAX)
        if chunk:
            buffer += chunk
            continue
        if sock.conn is None or sock.conn.at_eof \
                or sock.conn.state.value == "CLOSED":
            return None
        yield
    line, _rest = buffer.split(b"\n", 1)
    return line


def build_rmc_redirector(stack: DyncTcpStack, context: IsslContext,
                         backend_ip: Ipv4Address | str,
                         backend_port: int = BACKEND_PORT,
                         listen_port: int = TLS_PORT,
                         handlers: int = 3,
                         secure: bool = True,
                         stats: dict | None = None,
                         pass_overhead_s: float | None = None) -> CostateScheduler:
    """Assemble Figure 3's main loop and return its (unstarted) scheduler.

    ``handlers`` defaults to 3: "three processes to handle requests
    (allowing a maximum of three connections), and one to drive the TCP
    stack".  Increasing it is the paper's "add more costatements and
    recompile".
    """
    if isinstance(backend_ip, str):
        backend_ip = Ipv4Address.parse(backend_ip)
    stack.sock_init()
    kwargs = {}
    if pass_overhead_s is not None:
        kwargs["pass_overhead_s"] = pass_overhead_s
    scheduler = CostateScheduler(stack.host.sim, name="rmc-redirector", **kwargs)
    for index in range(handlers):
        scheduler.add(
            _rmc_handler(stack, context, backend_ip, backend_port,
                         listen_port, stats, secure),
            name=f"handler{index + 1}",
        )

    def tick_driver():
        while True:
            stack.tcp_tick(None)
            yield

    scheduler.add(tick_driver(), name="tick-driver")
    return scheduler
