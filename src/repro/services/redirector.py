"""The case-study service: a secure redirector (DESIGN.md S8).

The paper's authors "implemented a simple Unix service that used the
issl library to establish a secure redirector" and later ported it to
the RMC2000.  The service is an SSL terminator: clients speak issl to
it; it decrypts each request line, forwards it over plain TCP to a
backend, and returns the backend's response line over the secure
channel -- the coprocessor-offload pattern Section 2 motivates.

Four variants:

* :func:`unix_secure_redirector` -- the original: BSD sockets, one
  forked child per connection (the listing in Section 5.3).
* :func:`build_rmc_redirector` -- the port: Figure 3's main loop, N
  handler costatements (default 3) plus one ``tcp_tick`` driver.
* :func:`unix_plain_redirector` / plain handlers -- the no-TLS baseline
  the E4 throughput experiment compares against.
* :func:`backend_line_server` -- the plaintext backend behind all of
  them.
"""

from __future__ import annotations

from typing import Callable

from repro.dync.runtime.costate import CostateScheduler, waitfor
from repro.issl.api import issl_bind
from repro.issl.session import IsslContext, IsslError
from repro.issl.transport import TransportError
from repro.net.addresses import Ipv4Address
from repro.net.bsd import LISTENQ, SocketError, socket
from repro.net.dynctcp import DyncTcpStack, make_socket
from repro.net.host import Host
from repro.obs.trace import CAT_SERVICE
from repro.unixsim.host import UnixHost
from repro.unixsim.process import exit_process

#: Figure 3's port.
TLS_PORT = 4433
PLAIN_PORT = 8000
BACKEND_PORT = 9000

_LINE_MAX = 4096


# ---------------------------------------------------------------------------
# Backend
# ---------------------------------------------------------------------------

def backend_line_server(host: Host, port: int = BACKEND_PORT,
                        transform: Callable[[bytes], bytes] | None = None,
                        stats: dict | None = None):
    """Generator: accept-loop line server; one child process per client.

    The default transform upper-cases the request, making redirection
    observable end to end.
    """
    if transform is None:
        transform = bytes.upper
    lsock = socket(host)
    lsock.bind(("", port))
    lsock.listen(LISTENQ)

    def handle(conn):
        buffer = b""
        while True:
            try:
                chunk = yield from conn.recv(_LINE_MAX)
            except SocketError:
                break
            if not chunk:
                break
            buffer += chunk
            while b"\n" in buffer:
                line, buffer = buffer.split(b"\n", 1)
                if stats is not None:
                    stats["requests"] = stats.get("requests", 0) + 1
                yield from conn.sendall(transform(line) + b"\n")
        conn.close()

    while True:
        conn = yield from lsock.accept()
        host.sim.spawn(handle(conn), name=f"{host.name}:backend-child")


# ---------------------------------------------------------------------------
# Line helpers shared by the redirector variants
# ---------------------------------------------------------------------------

def _read_secure_line(session):
    """Generator: accumulate issl records until a full line."""
    buffer = b""
    while b"\n" not in buffer:
        chunk = yield from session.read()
        if not chunk:
            return None if not buffer else buffer
        buffer += chunk
    line, _rest = buffer.split(b"\n", 1)
    # Records align with lines in our clients; keep any tail for safety.
    return line


def _read_plain_line(conn):
    buffer = b""
    while b"\n" not in buffer:
        chunk = yield from conn.recv(_LINE_MAX)
        if not chunk:
            return None
        buffer += chunk
    line, _rest = buffer.split(b"\n", 1)
    return line


# ---------------------------------------------------------------------------
# The original Unix service (fork-per-connection, Section 5.3 listing)
# ---------------------------------------------------------------------------

def unix_secure_redirector(host: UnixHost, context: IsslContext,
                           backend_ip: Ipv4Address | str,
                           backend_port: int = BACKEND_PORT,
                           listen_port: int = TLS_PORT,
                           stats: dict | None = None):
    """Generator (run as a Unix process): the original issl service.

    Structure follows the paper's listing: ``listen``; loop ``accept``;
    ``fork`` a child per request; the parent immediately re-accepts.
    """
    lsock = socket(host)
    lsock.bind(("", listen_port))
    lsock.listen(LISTENQ)
    accepted = 0
    while True:
        conn = yield from lsock.accept()
        accepted += 1
        # if ((childpid = fork()) == 0) { handle(accept_fd); exit(0); }
        host.kernel.fork(
            _unix_child(host, context, conn, backend_ip, backend_port, stats,
                        f"svc:unix-child:{accepted}"),
            name="issl-child",
        )


def _unix_child(host, context, conn, backend_ip, backend_port, stats,
                tid="svc:unix-child"):
    obs = host.sim.obs
    tracer = obs.tracer
    ctr_redirected = obs.metrics.counter("redirector.redirected")
    span = tracer.begin("service.connection", cat=CAT_SERVICE, tid=tid)
    session = issl_bind(context, conn, role="server")
    try:
        yield from session.handshake()
    except IsslError:
        conn.close()
        tracer.end(span, error="handshake")
        exit_process(1)
    backend = socket(host)
    try:
        yield from backend.connect((backend_ip, backend_port))
    except SocketError:
        yield from session.close()
        tracer.end(span, error="backend-connect")
        exit_process(1)
    requests = 0
    while True:
        line = yield from _read_secure_line(session)
        if line is None:
            break
        request_start = host.sim.now
        yield from backend.sendall(line + b"\n")
        response = yield from _read_plain_line(backend)
        if response is None:
            break
        yield from session.write(response + b"\n")
        requests += 1
        ctr_redirected.inc()
        tracer.add_complete(
            "service.request", request_start, host.sim.now,
            cat=CAT_SERVICE, tid=tid, bytes=len(line),
        )
        if stats is not None:
            stats["redirected"] = stats.get("redirected", 0) + 1
    backend.close()
    yield from session.close()
    tracer.end(span, requests=requests)
    exit_process(0)


def unix_plain_redirector(host: Host, backend_ip: Ipv4Address | str,
                          backend_port: int = BACKEND_PORT,
                          listen_port: int = PLAIN_PORT,
                          stats: dict | None = None):
    """Generator: the same service without TLS (E4 baseline)."""
    lsock = socket(host)
    lsock.bind(("", listen_port))
    lsock.listen(LISTENQ)

    def handle(conn):
        backend = socket(host)
        try:
            yield from backend.connect((backend_ip, backend_port))
        except SocketError:
            conn.close()
            return
        while True:
            line = yield from _read_plain_line(conn)
            if line is None:
                break
            yield from backend.sendall(line + b"\n")
            response = yield from _read_plain_line(backend)
            if response is None:
                break
            yield from conn.sendall(response + b"\n")
            if stats is not None:
                stats["redirected"] = stats.get("redirected", 0) + 1
        backend.close()
        conn.close()

    while True:
        conn = yield from lsock.accept()
        host.sim.spawn(handle(conn), name=f"{host.name}:plain-child")


# ---------------------------------------------------------------------------
# The RMC2000 port (Figure 3: costatements + tick driver)
# ---------------------------------------------------------------------------

def _rmc_handler(stack: DyncTcpStack, context: IsslContext,
                 backend_ip, backend_port, listen_port,
                 stats: dict | None, secure: bool, label: str = "handler"):
    """One handler costatement: serve one connection at a time, forever."""
    sim = stack.host.sim
    tracer = sim.obs.tracer
    tid = f"svc:{label}"
    sock = make_socket(stack)
    while True:
        # tcp_listen refuses while the previous connection is still
        # tearing down; keep trying, one big-loop pass at a time.
        while not stack.tcp_listen(sock, listen_port):
            yield
        yield from waitfor(lambda: stack.sock_established(sock))
        span = tracer.begin("service.connection", cat=CAT_SERVICE, tid=tid)
        if secure:
            session = issl_bind(context, sock, stack=stack, role="server")
            try:
                yield from session.handshake()
            except IsslError:
                stack.sock_abort(sock)
                tracer.end(span, error="handshake")
                yield
                continue
        backend = make_socket(stack)
        stack.tcp_open(backend, 0, backend_ip, backend_port)
        yield from waitfor(lambda: stack.sock_established(backend))
        requests = yield from _rmc_serve(
            stack, sock, backend, session if secure else None, stats, tid
        )
        stack.sock_close(backend)
        if secure:
            yield from session.close()
        # Close our TCP side regardless of who spoke last; sock_close is
        # idempotent and tcp_listen above waits for the teardown.
        stack.sock_close(sock)
        tracer.end(span, requests=requests)
        yield


def _rmc_serve(stack, sock, backend, session, stats, tid="svc:handler"):
    """Relay request/response lines until the client is done."""
    obs = stack.host.sim.obs
    tracer = obs.tracer
    ctr_redirected = obs.metrics.counter("redirector.redirected")
    requests = 0
    while True:
        if session is not None:
            try:
                line = yield from _read_secure_line(session)
            except IsslError:
                return requests
        else:
            line = yield from _dync_read_line(stack, sock)
        if line is None:
            return requests
        request_start = stack.host.sim.now
        stack.sock_write(backend, line + b"\n")
        response = yield from _dync_read_line(stack, backend)
        if response is None:
            return requests
        if session is not None:
            try:
                yield from session.write(response + b"\n")
            except (IsslError, TransportError):
                return requests
        else:
            stack.sock_write(sock, response + b"\n")
        requests += 1
        ctr_redirected.inc()
        tracer.add_complete(
            "service.request", request_start, stack.host.sim.now,
            cat=CAT_SERVICE, tid=tid, bytes=len(line),
        )
        if stats is not None:
            stats["redirected"] = stats.get("redirected", 0) + 1


def _dync_read_line(stack, sock):
    buffer = b""
    while b"\n" not in buffer:
        chunk = stack.sock_read(sock, _LINE_MAX)
        if chunk:
            buffer += chunk
            continue
        if sock.conn is None or sock.conn.at_eof \
                or sock.conn.state.value == "CLOSED":
            return None
        yield
    line, _rest = buffer.split(b"\n", 1)
    return line


def build_rmc_redirector(stack: DyncTcpStack, context: IsslContext,
                         backend_ip: Ipv4Address | str,
                         backend_port: int = BACKEND_PORT,
                         listen_port: int = TLS_PORT,
                         handlers: int = 3,
                         secure: bool = True,
                         stats: dict | None = None,
                         pass_overhead_s: float | None = None,
                         obs=None) -> CostateScheduler:
    """Assemble Figure 3's main loop and return its (unstarted) scheduler.

    ``handlers`` defaults to 3: "three processes to handle requests
    (allowing a maximum of three connections), and one to drive the TCP
    stack".  Increasing it is the paper's "add more costatements and
    recompile".  ``obs`` overrides the simulator's observability handle
    for the scheduler (slice spans, jitter histogram).
    """
    if isinstance(backend_ip, str):
        backend_ip = Ipv4Address.parse(backend_ip)
    stack.sock_init()
    kwargs = {}
    if pass_overhead_s is not None:
        kwargs["pass_overhead_s"] = pass_overhead_s
    scheduler = CostateScheduler(stack.host.sim, name="rmc-redirector",
                                 obs=obs, **kwargs)
    for index in range(handlers):
        scheduler.add(
            _rmc_handler(stack, context, backend_ip, backend_port,
                         listen_port, stats, secure,
                         label=f"handler{index + 1}"),
            name=f"handler{index + 1}",
        )

    def tick_driver():
        while True:
            stack.tcp_tick(None)
            yield

    scheduler.add(tick_driver(), name="tick-driver")
    return scheduler
