"""The concurrency scaling curve: offered connections vs the pool.

Figure 3 concedes "a maximum of three connections" because the port
hardcodes three request costatements.  :func:`run_scaling_curve`
measures what replacing them with the dynamic connection-slot pool
(:func:`repro.services.redirector.build_pooled_redirector`) buys: the
same fixed client workload offered to the static 3-costatement build
and to pools of {3, 8, 16, 32} slots on one device, recording
completed-request throughput, p50/p95/p99 request latency (a
:class:`repro.obs.metrics.QuantileSketch`), the refusal rate, and the
xmem budget accounting per point.

Everything is simulated and seeded, so the whole section is
byte-identical between runs and between ``--jobs 1`` and ``--jobs 2``
(the fan-out worker is module-level and points merge in task order).
The section lands in the bench snapshot as ``redirector_scaling`` and
the gate claims pin its summary: a pool of >= 8 slots strictly beats
the static build's throughput, with zero xmem budget violations and
monotone throughput / refusal-rate curves across pool sizes.
"""

from __future__ import annotations

from dataclasses import replace as dc_replace

from repro.crypto.demokeys import DEMO_PSK
from repro.crypto.prng import CipherRng
from repro.dync.runtime.xalloc import XmemAllocator, XmemBufferPool
from repro.issl import (
    CircularLogger,
    IsslContext,
    RMC2000_ASM,
    RMC2000_PORT,
    UNIX_FULL,
)
from repro.net.dynctcp import DyncTcpStack
from repro.net.host import build_lan
from repro.net.sim import Simulator
from repro.obs import Obs
from repro.obs.metrics import QuantileSketch
from repro.services.client import ClientReport, secure_request_client
from repro.services.redirector import (
    SLOT_BUFFER_BYTES,
    TLS_PORT,
    backend_line_server,
    build_pooled_redirector,
    build_rmc_redirector,
)

#: The pool sizes the paper-breaking curve is measured at.
SCALING_POOL_SIZES = (3, 8, 16, 32)

#: Default scaling workload: enough offered connections to saturate the
#: largest pool without dwarfing the smallest.
DEFAULT_CLIENTS = 24
DEFAULT_REQUESTS = 2
DEFAULT_REQUEST_SIZE = 64
DEFAULT_SEED = 2000

#: One device's xmem budget for the whole curve: every point runs on
#: the same allocator capacity, so a pool sized past it would have to
#: refuse (``redirector.refused.memory``), never allocate past it.
XMEM_CAPACITY = 192 * 1024

#: LAN shape: enough propagation delay that handshake round trips
#: dominate a connection's lifetime -- the regime where concurrency
#: (not CPU) is the bottleneck Figure 3's static trio leaves on the
#: table.
_BANDWIDTH_BPS = 10_000_000
_LATENCY_S = 10e-3

#: Refused clients retry with a short deterministic backoff (plus a
#: per-client stagger so retries never re-collide in lockstep).
_RETRY_BACKOFF_S = 0.05
_RETRY_STAGGER_S = 0.002


def _seed_bytes(seed: int, label: str) -> bytes:
    return f"scaling:{seed}:{label}".encode()


def _retrying_client(host, server_ip, port, requests, request_size,
                     reports, index, seed, retry_limit, backoff_s):
    """Generator: run the secure client until it completes its requests,
    retrying (fresh issl context, deterministic backoff) after a refusal.

    A refused connection surfaces client-side as a reset mid-handshake;
    each attempt gets its own context so a torn attempt can never leak
    a client session slot into the next one.
    """
    attempt = 0
    while True:
        report = ClientReport(f"client{index}.a{attempt}")
        reports.append(report)
        context = IsslContext(
            UNIX_FULL,
            CipherRng(_seed_bytes(seed, f"client{index}.a{attempt}")),
            psk=DEMO_PSK, obs=host.sim.obs,
        )
        yield from secure_request_client(
            host, context, server_ip, port, requests, request_size, report,
        )
        if report.error is None and len(report.request_times) == requests:
            return report
        attempt += 1
        if attempt > retry_limit:
            return report
        yield backoff_s * attempt + index * _RETRY_STAGGER_S


def _staggered(start_s: float, gen):
    if start_s > 0:
        yield start_s
    result = yield from gen
    return result


def run_scaling_point(*, variant: str, slots: int,
                      clients: int = DEFAULT_CLIENTS,
                      requests: int = DEFAULT_REQUESTS,
                      request_size: int = DEFAULT_REQUEST_SIZE,
                      seed: int = DEFAULT_SEED,
                      retry_limit: int | None = None,
                      backoff_s: float = _RETRY_BACKOFF_S,
                      machine_probe: bool = True) -> dict:
    """One point on the curve: ``variant`` is ``"static"`` (Figure 3's
    three costatements) or ``"pool"`` (the dynamic slot pool at
    ``slots``).  Returns a plain insertion-ordered dict of metrics.

    ``machine_probe`` (default on) attaches the point's device-side
    record: one machine forked from the per-process warm template
    (:mod:`repro.rabbit.machine`) and liveness-probed -- no cold boot,
    so the record is identical sequentially and under fan-out.
    """
    if variant not in ("static", "pool"):
        raise ValueError(f"variant must be static/pool, got {variant!r}")
    if retry_limit is None:
        # Worst case every surplus connection retries against the
        # smallest pool; leave comfortable headroom.
        retry_limit = 2 * clients // max(1, slots) + 4
    obs = Obs()
    sim = Simulator(obs=obs)
    names = ["rmc", "backend"] + [f"c{i}" for i in range(clients)]
    lan, hosts = build_lan(sim, names, bandwidth_bps=_BANDWIDTH_BPS,
                           latency_s=_LATENCY_S)
    del lan  # the segment lives on via the attached hosts
    stack = DyncTcpStack(hosts["rmc"])
    profile = dc_replace(
        RMC2000_PORT.with_cost_model(RMC2000_ASM), max_sessions=slots
    )
    logger = CircularLogger(capacity=64, obs=obs)
    context = IsslContext(profile, CipherRng(_seed_bytes(seed, "server")),
                          logger=logger, psk=DEMO_PSK, obs=obs)
    xmem = XmemAllocator(capacity=XMEM_CAPACITY, obs=obs)
    hosts["backend"].spawn(backend_line_server(
        hosts["backend"], backlog=max(5, slots)
    ))
    stats: dict = {}
    common = dict(
        stats=stats, obs=obs,
        handshake_timeout_s=5.0, handshake_retries=1,
        conn_deadline_s=10.0, backend_timeout_s=5.0,
    )
    if variant == "static":
        buffer_pool = XmemBufferPool(xmem, slots, SLOT_BUFFER_BYTES, obs=obs)
        scheduler = build_rmc_redirector(
            stack, context, str(hosts["backend"].ip_address),
            handlers=slots, buffer_pool=buffer_pool, **common,
        )
    else:
        scheduler = build_pooled_redirector(
            stack, context, str(hosts["backend"].ip_address),
            slots=slots, xmem=xmem, **common,
        )
    scheduler.start()
    reports: list[ClientReport] = []
    finals: list[ClientReport | None] = [None] * clients
    processes = []
    server_ip = str(hosts["rmc"].ip_address)

    def client_process(index):
        final = yield from _staggered(
            index * _RETRY_STAGGER_S,
            _retrying_client(hosts[f"c{index}"], server_ip, TLS_PORT,
                             requests, request_size, reports, index, seed,
                             retry_limit, backoff_s),
        )
        finals[index] = final

    for index in range(clients):
        processes.append(hosts[f"c{index}"].spawn(
            client_process(index), name=f"scaling:client{index}"
        ))
    for process in processes:
        sim.run_until_complete(process, timeout=600)
    sim.run(until=sim.now + 2.0)
    scheduler.stop()
    counters = dict(obs.metrics.snapshot()["counters"])
    gauges = obs.metrics.snapshot()["gauges"]
    sketch = QuantileSketch("redirector.request_latency_s")
    for report in reports:
        for latency in report.request_times:
            sketch.observe(latency)
    completed = stats.get("redirected", 0)
    attempts = len(reports)
    refused_slots = counters.get("redirector.refused.slots", 0)
    refused_sessions = counters.get("redirector.refused.sessions", 0)
    refused_memory = counters.get("redirector.refused.memory", 0)
    refused = refused_slots + refused_sessions + refused_memory
    makespan = max((f.end for f in finals if f is not None), default=0.0)
    latency = sketch.percentiles()
    occupied = gauges.get("redirector.slots.occupied", {})
    machine_record = None
    if machine_probe:
        from repro.rabbit.machine import fork_warm_monitor, probe_liveness

        probe = probe_liveness(fork_warm_monitor())
        machine_record = {
            "forks": 1,
            "cold_boots": 0,
            "liveness_ok": probe["ok"],
            "probe_cycles": probe["probe_cycles"],
        }
    point = {
        "variant": variant,
        "slots": slots,
        "clients": clients,
        "requests_per_client": requests,
        "attempts": attempts,
        "completed_requests": completed,
        "clients_completed": sum(
            1 for f in finals if f is not None and f.error is None
        ),
        "refused_connections": refused,
        "refused_slots": refused_slots,
        "refused_sessions": refused_sessions,
        "refused_memory": refused_memory,
        "refusal_rate": round(refused / attempts, 6) if attempts else 0.0,
        "makespan_s": round(makespan, 6),
        "throughput_rps": (
            round(completed / makespan, 6) if makespan > 0 else 0.0
        ),
        "latency_s": {
            "p50": round(latency["p50"], 6),
            "p95": round(latency["p95"], 6),
            "p99": round(latency["p99"], 6),
        },
        "peak_slots_occupied": occupied.get("high_water", 0.0),
        "xmem_used_bytes": xmem.used,
        "xmem_capacity_bytes": xmem.capacity,
        "xmem_budget_violations": int(xmem.used > xmem.capacity),
    }
    if machine_record is not None:
        point["machine"] = machine_record
    return point


def _scaling_worker(task: tuple) -> dict:
    """Run one point; module-level so multiprocessing can pickle it."""
    variant, slots, kwargs = task
    return run_scaling_point(variant=variant, slots=slots, **kwargs)


def _non_decreasing(values: list[float]) -> int:
    return int(all(b >= a - 1e-9 for a, b in zip(values, values[1:])))


def _non_increasing(values: list[float]) -> int:
    return int(all(b <= a + 1e-9 for a, b in zip(values, values[1:])))


def run_scaling_curve(*, pool_sizes: tuple = SCALING_POOL_SIZES,
                      clients: int = DEFAULT_CLIENTS,
                      requests: int = DEFAULT_REQUESTS,
                      request_size: int = DEFAULT_REQUEST_SIZE,
                      seed: int = DEFAULT_SEED,
                      jobs: int = 1,
                      machine_probe: bool = True) -> dict:
    """The full curve: the static-3 baseline plus every pool size under
    one fixed offered workload.  Returns the ``redirector_scaling``
    snapshot section."""
    # dict.fromkeys, not a set: simulation-tree code never iterates sets.
    sizes = sorted(dict.fromkeys(pool_sizes))
    kwargs = dict(clients=clients, requests=requests,
                  request_size=request_size, seed=seed,
                  machine_probe=machine_probe)
    tasks = [("static", 3, kwargs)] + [("pool", n, kwargs) for n in sizes]
    if jobs > 1 and len(tasks) > 1:
        import multiprocessing

        with multiprocessing.Pool(min(jobs, len(tasks))) as pool:
            points = pool.map(_scaling_worker, tasks)
    else:
        points = [_scaling_worker(task) for task in tasks]
    static3 = points[0]
    pools = {str(n): point for n, point in zip(sizes, points[1:])}
    rps = [pools[str(n)]["throughput_rps"] for n in sizes]
    refusal = [pools[str(n)]["refusal_rate"] for n in sizes]
    violations = sum(p["xmem_budget_violations"] for p in points)
    summary = {
        "throughput_rps_static3": static3["throughput_rps"],
        "monotone_throughput": _non_decreasing(rps),
        "monotone_refusal_rate": _non_increasing(refusal),
        "xmem_budget_violations": violations,
    }
    if "8" in pools and static3["throughput_rps"] > 0:
        summary["speedup_8_vs_static3"] = round(
            pools["8"]["throughput_rps"] / static3["throughput_rps"], 6
        )
    return {
        "workload": {
            "clients": clients,
            "requests_per_client": requests,
            "request_size": request_size,
            "seed": seed,
            "pool_sizes": list(sizes),
            "xmem_capacity_bytes": XMEM_CAPACITY,
        },
        "static3": static3,
        "pools": pools,
        "summary": summary,
    }
