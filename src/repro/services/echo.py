"""The paper's Figure 2: one echo server, two APIs.

``bsd_echo_server`` is a line-for-line analogue of Figure 2(a) --
socket/bind/listen/accept/recv/send -- and ``dync_echo_costate`` of
Figure 2(b) -- sock_init/tcp_listen/sock_wait_established/tcp_tick/
sock_gets/sock_puts.  The E6 benchmark runs both against the same client
and diffs the API surface they consumed.
"""

from __future__ import annotations

from repro.dync.runtime.costate import IDLE
from repro.net.bsd import LISTENQ, SocketError, socket
from repro.net.dynctcp import (
    DyncTcpStack,
    TCP_MODE_ASCII,
    make_socket,
)
from repro.net.host import Host

#: Figure 2's LEN buffer size.
LEN = 512


def bsd_echo_server(host: Host, port: int, once: bool = True):
    """Generator: the BSD echo server of Figure 2(a).

    With ``once=True`` (the figure's shape) it serves a single
    connection, echoes one buffer, and returns 0; -1 on error paths,
    matching the C return conventions.
    """
    try:
        sock = socket(host)
        sock.bind(("", port))
        sock.listen(LISTENQ)
    except SocketError:
        return -1
    while True:
        try:
            newsock = yield from sock.accept()
            data = yield from newsock.recv(LEN)
            if data:
                yield from newsock.sendall(data)
            newsock.close()
        except SocketError:
            sock.close()
            return -1
        if once:
            sock.close()
            return 0


def dync_echo_costate(stack: DyncTcpStack, port: int, once: bool = True):
    """Generator (costatement body): the Dynamic C echo server of
    Figure 2(b).

    Mirrors the figure: ``sock_init``; ``tcp_listen``;
    ``sock_wait_established``; ASCII mode; then ``while (tcp_tick(&sock))``
    echoing each line with ``sock_gets``/``sock_puts``.
    """
    stack.sock_init()
    sock = make_socket(stack)
    while True:
        stack.tcp_listen(sock, port)
        status = yield from stack.sock_wait_established(sock, 0)
        if status != 1:
            return
        stack.sock_mode(sock, TCP_MODE_ASCII)
        while stack.tcp_tick(sock):
            line = stack.sock_gets(sock, LEN)
            if line is not None:
                stack.sock_puts(sock, line)
                yield
            elif sock.conn is not None and sock.conn.at_eof:
                break
            else:
                # Nothing buffered and nothing queued: the pass was a
                # pure poll (idle tcp_tick + empty sock_gets), so it is
                # a declared event-wait until the next inbound frame.
                yield IDLE if stack.quiescent else None
        stack.sock_close(sock)
        if once:
            return
        yield


def echo_client(host: Host, server_ip: str, port: int, message: bytes,
                results: dict, key: str = "echo"):
    """Generator: connect, send one line, read the echo into ``results``."""
    sock = socket(host)
    yield from sock.connect((server_ip, port))
    yield from sock.sendall(message + b"\n")
    data = b""
    while b"\n" not in data:
        chunk = yield from sock.recv(LEN)
        if not chunk:
            break
        data += chunk
    results[key] = data
    sock.close()
    return data
