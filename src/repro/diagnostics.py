"""Shared diagnostic reporting for the compiler and the dclint analyzer.

One format for everything a tool can say about a source location: the
compiler's lex/parse/codegen errors and the static analyzer's findings
(DC001..DC006, PY101..) all carry a :class:`Diagnostic`, so they print
identically and serialize identically (``--format=json``).
"""

from __future__ import annotations

import enum
from dataclasses import asdict, dataclass, field


class Severity(enum.IntEnum):
    """Ordered so that ``max(severities)`` is the worst finding."""

    NOTE = 0
    WARNING = 1
    ERROR = 2

    def __str__(self) -> str:
        return self.name.lower()


@dataclass(frozen=True)
class Diagnostic:
    """One finding: rule id, severity, location, message, fix hint.

    ``rule`` ids: ``LEX001``/``PAR001``/``GEN001`` for compiler errors,
    ``DC001``..``DC006`` for Dynamic C porting-pitfall rules, ``PY1xx``
    for the Python-side runtime-usage checks.
    """

    rule: str
    severity: Severity
    message: str
    file: str = "<source>"
    line: int = 0
    col: int = 0
    hint: str = ""

    def format(self) -> str:
        location = self.file
        if self.line:
            location += f":{self.line}"
            if self.col:
                location += f":{self.col}"
        text = f"{location}: {self.severity}: {self.message} [{self.rule}]"
        if self.hint:
            text += f"\n    hint: {self.hint}"
        return text

    def to_dict(self) -> dict:
        data = asdict(self)
        data["severity"] = str(self.severity)
        return data

    def sort_key(self) -> tuple:
        return (self.file, self.line, self.col, self.rule)


@dataclass
class DiagnosticSink:
    """Collects diagnostics; shared by every rule run over one target."""

    diagnostics: list[Diagnostic] = field(default_factory=list)
    file: str = "<source>"

    def emit(self, rule: str, severity: Severity, message: str,
             line: int = 0, col: int = 0, hint: str = "") -> Diagnostic:
        diagnostic = Diagnostic(rule, severity, message, self.file,
                                line, col, hint)
        self.diagnostics.append(diagnostic)
        return diagnostic

    def error(self, rule: str, message: str, line: int = 0, col: int = 0,
              hint: str = "") -> Diagnostic:
        return self.emit(rule, Severity.ERROR, message, line, col, hint)

    def warning(self, rule: str, message: str, line: int = 0, col: int = 0,
                hint: str = "") -> Diagnostic:
        return self.emit(rule, Severity.WARNING, message, line, col, hint)

    def note(self, rule: str, message: str, line: int = 0, col: int = 0,
             hint: str = "") -> Diagnostic:
        return self.emit(rule, Severity.NOTE, message, line, col, hint)

    @property
    def worst(self) -> Severity | None:
        if not self.diagnostics:
            return None
        return max(d.severity for d in self.diagnostics)


def format_text(diagnostics: list[Diagnostic]) -> str:
    return "\n".join(d.format() for d in sorted(diagnostics,
                                                key=Diagnostic.sort_key))
