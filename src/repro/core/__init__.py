"""The paper's contribution as a library: both deployments of the
secure redirector (see DESIGN.md section 2, row "core")."""

from repro.core.deployments import (
    Deployment,
    build_rmc2000_deployment,
    build_unix_deployment,
)

__all__ = ["Deployment", "build_rmc2000_deployment", "build_unix_deployment"]
