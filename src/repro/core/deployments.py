"""The port, as a library (DESIGN.md: ``repro.core``).

The paper's primary artifact is not an algorithm but a *pair of
deployments* of the same service: the Unix original and the RMC2000
port.  This module packages each as a one-call constructor over the
simulation substrates, so a user can stand up either world -- or both,
side by side -- and drive them with the same clients:

    deployment = build_unix_deployment()     # or build_rmc2000_deployment()
    report = deployment.run_client(requests=10, request_size=128)

Everything the port changed -- fork vs costatements, BSD vs Dynamic C
sockets, RSA vs PSK, file vs circular logging, dynamic vs static
allocation -- is selected by which constructor you call; the client-side
API is identical.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.crypto.demokeys import DEMO_PSK, demo_rsa_key
from repro.crypto.prng import CipherRng
from repro.issl import (
    CircularLogger,
    CipherSuite,
    FileLogger,
    IsslContext,
    RMC2000_ASM,
    RMC2000_PORT,
    UNIX_FULL,
    WORKSTATION,
)
from repro.issl.costmodel import CryptoCostModel
from repro.net.dynctcp import DyncTcpStack
from repro.net.host import Host, build_lan
from repro.net.sim import Simulator
from repro.services import (
    BACKEND_PORT,
    ClientReport,
    TLS_PORT,
    backend_line_server,
    build_rmc_redirector,
    secure_request_client,
    unix_secure_redirector,
)
from repro.unixsim.host import UnixHost


@dataclass
class Deployment:
    """A running secure-redirector world: sim, hosts, server context."""

    name: str
    sim: Simulator
    server_host: Host
    backend_host: Host
    client_hosts: list[Host]
    server_context: IsslContext
    suites: tuple[CipherSuite, ...]
    stats: dict = field(default_factory=dict)
    _next_client: int = 0

    def run_client(self, requests: int = 5, request_size: int = 64,
                   timeout: float = 3600.0) -> ClientReport:
        """Run one secure client against the deployment; blocks until done."""
        if self._next_client >= len(self.client_hosts):
            raise RuntimeError("deployment out of client hosts")
        host = self.client_hosts[self._next_client]
        self._next_client += 1
        report = ClientReport(host.name)
        client_context = IsslContext(
            UNIX_FULL,
            CipherRng(b"client:" + host.name.encode()),
            psk=self.server_context.psk,
        )
        process = host.spawn(secure_request_client(
            host, client_context, str(self.server_host.ip_address),
            TLS_PORT, requests, request_size, report,
        ))
        self.sim.run_until_complete(process, timeout=timeout)
        return report

    def run_clients(self, count: int, requests: int = 5,
                    request_size: int = 64,
                    timeout: float = 3600.0) -> list[ClientReport]:
        """Run ``count`` clients concurrently; returns all reports."""
        reports = []
        processes = []
        for _ in range(count):
            if self._next_client >= len(self.client_hosts):
                raise RuntimeError("deployment out of client hosts")
            host = self.client_hosts[self._next_client]
            self._next_client += 1
            report = ClientReport(host.name)
            reports.append(report)
            client_context = IsslContext(
                UNIX_FULL,
                CipherRng(b"client:" + host.name.encode()),
                psk=self.server_context.psk,
            )
            processes.append(host.spawn(secure_request_client(
                host, client_context, str(self.server_host.ip_address),
                TLS_PORT, requests, request_size, report,
            )))
        for process in processes:
            self.sim.run_until_complete(process, timeout=timeout)
        return reports


def build_unix_deployment(clients: int = 4,
                          cost_model: CryptoCostModel = WORKSTATION,
                          suites: tuple[CipherSuite, ...] | None = None,
                          ) -> Deployment:
    """The original: fork-per-connection issl service on a Unix host."""
    sim = Simulator()
    segment, _hosts = build_lan(sim, [])
    server = UnixHost(sim, "unix-server", _ip(1))
    server.attach(segment)
    backend = Host(sim, "backend", _ip(2))
    backend.attach(segment)
    client_hosts = []
    for index in range(clients):
        client = Host(sim, f"client{index}", _ip(10 + index))
        client.attach(segment)
        client_hosts.append(client)
    context = IsslContext(
        UNIX_FULL.with_cost_model(cost_model),
        CipherRng(b"unix-server"),
        logger=FileLogger(server.fs),
        rsa_key=demo_rsa_key(),
        psk=DEMO_PSK,
    )
    stats: dict = {}
    backend.spawn(backend_line_server(backend, stats=stats))
    server.spawn_process(
        unix_secure_redirector(server, context, str(backend.ip_address),
                               stats=stats),
        name="issl-redirector",
    )
    return Deployment(
        name="unix-original",
        sim=sim,
        server_host=server,
        backend_host=backend,
        client_hosts=client_hosts,
        server_context=context,
        suites=suites or (CipherSuite.RSA_AES128,),
        stats=stats,
    )


def build_rmc2000_deployment(clients: int = 4, handlers: int = 3,
                             cost_model: CryptoCostModel = RMC2000_ASM,
                             ) -> Deployment:
    """The port: Figure 3's costatement service on the RMC2000."""
    sim = Simulator()
    segment, _hosts = build_lan(sim, [])
    server = Host(sim, "rmc2000", _ip(1))
    server.attach(segment)
    backend = Host(sim, "backend", _ip(2))
    backend.attach(segment)
    client_hosts = []
    for index in range(clients):
        client = Host(sim, f"client{index}", _ip(10 + index))
        client.attach(segment)
        client_hosts.append(client)
    stack = DyncTcpStack(server)
    context = IsslContext(
        RMC2000_PORT.with_cost_model(cost_model),
        CipherRng(b"rmc-server"),
        logger=CircularLogger(capacity=32),
        psk=DEMO_PSK,
    )
    stats: dict = {}
    backend.spawn(backend_line_server(backend, stats=stats))
    scheduler = build_rmc_redirector(
        stack, context, str(backend.ip_address),
        backend_port=BACKEND_PORT, listen_port=TLS_PORT,
        handlers=handlers, stats=stats,
    )
    scheduler.start()
    return Deployment(
        name="rmc2000-port",
        sim=sim,
        server_host=server,
        backend_host=backend,
        client_hosts=client_hosts,
        server_context=context,
        suites=(CipherSuite.PSK_AES128,),
        stats=stats,
    )


def _ip(last_octet: int):
    from repro.net.addresses import Ipv4Address

    return Ipv4Address.parse(f"10.0.0.{last_octet}")
