"""Setup shim.

Kept so that ``pip install -e .`` works on environments without the
``wheel`` package (legacy ``setup.py develop`` code path).  All real
metadata lives in ``pyproject.toml``.
"""
from setuptools import setup

setup()
