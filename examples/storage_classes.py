"""Figure 1, executable: Dynamic C storage-class semantics.

    python examples/storage_classes.py

Demonstrates each specifier from the paper's Figure 1 with the runtime's
executable models: ``shared`` (atomic multibyte updates), ``protected``
(battery-backed restore after reset), static-by-default locals (and how
they break recursion), plus ``root``/``xmem`` placement measured on the
cycle-counting board.
"""

from repro.dync.compiler import CompiledProgram, CompilerOptions
from repro.dync.runtime import (
    BatteryBackedRam,
    ProtectedVariable,
    SharedVariable,
    StaticLocals,
    UnsharedMultibyte,
)
from repro.rabbit.board import Board


def demo_shared() -> None:
    print("== shared: atomic multibyte updates ==")
    torn = UnsharedMultibyte(width=4)
    torn.begin_write(0x11223344)
    torn.write_step()  # interrupt fires mid-store...
    print(f"  unshared long mid-write reads 0x{torn.read():08X} "
          f"(wanted 0x11223344) -- a torn read")
    safe = SharedVariable(0, name="a")
    safe.set(0x11223344)
    print(f"  shared long reads   0x{safe.get():08X} "
          f"(update paid {safe.overhead_cycles} cycles of IPSET/IPRES)")


def demo_protected() -> None:
    print("\n== protected: survives a reset via battery-backed RAM ==")
    ram = BatteryBackedRam()
    state1 = ProtectedVariable(100, ram, name="state1")
    state1.set(1234)
    print(f"  state1 = {state1.get()}")
    state1.lose_to_reset()
    print(f"  ...reset... state1 = {state1.get()}")
    state1.restore()
    print(f"  _sysIsSoftReset() restore -> state1 = {state1.get()}")


def demo_static_locals() -> None:
    print("\n== locals are static by default ==")
    statics = StaticLocals()

    def counter() -> int:
        frame = statics.frame("counter")
        frame["n"] = frame.get("n", 0) + 1
        return frame["n"]

    print(f"  counter() three times: {counter()}, {counter()}, {counter()} "
          "(state persists without 'static')")

    def fact(n: int) -> int:
        frame = statics.frame("fact")
        frame["n"] = n
        if frame["n"] <= 1:
            return 1
        below = fact(frame["n"] - 1)
        return frame["n"] * below

    print(f"  recursive fact(5) = {fact(5)} (should be 120 -- "
          "recursion breaks, as on the real compiler)")


def demo_root_vs_xmem() -> None:
    print("\n== root vs xmem placement, measured on the board ==")
    source = """
        const char table[64] = {0};
        int r;
        void main() {
            int i;
            r = 0;
            for (i = 0; i < 64; i = i + 1) r = r + table[i];
        }
    """
    for placement in ("root_ram", "flash", "xmem"):
        program = CompiledProgram(
            Board(), source, CompilerOptions(data_placement=placement)
        )
        cycles = program.call("main")
        print(f"  table in {placement:<8}: {cycles:6d} cycles "
              f"for 64 reads")


if __name__ == "__main__":
    demo_shared()
    demo_protected()
    demo_static_locals()
    demo_root_vs_xmem()
