"""Figure 3, executable: the ported TLS server's main loop.

    python examples/secure_redirector_rmc2000.py

Builds the RMC2000 secure redirector exactly as the paper structures it
-- three handler costatements plus one tcp_tick driver -- and throws
four simultaneous clients at it.  The fourth client queues: the
costatement count *is* the concurrency ceiling, and raising it means
recompiling (here: rebuilding the scheduler with more costatements).
"""

from repro.crypto.demokeys import DEMO_PSK
from repro.crypto.prng import CipherRng
from repro.experiments.harness import format_table
from repro.issl import FREE, IsslContext, RMC2000_PORT, UNIX_FULL
from repro.net.dynctcp import DyncTcpStack
from repro.net.host import build_lan
from repro.net.sim import Simulator
from repro.services import (
    backend_line_server,
    build_rmc_redirector,
    ClientReport,
    secure_request_client,
    TLS_PORT,
)

import dataclasses


def run_with_handlers(handlers: int, clients: int) -> list[ClientReport]:
    sim = Simulator()
    names = ["rmc", "backend"] + [f"c{i}" for i in range(clients)]
    _lan, hosts = build_lan(sim, names, bandwidth_bps=100_000_000)
    stack = DyncTcpStack(hosts["rmc"])
    profile = dataclasses.replace(
        RMC2000_PORT.with_cost_model(FREE), max_sessions=handlers
    )
    context = IsslContext(profile, CipherRng(b"fig3"), psk=DEMO_PSK)
    hosts["backend"].spawn(backend_line_server(hosts["backend"]))
    scheduler = build_rmc_redirector(
        stack, context, str(hosts["backend"].ip_address), handlers=handlers
    )
    print(f"  main loop: {scheduler.costate_names}")
    scheduler.start()
    reports = []
    processes = []
    for index in range(clients):
        host = hosts[f"c{index}"]
        report = ClientReport(f"client{index}")
        reports.append(report)
        ctx = IsslContext(UNIX_FULL, CipherRng(b"c%d" % index), psk=DEMO_PSK)
        processes.append(host.spawn(secure_request_client(
            host, ctx, str(hosts["rmc"].ip_address), TLS_PORT, 10, 64, report
        )))
    for process in processes:
        sim.run_until_complete(process, timeout=600)
    return reports


def main() -> None:
    print("RMC2000 port, as in the paper (3 handlers + tick driver):")
    narrow = run_with_handlers(handlers=3, clients=4)
    print("\n'Recompiled' with one more costatement:")
    wide = run_with_handlers(handlers=4, clients=4)
    rows = []
    for label, reports in (("3 handlers", narrow), ("4 handlers", wide)):
        for report in reports:
            rows.append({
                "build": label,
                "client": report.name,
                "handshake wait ms": round(report.handshake_time * 1000, 2),
                "done at s": round(report.end, 4),
                "ok": report.error is None,
            })
    print()
    print(format_table(rows))
    worst_narrow = max(r.handshake_time for r in narrow)
    worst_wide = max(r.handshake_time for r in wide)
    print(f"\nWorst handshake wait: {worst_narrow * 1000:.2f} ms with 3 "
          f"handlers vs {worst_wide * 1000:.2f} ms after the recompile --")
    print("the 4th client was queueing on a costatement slot, exactly the")
    print("\"maximum of three connections\" the paper describes.")


if __name__ == "__main__":
    main()
