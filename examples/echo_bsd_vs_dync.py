"""Figure 2, executable: the same echo server against two socket APIs.

    python examples/echo_bsd_vs_dync.py

Runs the BSD-sockets echo server (Figure 2a) and the Dynamic C echo
server (Figure 2b) on the simulated network against identical clients,
then prints the API-call inventory each one needed -- the paper's point
that "the significant differences in API" forced rewrites even when the
functionality was identical.
"""

from repro.dync.runtime import CostateScheduler
from repro.net.dynctcp import DyncTcpStack
from repro.net.host import build_lan
from repro.net.sim import Simulator
from repro.porting.api_map import RULE_INDEX
from repro.services.echo import bsd_echo_server, dync_echo_costate, echo_client


def run_bsd(message: bytes) -> bytes:
    sim = Simulator()
    _lan, hosts = build_lan(sim, ["server", "client"])
    hosts["server"].spawn(bsd_echo_server(hosts["server"], 7))
    results: dict = {}
    process = hosts["client"].spawn(
        echo_client(hosts["client"], "10.0.0.1", 7, message, results)
    )
    sim.run_until_complete(process, timeout=60)
    return results["echo"]


def run_dync(message: bytes) -> bytes:
    sim = Simulator()
    _lan, hosts = build_lan(sim, ["rmc", "client"])
    stack = DyncTcpStack(hosts["rmc"])
    scheduler = CostateScheduler(sim)
    scheduler.add(dync_echo_costate(stack, 7), name="echo")
    scheduler.start()
    results: dict = {}
    process = hosts["client"].spawn(
        echo_client(hosts["client"], "10.0.0.1", 7, message, results)
    )
    sim.run_until_complete(process, timeout=60)
    return results["echo"]


def main() -> None:
    message = b"the quick brown fox"
    bsd_echo = run_bsd(message)
    dync_echo = run_dync(message)
    print(f"BSD server echoed      : {bsd_echo!r}")
    print(f"Dynamic C server echoed: {dync_echo!r}")
    assert bsd_echo == dync_echo == message + b"\n"
    print("\nSame behaviour -- different API (paper, Figure 2):\n")
    print(f"  {'BSD sockets call':<12}  Dynamic C replacement")
    print(f"  {'-' * 12}  {'-' * 50}")
    for call in ("socket", "bind", "listen", "accept", "recv", "send",
                 "close", "select"):
        rule = RULE_INDEX[call]
        print(f"  {call:<12}  {rule.replacement}")
    print("\nPlus the inversion the paper stresses: on the RMC2000 the")
    print("*application* drives the stack -- nothing is received until")
    print("the program calls tcp_tick(), so a server needs a dedicated")
    print("tick-driver loop (see secure_redirector_rmc2000.py).")


if __name__ == "__main__":
    main()
