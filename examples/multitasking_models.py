"""Section 4.2, executable: Dynamic C's three multitasking models.

    python examples/multitasking_models.py

The paper: "Dynamic C provides both cooperative multitasking, through
costatements and cofunctions, and preemptive multitasking through
either the slice statement or a port of Labrosse's µC/OS-II ...  In our
port, we used costatements ... We did not use µC/OS-II."

The same workload -- one CPU-hungry task and one latency-sensitive task
-- runs under all three schedulers; watch who protects the urgent task.
"""

from repro.dync.runtime import CostateScheduler, MicroCos, SliceScheduler
from repro.experiments.harness import format_table
from repro.net.sim import Simulator

GRIND_STEPS = 40


def run_costates() -> float:
    """Cooperative: the hog yields politely once per pass."""
    sim = Simulator()
    scheduler = CostateScheduler(sim, pass_overhead_s=1e-3)
    done = {}

    def hog():
        for _ in range(GRIND_STEPS):
            yield  # a *voluntary* yield per unit of work

    def urgent():
        yield  # becomes ready while the hog is mid-grind
        done["at"] = sim.now

    scheduler.add(hog(), "hog")
    scheduler.add(urgent(), "urgent")
    scheduler.run_until_all_done()
    return done["at"]


def run_costates_stubborn() -> float:
    """Cooperative with a hog that refuses to yield: urgent task starves
    until the hog finishes -- the failure mode slices exist for."""
    sim = Simulator()
    scheduler = CostateScheduler(sim, pass_overhead_s=1e-3)
    done = {}

    def stubborn_hog():
        # One giant computation, no yields inside: blocks a full pass.
        yield GRIND_STEPS * 1e-3  # blocking compute, charged to the loop

    def urgent():
        yield  # becomes ready while the hog is mid-grind
        done["at"] = sim.now

    scheduler.add(stubborn_hog(), "stubborn")
    scheduler.add(urgent(), "urgent")
    scheduler.run_until_all_done()
    return done["at"]


def run_slices() -> float:
    """Preemptive slices: the hog is cut off at its tick budget."""
    sim = Simulator()
    scheduler = SliceScheduler(sim, tick_s=1e-3)
    done = {}

    def hog():
        for _ in range(GRIND_STEPS):
            yield 1  # each step costs a tick; never volunteers

    def urgent():
        yield 1  # becomes ready while the hog is mid-grind
        done["at"] = sim.now

    scheduler.add(hog(), budget_ticks=4, name="hog")
    scheduler.add(urgent(), budget_ticks=4, name="urgent")
    scheduler.run_until_all_done()
    return done["at"]


def run_ucos() -> float:
    """Strict priority: the urgent task runs the moment it is ready."""
    sim = Simulator()
    kernel = MicroCos(sim, tick_s=1e-3, steps_per_tick=1)
    done = {}

    def hog():
        for _ in range(GRIND_STEPS):
            yield

    def urgent():
        yield  # becomes ready while the hog is mid-grind
        done["at"] = sim.now

    kernel.task_create(hog(), priority=20, name="hog")
    kernel.task_create(urgent(), priority=1, name="urgent")
    kernel.run_until_all_done()
    return done["at"]


def main() -> None:
    rows = [
        {"model": "costatements (hog yields)",
         "urgent task served at (ms)": round(run_costates() * 1000, 2),
         "note": "cooperative works when everyone cooperates"},
        {"model": "costatements (stubborn hog)",
         "urgent task served at (ms)": round(run_costates_stubborn() * 1000, 2),
         "note": "one blocking computation stalls the whole loop"},
        {"model": "slice statements",
         "urgent task served at (ms)": round(run_slices() * 1000, 2),
         "note": "budget exhaustion preempts the hog"},
        {"model": "uC/OS-II-style priorities",
         "urgent task served at (ms)": round(run_ucos() * 1000, 2),
         "note": "highest priority always runs first"},
    ]
    print(format_table(rows))
    print("\nThe paper's port used costatements (Figure 3); the stubborn-hog")
    print("row is why its crypto had to be fast -- a long AES block stalls")
    print("every connection (see E4).")


if __name__ == "__main__":
    main()
