"""Quickstart: stand up both worlds and run a secure client against each.

    python examples/quickstart.py

The library's one-call deployments build a simulated LAN, a backend, a
secure-redirector server (Unix original or RMC2000 port) and client
hosts.  The same client code drives both; only the server side differs
-- which is the paper's whole story.
"""

from repro.core import build_rmc2000_deployment, build_unix_deployment
from repro.experiments.harness import format_table


def main() -> None:
    rows = []

    print("Building the Unix original (fork-per-connection, RSA+AES)...")
    unix = build_unix_deployment(clients=1)
    unix_report = unix.run_client(requests=5, request_size=128)
    rows.append({
        "deployment": unix.name,
        "suite": "RSA_AES128",
        "handshake ms": round(unix_report.handshake_time * 1000, 2),
        "mean request ms": round(
            1000 * sum(unix_report.request_times) /
            len(unix_report.request_times), 2),
        "throughput kb/s": round(unix_report.throughput_bps / 1000, 1),
        "forks": unix.server_host.kernel.forks,
    })

    print("Building the RMC2000 port (costatements, PSK+AES-128)...")
    rmc = build_rmc2000_deployment(clients=1)
    rmc_report = rmc.run_client(requests=5, request_size=128)
    rows.append({
        "deployment": rmc.name,
        "suite": "PSK_AES128",
        "handshake ms": round(rmc_report.handshake_time * 1000, 2),
        "mean request ms": round(
            1000 * sum(rmc_report.request_times) /
            len(rmc_report.request_times), 2),
        "throughput kb/s": round(rmc_report.throughput_bps / 1000, 1),
        "forks": "n/a (3 costatements)",
    })

    print()
    print(format_table(rows))
    print()
    print("Server-side log (RMC circular buffer):")
    for line in rmc.server_context.logger.tail(4):
        print(f"  {line}")
    assert unix_report.error is None and rmc_report.error is None
    print("\nBoth deployments served the same client code. OK.")


if __name__ == "__main__":
    main()
