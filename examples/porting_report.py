"""Section 5, executable: scan the Unix issl sources for porting problems.

    python examples/porting_report.py [file.c ...]

With no arguments it scans the bundled reconstruction of the Unix issl
service; pass your own C files to scan those instead.  The analyzer
classifies every call into the paper's three problem classes and names
the strategy the RMC2000 port applied.
"""

import sys

from repro.porting import (
    format_report,
    ISSL_UNIX_SOURCES,
    scan_sources,
)
from repro.porting.memory_plan import MemoryPlan, RMC2000_BUDGET, StorageClass


def main(argv: list[str]) -> int:
    if argv:
        sources = {}
        for path in argv:
            with open(path, "r", encoding="utf-8") as handle:
                sources[path] = handle.read()
    else:
        sources = ISSL_UNIX_SOURCES
        print("(scanning the bundled Unix issl reconstruction; pass .c "
              "files to scan your own)\n")
    report = scan_sources(sources)
    print(format_report(report))

    print("Zurell-style memory plan for the port (paper, section 5.2):")
    plan = MemoryPlan(RMC2000_BUDGET)
    plan.declare("firmware code", StorageClass.CODE, 48 * 1024)
    plan.declare("AES tables", StorageClass.CONST, 512)
    plan.declare("3 static sessions", StorageClass.STATIC, 3 * 1688)
    plan.declare("circular log", StorageClass.STATIC, 1024)
    plan.declare("stack", StorageClass.STACK, 512)
    print(plan.report())
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
