"""The paper's Section 6 measurement, interactive.

    python examples/aes_shootout.py

Compiles the straightforward C port of AES-128 at every optimization
setting, assembles the hand-optimized version, runs them all on the
cycle-counting Rabbit 2000, verifies every ciphertext against FIPS-197,
and prints the table the paper summarizes in prose.
"""

from repro.crypto.rijndael import Rijndael
from repro.dync.compiler import CompilerOptions
from repro.experiments.harness import format_table
from repro.rabbit.board import Board, CLOCK_HZ
from repro.rabbit.programs.aes_asm import AesAsm
from repro.rabbit.programs.aes_c import AesC

KEY = bytes.fromhex("000102030405060708090a0b0c0d0e0f")
BLOCK = bytes.fromhex("00112233445566778899aabbccddeeff")

CONFIGS = [
    ("C, Dynamic C defaults", CompilerOptions()),
    ("C, data in root RAM", CompilerOptions(data_placement="root_ram")),
    ("C, loops unrolled", CompilerOptions(unroll=True)),
    ("C, debugging off", CompilerOptions(debug=False)),
    ("C, optimizer on", CompilerOptions(optimize=True)),
    ("C, everything on", CompilerOptions(debug=False, optimize=True,
                                         unroll=True,
                                         data_placement="root_ram")),
]


def main() -> None:
    reference = Rijndael(KEY)
    expected = reference.encrypt_block(BLOCK)
    rows = []
    baseline = None
    for label, options in CONFIGS:
        implementation = AesC(Board(), options)
        implementation.set_key(KEY)
        ciphertext, cycles = implementation.encrypt_block(BLOCK)
        assert ciphertext == expected, label
        if baseline is None:
            baseline = cycles
        rows.append({
            "implementation": label,
            "cycles/block": cycles,
            "us @30MHz": round(cycles / CLOCK_HZ * 1e6, 1),
            "KB/s": round(16 * CLOCK_HZ / cycles / 1024, 2),
            "vs default": f"{(baseline - cycles) / baseline * 100:+.1f}%",
            "code bytes": implementation.code_size,
        })
    asm = AesAsm(Board())
    asm.set_key(KEY)
    ciphertext, cycles = asm.encrypt_block(BLOCK)
    assert ciphertext == expected
    rows.append({
        "implementation": "hand-coded assembly",
        "cycles/block": cycles,
        "us @30MHz": round(cycles / CLOCK_HZ * 1e6, 1),
        "KB/s": round(16 * CLOCK_HZ / cycles / 1024, 2),
        "vs default": f"{(baseline - cycles) / baseline * 100:+.1f}%",
        "code bytes": asm.code_size,
    })
    print(format_table(rows))
    ratio = baseline / cycles
    print(f"\nAssembly vs default C port: {ratio:.1f}x faster")
    print("(paper: \"faster than the C port by a factor of\" more than an")
    print(" order of magnitude; C-level optimizations \"only improved run")
    print(" time by perhaps 20%\")")


if __name__ == "__main__":
    main()
