"""Unix host simulation: filesystem, processes, fork, signals."""

import pytest

from repro.net.addresses import Ipv4Address
from repro.net.sim import Simulator
from repro.unixsim import (
    exit_process,
    FileSystem,
    FsError,
    ProcessState,
    Signal,
    UnixHost,
    UnixKernel,
)


class TestFileSystem:
    def test_write_read_roundtrip(self):
        fs = FileSystem()
        fs.write_file("/etc/keys", b"secret material")
        assert fs.read_file("/etc/keys") == b"secret material"

    def test_open_missing_for_read(self):
        fs = FileSystem()
        with pytest.raises(FsError):
            fs.open("/missing", "r")

    def test_append_mode(self):
        fs = FileSystem()
        fs.write_file("/log", b"line1\n")
        with fs.open("/log", "a") as fh:
            fh.write(b"line2\n")
        assert fs.read_file("/log") == b"line1\nline2\n"

    def test_w_truncates(self):
        fs = FileSystem()
        fs.write_file("/f", b"long content here")
        fs.write_file("/f", b"short")
        assert fs.read_file("/f") == b"short"

    def test_seek_tell(self):
        fs = FileSystem()
        fs.write_file("/f", b"0123456789")
        with fs.open("/f") as fh:
            fh.seek(5)
            assert fh.tell() == 5
            assert fh.read(3) == b"567"
        with pytest.raises(FsError):
            fs.open("/f").seek(-1)

    def test_partial_reads(self):
        fs = FileSystem()
        fs.write_file("/f", b"abcdef")
        fh = fs.open("/f")
        assert fh.read(2) == b"ab"
        assert fh.read(2) == b"cd"
        assert fh.read() == b"ef"
        assert fh.read() == b""

    def test_mode_enforcement(self):
        fs = FileSystem()
        fs.write_file("/f", b"x")
        with pytest.raises(FsError):
            fs.open("/f", "r").write(b"nope")
        with pytest.raises(FsError):
            fs.open("/f", "a").read()
        with pytest.raises(FsError):
            fs.open("/f", "q")

    def test_closed_file_rejects_io(self):
        fs = FileSystem()
        fh = fs.open("/f", "w")
        fh.close()
        with pytest.raises(FsError):
            fh.write(b"late")

    def test_unlink(self):
        fs = FileSystem()
        fs.write_file("/f", b"x")
        fs.unlink("/f")
        assert not fs.exists("/f")
        with pytest.raises(FsError):
            fs.unlink("/f")

    def test_listdir_prefix(self):
        fs = FileSystem()
        fs.write_file("/var/log/a", b"")
        fs.write_file("/var/log/b", b"")
        fs.write_file("/etc/passwd", b"")
        assert fs.listdir("/var/log/") == ["/var/log/a", "/var/log/b"]

    def test_capacity_enforced(self):
        # The embedded world's counterexample: a tiny disk fills up.
        fs = FileSystem(capacity=100)
        fs.write_file("/log", b"x" * 90)
        with pytest.raises(FsError, match="disk full"):
            with fs.open("/log", "a") as fh:
                fh.write(b"y" * 20)

    def test_rplus_updates_in_place(self):
        fs = FileSystem()
        fs.write_file("/f", b"aaaa")
        with fs.open("/f", "r+") as fh:
            fh.write(b"bb")
        assert fs.read_file("/f") == b"bbaa"


class TestProcesses:
    def test_spawn_and_exit_status(self):
        sim = Simulator()
        kernel = UnixKernel(sim)

        def main():
            yield 0.1
            return 7

        proc = kernel.spawn(main(), name="main")
        sim.run()
        assert proc.state == ProcessState.ZOMBIE
        assert proc.exit_status == 7

    def test_exit_process_helper(self):
        sim = Simulator()
        kernel = UnixKernel(sim)

        def main():
            yield 0.1
            exit_process(3)

        proc = kernel.spawn(main())
        sim.run()
        assert proc.exit_status == 3

    def test_fork_parent_continues(self):
        sim = Simulator()
        kernel = UnixKernel(sim)
        order = []

        def child(tag):
            yield 0.5
            order.append(("child", tag, sim.now))

        def parent():
            for tag in range(2):
                kernel.fork(child(tag))
                order.append(("forked", tag, sim.now))
                yield 0.1
            yield 1.0

        kernel.spawn(parent(), name="parent")
        sim.run()
        assert order[0][0] == "forked"
        assert kernel.forks == 2
        assert [o for o in order if o[0] == "child"]

    def test_waitpid(self):
        sim = Simulator()
        kernel = UnixKernel(sim)
        got = {}

        def child():
            yield 1.0
            return 9

        def parent():
            proc = kernel.fork(child())
            status = yield from kernel.waitpid(proc.pid)
            got["status"] = status
            got["when"] = sim.now

        kernel.spawn(parent())
        sim.run()
        assert got["status"] == 9
        assert got["when"] == 1.0

    def test_waitpid_unknown(self):
        sim = Simulator()
        kernel = UnixKernel(sim)
        with pytest.raises(KeyError):
            next(kernel.waitpid(999))

    def test_signal_handler_called(self):
        sim = Simulator()
        kernel = UnixKernel(sim)
        caught = []

        def main():
            me = kernel.process(1)
            me.signal(Signal.SIGINT, lambda s: caught.append(s))
            yield 10.0

        proc = kernel.spawn(main())
        sim.call_after(1.0, kernel.kill, proc.pid, Signal.SIGINT)
        sim.run()
        assert caught == [Signal.SIGINT]
        assert proc.state == ProcessState.ZOMBIE  # ran to completion

    def test_unhandled_sigterm_kills(self):
        sim = Simulator()
        kernel = UnixKernel(sim)
        progressed = []

        def main():
            while True:
                progressed.append(sim.now)
                yield 1.0

        proc = kernel.spawn(main())
        sim.call_after(2.5, kernel.kill, proc.pid, Signal.SIGTERM)
        sim.run()
        assert proc.state == ProcessState.ZOMBIE
        assert proc.exit_status == 128 + int(Signal.SIGTERM)
        assert len(progressed) == 3

    def test_kill_unknown_pid(self):
        sim = Simulator()
        kernel = UnixKernel(sim)
        assert kernel.kill(42, Signal.SIGKILL) is False

    def test_sigchld_delivered_to_parent(self):
        sim = Simulator()
        kernel = UnixKernel(sim)
        reaped = []

        def child():
            yield 0.5

        def parent():
            me = kernel.process(1)
            me.signal(Signal.SIGCHLD, lambda s: reaped.append(sim.now))
            kernel.fork(child(), parent=me)
            yield 2.0

        kernel.spawn(parent())
        sim.run()
        assert reaped == [0.5]

    def test_running_list(self):
        sim = Simulator()
        kernel = UnixKernel(sim)

        def quick():
            yield 0.1

        def slow():
            yield 5.0

        kernel.spawn(quick())
        kernel.spawn(slow())
        sim.run(until=1.0)
        assert len(kernel.running) == 1


class TestUnixHost:
    def test_host_has_kernel_and_fs(self):
        sim = Simulator()
        host = UnixHost(sim, "ws", Ipv4Address.parse("10.0.0.1"))
        assert host.kernel is not None
        host.fs.write_file("/tmp/x", b"1")
        assert host.fs.read_file("/tmp/x") == b"1"

    def test_spawn_process(self):
        sim = Simulator()
        host = UnixHost(sim, "ws", Ipv4Address.parse("10.0.0.1"))

        def main():
            yield 0.1
            return 0

        proc = host.spawn_process(main(), name="svc")
        sim.run()
        assert proc.exit_status == 0
