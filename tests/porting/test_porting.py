"""Porting toolkit: taxonomy, analyzer, corpus, memory planner."""

import pytest

from repro.porting import (
    format_report,
    ISSL_UNIX_SOURCES,
    MemoryPlan,
    ProblemClass,
    RMC2000_BUDGET,
    RULE_INDEX,
    RULES,
    scan_source,
    scan_sources,
    StorageClass,
    Strategy,
    WORKSTATION_BUDGET,
)


class TestRules:
    def test_every_class_covered(self):
        classes = {rule.problem for rule in RULES}
        assert classes == set(ProblemClass)

    def test_every_strategy_covered(self):
        strategies = {rule.strategy for rule in RULES}
        assert strategies == set(Strategy)

    def test_paper_named_rules_exist(self):
        # Symbols the paper text explicitly discusses.
        for symbol in ("random", "fork", "malloc", "free", "signal",
                       "accept", "select", "fopen"):
            assert symbol in RULE_INDEX, symbol

    def test_rule_index_consistent(self):
        assert len(RULE_INDEX) == len(RULES)
        for symbol, rule in RULE_INDEX.items():
            assert rule.symbol == symbol


class TestAnalyzer:
    def test_finds_call_sites(self):
        report = scan_source("int main() { fork(); malloc(10); }")
        symbols = report.unique_symbols()
        assert symbols == {"fork", "malloc"}
        assert report.lines_scanned == 1

    def test_comments_and_strings_ignored(self):
        source = '''
            /* fork() in a comment */
            // malloc() here too
            char *s = "free(x)";
            int ok() { return 0; }
        '''
        report = scan_source(source)
        assert report.issues == []

    def test_line_numbers(self):
        source = "int f() {\n  return 0;\n}\nvoid g() { fork(); }\n"
        report = scan_source(source, "f.c")
        assert report.issues[0].line == 4
        assert report.issues[0].file == "f.c"

    def test_non_calls_not_flagged(self):
        # "fork" as a variable, not a call.
        report = scan_source("int fork = 1; int forked();")
        assert not report.unique_symbols()

    def test_corpus_hits_every_class(self):
        report = scan_sources(ISSL_UNIX_SOURCES)
        by_class = report.by_class()
        for problem_class in ProblemClass:
            assert by_class[problem_class], problem_class

    def test_corpus_hits_every_strategy(self):
        report = scan_sources(ISSL_UNIX_SOURCES)
        by_strategy = report.by_strategy()
        for strategy in Strategy:
            assert by_strategy[strategy], strategy

    def test_report_formatting(self):
        report = scan_sources(ISSL_UNIX_SOURCES)
        text = format_report(report)
        assert "MISSING_FACILITY" in text
        assert "costatements" in text
        assert str(report.files_scanned) in text

    def test_counts_helper(self):
        report = scan_sources(ISSL_UNIX_SOURCES)
        counts = report.counts()
        assert sum(counts.values()) == len(report.issues)


class TestMemoryPlanner:
    def test_fits_within_budget(self):
        plan = MemoryPlan(RMC2000_BUDGET)
        plan.declare("code", StorageClass.CODE, 40_000)
        plan.declare("tables", StorageClass.CONST, 512)
        plan.declare("sessions", StorageClass.STATIC, 4_000)
        plan.declare("stack", StorageClass.STACK, 512)
        assert plan.fits
        assert plan.flash_used == 40_512
        assert plan.data_segment_used == 4_512

    def test_flash_violation(self):
        plan = MemoryPlan(RMC2000_BUDGET)
        plan.declare("huge code", StorageClass.CODE, 600 * 1024)
        assert not plan.fits
        assert any("flash" in v for v in plan.violations())

    def test_data_segment_violation(self):
        plan = MemoryPlan(RMC2000_BUDGET)
        plan.declare("big static", StorageClass.STATIC, 10 * 1024)
        assert any("data segment" in v for v in plan.violations())

    def test_battery_violation(self):
        plan = MemoryPlan(RMC2000_BUDGET)
        plan.declare("too much", StorageClass.BATTERY, 1024)
        assert not plan.fits

    def test_workstation_absorbs_everything(self):
        plan = MemoryPlan(WORKSTATION_BUDGET)
        plan.declare("anything", StorageClass.HEAP, 100 << 20)
        assert plan.fits

    def test_negative_size_rejected(self):
        plan = MemoryPlan(RMC2000_BUDGET)
        with pytest.raises(ValueError):
            plan.declare("bad", StorageClass.CODE, -1)

    def test_report_text(self):
        plan = MemoryPlan(RMC2000_BUDGET)
        plan.declare("code", StorageClass.CODE, 1000)
        plan.declare("too much static", StorageClass.STATIC, 9000)
        text = plan.report()
        assert "RMC2000" in text
        assert "VIOLATION" in text
