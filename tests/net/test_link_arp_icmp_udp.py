"""Link layer, ARP resolution, ICMP echo, and UDP sockets."""

import pytest

from repro.net.addresses import ip, MacAddress
from repro.net.host import Host, build_lan
from repro.net.link import EthernetSegment, NetworkInterface
from repro.net.packet import ETHERTYPE_ARP, ArpPacket, EthernetFrame
from repro.net.sim import Simulator


@pytest.fixture()
def lan():
    sim = Simulator()
    segment, hosts = build_lan(sim, ["a", "b", "c"])
    return sim, segment, hosts


class TestLink:
    def test_attach_rejects_double(self, lan):
        sim, segment, hosts = lan
        with pytest.raises(RuntimeError):
            segment.attach(hosts["a"].interface)

    def test_unattached_transmit_fails(self):
        interface = NetworkInterface(MacAddress(1))
        frame = EthernetFrame(MacAddress(1), MacAddress(2), ETHERTYPE_ARP,
                              ArpPacket(1, MacAddress(1), ip("1.1.1.1"),
                                        MacAddress(0), ip("2.2.2.2")))
        with pytest.raises(RuntimeError):
            interface.transmit(frame)

    def test_serialization_delay_models_bandwidth(self):
        sim = Simulator()
        segment = EthernetSegment(sim, bandwidth_bps=8_000, latency_s=0.0)
        a = NetworkInterface(MacAddress(1))
        b = NetworkInterface(MacAddress(2))
        segment.attach(a)
        segment.attach(b)
        received = []
        b.on_receive(lambda frame: received.append(sim.now))
        arp = ArpPacket(1, MacAddress(1), ip("1.1.1.1"), MacAddress(0),
                        ip("2.2.2.2"))
        frame = EthernetFrame(MacAddress(1), MacAddress(2), ETHERTYPE_ARP, arp)
        a.transmit(frame)  # 64 bytes min frame at 1000 B/s = 64 ms
        sim.run()
        assert received == [pytest.approx(0.064)]

    def test_frames_queue_behind_each_other(self):
        sim = Simulator()
        segment = EthernetSegment(sim, bandwidth_bps=8_000, latency_s=0.0)
        a = NetworkInterface(MacAddress(1))
        b = NetworkInterface(MacAddress(2))
        segment.attach(a)
        segment.attach(b)
        arrivals = []
        b.on_receive(lambda frame: arrivals.append(sim.now))
        arp = ArpPacket(1, MacAddress(1), ip("1.1.1.1"), MacAddress(0),
                        ip("2.2.2.2"))
        frame = EthernetFrame(MacAddress(1), MacAddress(2), ETHERTYPE_ARP, arp)
        a.transmit(frame)
        a.transmit(frame)
        sim.run()
        assert arrivals == [pytest.approx(0.064), pytest.approx(0.128)]

    def test_drop_filter(self, lan):
        sim, segment, hosts = lan
        segment.set_drop_filter(lambda frame, index: index == 0)
        results = {}

        def pinger():
            # ARP retries every 0.5 s, so allow a couple of seconds.
            results["rtt"] = yield from hosts["a"].icmp.ping(
                hosts["b"].ip_address, timeout=2.0
            )

        process = sim.spawn(pinger())
        sim.run_until_complete(process, timeout=10)
        # First ARP request dropped; retry succeeds, ping still completes.
        assert segment.frames_dropped == 1
        assert results["rtt"] is not None

    def test_unicast_filtering(self, lan):
        sim, segment, hosts = lan
        results = {}

        def pinger():
            results["rtt"] = yield from hosts["a"].icmp.ping(hosts["b"].ip_address)

        process = sim.spawn(pinger())
        sim.run_until_complete(process, timeout=10)
        # c hears the broadcast ARP but none of the unicast IP packets.
        assert hosts["c"].ip.packets_received == 0

    def test_interface_counters(self, lan):
        sim, segment, hosts = lan
        results = {}

        def pinger():
            results["rtt"] = yield from hosts["a"].icmp.ping(hosts["b"].ip_address)

        process = sim.spawn(pinger())
        sim.run_until_complete(process, timeout=10)
        assert hosts["a"].interface.frames_sent >= 2  # ARP + echo
        assert hosts["b"].interface.frames_received >= 2
        assert segment.bytes_carried > 0


class TestArp:
    def test_resolution_and_caching(self, lan):
        sim, segment, hosts = lan
        results = {}

        def resolver():
            results["mac"] = yield from hosts["a"].arp.resolve(
                hosts["b"].ip_address
            )

        process = sim.spawn(resolver())
        sim.run_until_complete(process, timeout=5)
        assert results["mac"] == hosts["b"].interface.mac
        assert hosts["a"].arp.lookup(hosts["b"].ip_address) == \
            hosts["b"].interface.mac
        # And b opportunistically learned a from the request.
        assert hosts["b"].arp.lookup(hosts["a"].ip_address) == \
            hosts["a"].interface.mac

    def test_resolution_failure(self, lan):
        sim, segment, hosts = lan
        from repro.net.arp import ArpError

        failed = {}

        def resolver():
            try:
                yield from hosts["a"].arp.resolve(ip("10.0.0.99"))
            except ArpError:
                failed["yes"] = True

        process = sim.spawn(resolver())
        sim.run_until_complete(process, timeout=30)
        assert failed.get("yes")

    def test_static_entries(self, lan):
        sim, segment, hosts = lan
        hosts["a"].arp.add_static(ip("10.0.0.50"), MacAddress(0x50))
        assert hosts["a"].arp.lookup(ip("10.0.0.50")) == MacAddress(0x50)


class TestIcmp:
    def test_ping_round_trip(self, lan):
        sim, segment, hosts = lan
        results = {}

        def pinger():
            results["rtt"] = yield from hosts["a"].icmp.ping(
                hosts["b"].ip_address, payload=b"hello"
            )

        process = sim.spawn(pinger())
        sim.run_until_complete(process, timeout=10)
        assert results["rtt"] is not None
        assert results["rtt"] > 0
        assert hosts["b"].icmp.echoes_answered == 1

    def test_ping_unanswered_times_out(self, lan):
        sim, segment, hosts = lan
        segment.set_drop_filter(
            lambda frame, index: frame.ethertype != ETHERTYPE_ARP
        )
        results = {}

        def pinger():
            results["rtt"] = yield from hosts["a"].icmp.ping(
                hosts["b"].ip_address, timeout=0.5
            )

        process = sim.spawn(pinger())
        sim.run_until_complete(process, timeout=10)
        assert results["rtt"] is None


class TestUdp:
    def test_datagram_round_trip(self, lan):
        sim, segment, hosts = lan
        got = {}

        def server():
            sock = hosts["b"].udp.bind(5353)
            message = yield from sock.recvfrom(timeout=5)
            src_ip, src_port, payload = message
            sock.sendto(payload.upper(), src_ip, src_port)

        def client():
            sock = hosts["a"].udp.bind()
            sock.sendto(b"query", hosts["b"].ip_address, 5353)
            got["reply"] = yield from sock.recvfrom(timeout=5)

        sim.spawn(server())
        process = sim.spawn(client())
        sim.run_until_complete(process, timeout=30)
        assert got["reply"][2] == b"QUERY"

    def test_port_conflict(self, lan):
        sim, segment, hosts = lan
        from repro.net.udp import UdpError

        hosts["a"].udp.bind(999)
        with pytest.raises(UdpError):
            hosts["a"].udp.bind(999)

    def test_unbound_port_drops(self, lan):
        sim, segment, hosts = lan
        sock = hosts["a"].udp.bind()
        sock.sendto(b"void", hosts["b"].ip_address, 12321)
        sim.run(until=1.0)
        assert hosts["b"].udp.datagrams_dropped == 1

    def test_close_releases_port(self, lan):
        sim, segment, hosts = lan
        sock = hosts["a"].udp.bind(1000)
        sock.close()
        hosts["a"].udp.bind(1000)  # no conflict after close

    def test_recvfrom_timeout(self, lan):
        sim, segment, hosts = lan
        out = {}

        def waiter():
            sock = hosts["a"].udp.bind(1)
            out["result"] = yield from sock.recvfrom(timeout=0.2)

        process = sim.spawn(waiter())
        sim.run_until_complete(process, timeout=10)
        assert out["result"] is None
