"""select() on the BSD facade: the readiness call the Unix issl used."""

import pytest

from repro.net.bsd import LISTENQ, select, socket, SocketError
from repro.net.host import build_lan
from repro.net.sim import Simulator


@pytest.fixture()
def world():
    sim = Simulator()
    _lan, hosts = build_lan(sim, ["server", "c1", "c2"])
    return sim, hosts


def test_select_on_listening_socket(world):
    sim, hosts = world
    out = {}

    def server():
        lsock = socket(hosts["server"])
        lsock.bind(("", 80))
        lsock.listen(LISTENQ)
        ready = yield from select([lsock], timeout=5.0)
        out["ready"] = ready
        conn = yield from lsock.accept()
        out["accepted"] = conn.peer_address is not None

    def client():
        csock = socket(hosts["c1"])
        yield from csock.connect(("10.0.0.1", 80))
        yield 0.5

    hosts["server"].spawn(server())
    process = hosts["c1"].spawn(client())
    sim.run_until_complete(process, timeout=60)
    assert out["ready"]
    assert out["accepted"]


def test_select_timeout_returns_empty(world):
    sim, hosts = world
    out = {}

    def server():
        lsock = socket(hosts["server"])
        lsock.bind(("", 80))
        lsock.listen()
        out["ready"] = yield from select([lsock], timeout=0.2)

    process = hosts["server"].spawn(server())
    sim.run_until_complete(process, timeout=60)
    assert out["ready"] == []


def test_select_multiplexes_two_connections(world):
    sim, hosts = world
    out = {"served": []}

    def server():
        lsock = socket(hosts["server"])
        lsock.bind(("", 80))
        lsock.listen()
        first = yield from lsock.accept()
        second = yield from lsock.accept()
        connections = [first, second]
        while len(out["served"]) < 2:
            ready = yield from select(connections, timeout=10.0)
            if not ready:
                break
            for conn in ready:
                data = yield from conn.recv(64)
                if data:
                    out["served"].append(data)
                    connections.remove(conn)

    def client(host, delay, payload):
        csock = socket(host)
        yield from csock.connect(("10.0.0.1", 80))
        yield delay
        yield from csock.sendall(payload)
        yield 0.5

    hosts["server"].spawn(server())
    hosts["c1"].spawn(client(hosts["c1"], 0.30, b"slow"))
    process = hosts["c2"].spawn(client(hosts["c2"], 0.05, b"fast"))
    sim.run_until_complete(process, timeout=120)
    sim.run(until=sim.now + 2.0)
    # The faster sender must be served first: that is the multiplexing.
    assert out["served"] == [b"fast", b"slow"]


def test_select_reports_eof_as_readable(world):
    sim, hosts = world
    out = {}

    def server():
        lsock = socket(hosts["server"])
        lsock.bind(("", 80))
        lsock.listen()
        conn = yield from lsock.accept()
        ready = yield from select([conn], timeout=5.0)
        out["ready"] = bool(ready)
        out["data"] = yield from conn.recv(64)

    def client():
        csock = socket(hosts["c1"])
        yield from csock.connect(("10.0.0.1", 80))
        csock.close()
        yield 0.5

    hosts["server"].spawn(server())
    process = hosts["c1"].spawn(client())
    sim.run_until_complete(process, timeout=60)
    sim.run(until=sim.now + 2.0)
    assert out["ready"]
    assert out["data"] == b""


def test_select_empty_set_rejected(world):
    sim, hosts = world
    with pytest.raises(SocketError):
        next(select([]))
