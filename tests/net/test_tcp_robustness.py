"""Additional TCP edge cases: simultaneous close, zero-window reopen,
heavy loss, RTO backoff, and wire-level behaviours."""

import pytest

from repro.net.host import build_lan
from repro.net.packet import ETHERTYPE_IP, IPPROTO_TCP
from repro.net.sim import Simulator
from repro.net.tcp import INITIAL_RTO_S, MAX_RETRANSMITS, TcpState


@pytest.fixture()
def pair():
    sim = Simulator()
    segment, hosts = build_lan(sim, ["server", "client"])
    return sim, segment, hosts["server"], hosts["client"]


def _establish(sim, server, client, port=80, **kwargs):
    listener = server.tcp.listen(port, **kwargs)
    conn = client.tcp.connect(server.ip_address, port)
    sim.run(until=sim.now + 1.0)
    accepted = listener.pop()
    assert accepted is not None
    return listener, conn, accepted


def test_simultaneous_close(pair):
    sim, segment, server, client = pair
    _listener, conn, accepted = _establish(sim, server, client)
    # Both sides close in the same instant.
    conn.close()
    accepted.close()
    sim.run(until=sim.now + 5.0)
    assert conn.state in (TcpState.TIME_WAIT, TcpState.CLOSED)
    assert accepted.state in (TcpState.TIME_WAIT, TcpState.CLOSED)
    sim.run(until=sim.now + 3.0)
    assert conn.state == TcpState.CLOSED
    assert accepted.state == TcpState.CLOSED


def test_zero_window_stalls_then_reopens(pair):
    sim, segment, server, client = pair
    _listener, conn, accepted = _establish(sim, server, client, window=512)
    payload = bytes(3000)
    conn.send(payload)
    sim.run(until=sim.now + 3.0)
    # The receiver's buffer is pinned at its window; the sender stalls.
    assert accepted.receive_available() == 512
    in_flight_stalled = conn.send_queue_length
    assert in_flight_stalled > 0
    # Draining the buffer reopens the window and the rest arrives.
    received = accepted.recv(10000)
    sim.run(until=sim.now + 3.0)
    while True:
        chunk = accepted.recv(10000)
        if not chunk:
            break
        received += chunk
        sim.run(until=sim.now + 3.0)
    assert received == payload


def test_heavy_loss_still_delivers(pair):
    sim, segment, server, client = pair
    _listener, conn, accepted = _establish(sim, server, client)
    dropped = []

    def drop_every_third_data(frame, index):
        if frame.ethertype != ETHERTYPE_IP:
            return False
        packet = frame.payload
        if packet.protocol != IPPROTO_TCP or not packet.payload.payload:
            return False
        key = (packet.payload.seq, len(dropped))
        if index % 3 == 0:
            dropped.append(key)
            return True
        return False

    segment.set_drop_filter(drop_every_third_data)
    payload = bytes(range(256)) * 8
    conn.send(payload)
    sim.run(until=sim.now + 60.0)
    assert accepted.recv(10000) == payload
    assert dropped


def test_rto_backoff_doubles(pair):
    sim, segment, server, client = pair
    _listener, conn, accepted = _establish(sim, server, client)
    # Black-hole everything from the client after establishment.
    segment.set_drop_filter(
        lambda frame, index: frame.src == client.interface.mac
    )
    start = sim.now
    conn.send(b"doomed")
    sim.run(until=start + 60.0)
    # The connection gave up after MAX_RETRANSMITS with backoff.
    assert conn.state == TcpState.CLOSED
    assert conn.error is not None
    assert conn.segments_retransmitted == MAX_RETRANSMITS
    # Exponential backoff: total time >> MAX_RETRANSMITS * initial RTO.
    elapsed = sim.now - start
    assert elapsed > MAX_RETRANSMITS * INITIAL_RTO_S


def test_half_close_allows_reply(pair):
    sim, segment, server, client = pair
    _listener, conn, accepted = _establish(sim, server, client)
    conn.send(b"request")
    conn.close()  # client FIN after its data
    sim.run(until=sim.now + 2.0)
    assert accepted.recv(100) == b"request"
    assert accepted.at_eof
    # Server can still reply on its half (CLOSE_WAIT).
    accepted.send(b"response")
    sim.run(until=sim.now + 2.0)
    assert conn.recv(100) == b"response"
    accepted.close()
    sim.run(until=sim.now + 3.0)
    assert accepted.state == TcpState.CLOSED


def test_window_advertisement_on_wire(pair):
    sim, segment, server, client = pair
    listener = server.tcp.listen(80, window=1234)
    conn = client.tcp.connect(server.ip_address, 80)
    sim.run(until=sim.now + 1.0)
    # The client learned the server's advertised window.
    assert conn.peer_window == 1234


def test_mss_respected_on_wire(pair):
    sim, segment, server, client = pair
    sizes = []

    def record_sizes(frame, index):
        if frame.ethertype == ETHERTYPE_IP:
            packet = frame.payload
            if packet.protocol == IPPROTO_TCP and packet.payload.payload:
                sizes.append(len(packet.payload.payload))
        return False

    segment.set_drop_filter(record_sizes)
    _listener, conn, accepted = _establish(sim, server, client, mss=200)
    conn.send(bytes(1500))
    sim.run(until=sim.now + 3.0)
    assert sizes
    # Client-side default MSS caps client segments; the server's listener
    # MSS shapes its own sends.  All observed payloads within client MSS.
    assert max(sizes) <= 536
