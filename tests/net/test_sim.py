"""Simulation kernel tests: events, processes, ordering, determinism."""

import pytest

from repro.net.sim import Event, Simulator, SimulationError, sleep


def test_time_starts_at_zero():
    assert Simulator().now == 0.0


def test_call_after_ordering():
    sim = Simulator()
    log = []
    sim.call_after(0.3, log.append, "c")
    sim.call_after(0.1, log.append, "a")
    sim.call_after(0.2, log.append, "b")
    sim.run()
    assert log == ["a", "b", "c"]
    assert sim.now == 0.3


def test_same_time_fifo():
    sim = Simulator()
    log = []
    for tag in "abc":
        sim.call_soon(log.append, tag)
    sim.run()
    assert log == ["a", "b", "c"]


def test_cannot_schedule_in_past():
    sim = Simulator()
    sim.call_after(1.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.call_at(0.5, lambda: None)


def test_run_until_bounds_time():
    sim = Simulator()
    log = []
    sim.call_after(1.0, log.append, "early")
    sim.call_after(5.0, log.append, "late")
    sim.run(until=2.0)
    assert log == ["early"]
    assert sim.now == 2.0
    sim.run()
    assert log == ["early", "late"]


def test_run_event_budget():
    sim = Simulator()

    def reschedule():
        sim.call_soon(reschedule)

    sim.call_soon(reschedule)
    with pytest.raises(SimulationError):
        sim.run(max_events=100)


def test_process_sleep():
    sim = Simulator()
    trace = []

    def proc():
        trace.append(sim.now)
        yield 1.5
        trace.append(sim.now)
        yield 0.5
        trace.append(sim.now)

    sim.spawn(proc())
    sim.run()
    assert trace == [0.0, 1.5, 2.0]


def test_process_negative_sleep_kills():
    sim = Simulator()

    def proc():
        yield -1.0

    process = sim.spawn(proc())
    sim.run()
    assert not process.alive


def test_process_bad_yield_kills():
    sim = Simulator()

    def proc():
        yield "nonsense"

    process = sim.spawn(proc())
    sim.run()
    assert not process.alive


def test_process_result():
    sim = Simulator()

    def proc():
        yield 0.1
        return 42

    process = sim.spawn(proc())
    assert sim.run_until_complete(process) == 42
    assert process.result == 42


def test_event_wakes_waiters_with_value():
    sim = Simulator()
    got = []

    def waiter(event):
        value = yield event
        got.append(value)

    event = sim.event("test")
    sim.spawn(waiter(event))
    sim.spawn(waiter(event))
    sim.call_after(1.0, event.trigger, "payload")
    sim.run()
    assert got == ["payload", "payload"]


def test_event_trigger_returns_waiter_count():
    sim = Simulator()
    event = sim.event()

    def waiter():
        yield event

    sim.spawn(waiter())
    sim.run(until=0)
    assert event.waiter_count == 1
    assert event.trigger() == 1
    assert event.trigger() == 0


def test_event_retriggerable():
    sim = Simulator()
    event = sim.event()
    seen = []

    def waiter():
        seen.append((yield event))
        seen.append((yield event))

    sim.spawn(waiter())
    sim.call_after(1, event.trigger, 1)
    sim.call_after(2, event.trigger, 2)
    sim.run()
    assert seen == [1, 2]


def test_none_yield_resumes_same_instant():
    sim = Simulator()
    times = []

    def proc():
        times.append(sim.now)
        yield None
        times.append(sim.now)

    sim.spawn(proc())
    sim.run()
    assert times == [0.0, 0.0]


def test_done_event_fires():
    sim = Simulator()
    finished = []

    def child():
        yield 1.0
        return "done"

    def parent():
        process = sim.spawn(child())
        value = yield process.done_event
        finished.append((value, sim.now))

    sim.spawn(parent())
    sim.run()
    assert finished == [("done", 1.0)]


def test_kill_process():
    sim = Simulator()
    progress = []

    def proc():
        while True:
            progress.append(sim.now)
            yield 1.0

    process = sim.spawn(proc())
    sim.run(until=2.5)
    process.kill()
    sim.run()
    assert not process.alive
    assert len(progress) == 3  # t=0, 1, 2


def test_run_until_complete_deadlock_detection():
    sim = Simulator()

    def proc():
        yield sim.event("never")

    process = sim.spawn(proc())
    with pytest.raises(SimulationError, match="deadlock"):
        sim.run_until_complete(process)


def test_run_until_complete_timeout():
    sim = Simulator()

    def proc():
        yield 100.0

    process = sim.spawn(proc())
    with pytest.raises(SimulationError, match="timeout"):
        sim.run_until_complete(process, timeout=1.0)


def test_sleep_helper():
    sim = Simulator()
    t = []

    def proc():
        yield from sleep(2.0)
        t.append(sim.now)

    sim.spawn(proc())
    sim.run()
    assert t == [2.0]


def test_determinism():
    def build_and_run():
        sim = Simulator()
        log = []

        def a():
            for _ in range(3):
                log.append(("a", sim.now))
                yield 0.5

        def b():
            for _ in range(3):
                log.append(("b", sim.now))
                yield 0.3

        sim.spawn(a())
        sim.spawn(b())
        sim.run()
        return log

    assert build_and_run() == build_and_run()
