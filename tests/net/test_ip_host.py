"""IP layer internals and Host conveniences."""

import pytest

from repro.net.addresses import Ipv4Address
from repro.net.host import build_lan, Host
from repro.net.link import EthernetSegment
from repro.net.packet import IPPROTO_UDP, UdpDatagram
from repro.net.sim import Simulator


class TestLoopback:
    def test_send_to_self_delivers_locally(self):
        sim = Simulator()
        _lan, hosts = build_lan(sim, ["solo"])
        host = hosts["solo"]
        sock = host.udp.bind(4000)
        sock.sendto(b"to myself", host.ip_address, 4000)
        sim.run(until=0.1)
        assert sock.queue
        src_ip, src_port, payload = sock.queue.popleft()
        assert payload == b"to myself"
        assert src_ip == host.ip_address
        # Loopback never touched the wire.
        assert host.interface.frames_sent == 0

    def test_loopback_counts_in_stats(self):
        sim = Simulator()
        _lan, hosts = build_lan(sim, ["solo"])
        host = hosts["solo"]
        host.udp.bind(1)
        host.ip.send(host.ip_address, IPPROTO_UDP, UdpDatagram(9, 1, b"x"))
        sim.run(until=0.1)
        assert host.ip.packets_sent == 1
        assert host.ip.packets_received == 1


class TestDispatch:
    def test_unknown_protocol_dropped(self):
        sim = Simulator()
        _lan, hosts = build_lan(sim, ["a", "b"])
        hosts["a"].ip.send(hosts["b"].ip_address, 99,
                           UdpDatagram(1, 2, b"mystery"))
        sim.run(until=1.0)
        assert hosts["b"].ip.packets_dropped >= 1

    def test_wrong_destination_dropped(self):
        sim = Simulator()
        _lan, hosts = build_lan(sim, ["a", "b", "c"])
        hosts["c"].interface.promiscuous = True
        results = {}

        def pinger():
            results["rtt"] = yield from hosts["a"].icmp.ping(
                hosts["b"].ip_address
            )

        process = sim.spawn(pinger())
        sim.run_until_complete(process, timeout=10)
        # c saw the frames (promiscuous) but its IP layer dropped them.
        assert hosts["c"].ip.packets_dropped > 0
        assert hosts["c"].ip.packets_received == 0

    def test_arp_failure_drops_queued_packet(self):
        sim = Simulator()
        _lan, hosts = build_lan(sim, ["a"])
        hosts["a"].ip.send(Ipv4Address.parse("10.0.0.99"), IPPROTO_UDP,
                           UdpDatagram(1, 2, b"nowhere"))
        sim.run(until=5.0)
        assert hosts["a"].ip.packets_dropped == 1


class TestHostBuilding:
    def test_build_lan_assigns_sequential_ips(self):
        sim = Simulator()
        _lan, hosts = build_lan(sim, ["x", "y", "z"], subnet="192.168.7.")
        assert str(hosts["x"].ip_address) == "192.168.7.1"
        assert str(hosts["z"].ip_address) == "192.168.7.3"

    def test_auto_macs_unique(self):
        sim = Simulator()
        _lan, hosts = build_lan(sim, ["a", "b", "c", "d"])
        macs = {host.interface.mac for host in hosts.values()}
        assert len(macs) == 4

    def test_manual_host_attach(self):
        sim = Simulator()
        segment = EthernetSegment(sim)
        host = Host(sim, "manual", Ipv4Address.parse("172.16.0.1"))
        assert host.attach(segment) is host
        assert host.interface.segment is segment

    def test_repr_smoke(self):
        sim = Simulator()
        _lan, hosts = build_lan(sim, ["a"])
        assert "10.0.0.1" in repr(hosts["a"])
        assert "eth0" in repr(hosts["a"].interface)
