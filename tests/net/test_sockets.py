"""Socket facade tests: BSD (Figure 2a) and Dynamic C (Figure 2b)."""

import pytest

from repro.dync.runtime import CostateScheduler, waitfor
from repro.net.bsd import AF_INET, LISTENQ, SOCK_STREAM, SocketError, socket
from repro.net.dynctcp import (
    DyncTcpStack,
    TCP_MODE_ASCII,
    TCP_MODE_BINARY,
    make_socket,
)
from repro.net.host import build_lan
from repro.net.sim import Simulator


@pytest.fixture()
def world():
    sim = Simulator()
    segment, hosts = build_lan(sim, ["server", "client", "extra"])
    return sim, hosts


class TestBsdSockets:
    def test_echo_round_trip(self, world):
        sim, hosts = world
        out = {}

        def server():
            lsock = socket(hosts["server"])
            lsock.bind(("", 7))
            lsock.listen(LISTENQ)
            conn = yield from lsock.accept()
            data = yield from conn.recv(512)
            yield from conn.sendall(data)
            conn.close()
            lsock.close()

        def client():
            sock = socket(hosts["client"])
            yield from sock.connect(("10.0.0.1", 7))
            yield from sock.sendall(b"bsd bytes")
            out["echo"] = yield from sock.recv(512)
            sock.close()

        hosts["server"].spawn(server())
        process = hosts["client"].spawn(client())
        sim.run_until_complete(process, timeout=60)
        assert out["echo"] == b"bsd bytes"

    def test_unsupported_family(self, world):
        sim, hosts = world
        with pytest.raises(SocketError):
            socket(hosts["server"], family=99)
        with pytest.raises(SocketError):
            socket(hosts["server"], AF_INET, sock_type=99)

    def test_listen_before_bind(self, world):
        sim, hosts = world
        sock = socket(hosts["server"])
        with pytest.raises(SocketError):
            sock.listen()

    def test_accept_before_listen(self, world):
        sim, hosts = world
        sock = socket(hosts["server"])
        with pytest.raises(SocketError):
            next(sock.accept())

    def test_bind_wrong_address(self, world):
        sim, hosts = world
        sock = socket(hosts["server"])
        with pytest.raises(SocketError):
            sock.bind(("10.9.9.9", 80))

    def test_connect_refused(self, world):
        sim, hosts = world
        failed = {}

        def client():
            sock = socket(hosts["client"])
            try:
                yield from sock.connect(("10.0.0.1", 12345))
            except SocketError as exc:
                failed["error"] = str(exc)

        process = hosts["client"].spawn(client())
        sim.run_until_complete(process, timeout=60)
        assert "error" in failed

    def test_recv_eof_returns_empty(self, world):
        sim, hosts = world
        out = {}

        def server():
            lsock = socket(hosts["server"])
            lsock.bind(("", 9))
            lsock.listen()
            conn = yield from lsock.accept()
            conn.close()

        def client():
            sock = socket(hosts["client"])
            yield from sock.connect(("10.0.0.1", 9))
            out["data"] = yield from sock.recv(100)

        hosts["server"].spawn(server())
        process = hosts["client"].spawn(client())
        sim.run_until_complete(process, timeout=60)
        assert out["data"] == b""

    def test_recv_exactly_raises_on_short_stream(self, world):
        sim, hosts = world
        out = {}

        def server():
            lsock = socket(hosts["server"])
            lsock.bind(("", 9))
            lsock.listen()
            conn = yield from lsock.accept()
            yield from conn.sendall(b"abc")
            conn.close()

        def client():
            sock = socket(hosts["client"])
            yield from sock.connect(("10.0.0.1", 9))
            try:
                yield from sock.recv_exactly(10, timeout=5)
            except SocketError as exc:
                out["error"] = str(exc)

        hosts["server"].spawn(server())
        process = hosts["client"].spawn(client())
        sim.run_until_complete(process, timeout=60)
        assert "EOF" in out["error"]

    def test_recv_timeout(self, world):
        sim, hosts = world
        out = {}

        def server():
            lsock = socket(hosts["server"])
            lsock.bind(("", 9))
            lsock.listen()
            yield from lsock.accept()
            yield 100.0

        def client():
            sock = socket(hosts["client"])
            yield from sock.connect(("10.0.0.1", 9))
            try:
                yield from sock.recv(10, timeout=0.5)
            except SocketError as exc:
                out["error"] = str(exc)

        hosts["server"].spawn(server())
        process = hosts["client"].spawn(client())
        sim.run_until_complete(process, timeout=60)
        assert "timed out" in out["error"]

    def test_peer_address(self, world):
        sim, hosts = world
        out = {}

        def server():
            lsock = socket(hosts["server"])
            lsock.bind(("", 9))
            lsock.listen()
            conn = yield from lsock.accept()
            out["peer"] = conn.peer_address

        def client():
            sock = socket(hosts["client"])
            yield from sock.connect(("10.0.0.1", 9))
            out["local"] = sock.local_port
            yield 0.5

        hosts["server"].spawn(server())
        process = hosts["client"].spawn(client())
        sim.run_until_complete(process, timeout=60)
        assert out["peer"] == ("10.0.0.2", out["local"])


class TestDyncSockets:
    def test_requires_sock_init(self, world):
        sim, hosts = world
        stack = DyncTcpStack(hosts["server"])
        sock = make_socket(stack)
        assert stack.tcp_listen(sock, 7) == 0
        assert stack.sock_init() == 0
        assert stack.tcp_listen(sock, 7) == 1

    def test_nothing_happens_without_tick(self, world):
        sim, hosts = world
        stack = DyncTcpStack(hosts["server"])
        stack.sock_init()
        sock = make_socket(stack)
        stack.tcp_listen(sock, 7)

        failed = {}

        def client():
            csock = socket(hosts["client"])
            try:
                yield from csock.connect(("10.0.0.1", 7), timeout=0.4)
            except SocketError as exc:
                failed["error"] = str(exc)

        process = hosts["client"].spawn(client())
        sim.run(until=2.0)
        # No tcp_tick was ever called: the SYN sits in the rx queue and
        # the connection cannot establish.
        assert len(stack._rx_queue) >= 1
        assert stack.sock_established(sock) == 0
        assert "timed out" in failed["error"]
        assert not process.alive

    def test_ascii_line_io(self, world):
        sim, hosts = world
        stack = DyncTcpStack(hosts["server"])
        stack.sock_init()
        scheduler = CostateScheduler(sim)
        lines = []

        def serve():
            sock = make_socket(stack)
            stack.tcp_listen(sock, 23)
            yield from waitfor(lambda: stack.sock_established(sock))
            stack.sock_mode(sock, TCP_MODE_ASCII)
            while stack.tcp_tick(sock):
                line = stack.sock_gets(sock)
                if line is not None:
                    lines.append(line)
                    stack.sock_puts(sock, line[::-1])
                if len(lines) == 2:
                    stack.sock_close(sock)
                    return
                yield

        def tick():
            while True:
                stack.tcp_tick(None)
                yield

        scheduler.add(serve())
        scheduler.add(tick())
        scheduler.start()
        out = {}

        def client():
            csock = socket(hosts["client"])
            yield from csock.connect(("10.0.0.1", 23))
            yield from csock.sendall(b"first\r\nsecond\n")
            data = b""
            while data.count(b"\n") < 2:
                chunk = yield from csock.recv(100)
                if not chunk:
                    break
                data += chunk
            out["reply"] = data
            csock.close()

        process = hosts["client"].spawn(client())
        sim.run_until_complete(process, timeout=60)
        assert lines == [b"first", b"second"]
        assert out["reply"] == b"tsrif\ndnoces\n"

    def test_binary_mode_bytesready(self, world):
        sim, hosts = world
        stack = DyncTcpStack(hosts["server"])
        stack.sock_init()
        scheduler = CostateScheduler(sim)
        observed = {}

        def serve():
            sock = make_socket(stack)
            stack.tcp_listen(sock, 9)
            stack.sock_mode(sock, TCP_MODE_BINARY)
            yield from waitfor(lambda: stack.sock_established(sock))
            assert stack.sock_bytesready(sock) == -1
            yield from waitfor(lambda: stack.sock_bytesready(sock) >= 0)
            observed["ready"] = stack.sock_bytesready(sock)
            observed["data"] = stack.sock_read(sock, 100)
            stack.sock_close(sock)

        def tick():
            while True:
                stack.tcp_tick(None)
                yield

        scheduler.add(serve())
        scheduler.add(tick())
        scheduler.start()

        def client():
            csock = socket(hosts["client"])
            yield from csock.connect(("10.0.0.1", 9))
            yield from csock.sendall(b"\x00\x01\x02")
            yield 0.2

        process = hosts["client"].spawn(client())
        sim.run_until_complete(process, timeout=60)
        assert observed["ready"] == 3
        assert observed["data"] == b"\x00\x01\x02"

    def test_tcp_open_client_side(self, world):
        sim, hosts = world
        # RMC as the TCP client: connect out to a BSD server.
        stack = DyncTcpStack(hosts["server"])
        stack.sock_init()
        scheduler = CostateScheduler(sim)
        got = {}

        def bsd_server():
            lsock = socket(hosts["client"])
            lsock.bind(("", 2000))
            lsock.listen()
            conn = yield from lsock.accept()
            data = yield from conn.recv(100)
            got["server_got"] = data
            yield from conn.sendall(b"ok")
            conn.close()

        def rmc_client():
            sock = make_socket(stack)
            assert stack.tcp_open(sock, 0, hosts["client"].ip_address, 2000)
            yield from waitfor(lambda: stack.sock_established(sock))
            stack.sock_write(sock, b"from rmc")
            yield from waitfor(lambda: stack.sock_bytesready(sock) >= 0)
            got["reply"] = stack.sock_read(sock, 10)
            stack.sock_close(sock)

        def tick():
            while True:
                stack.tcp_tick(None)
                yield

        hosts["client"].spawn(bsd_server())
        scheduler.add(rmc_client())
        scheduler.add(tick())
        scheduler.start()
        sim.run(until=3.0)
        assert got["server_got"] == b"from rmc"
        assert got["reply"] == b"ok"

    def test_sock_write_on_closed_returns_error(self, world):
        sim, hosts = world
        stack = DyncTcpStack(hosts["server"])
        stack.sock_init()
        sock = make_socket(stack)
        assert stack.sock_write(sock, b"data") == -1

    def test_sock_mode_validates(self, world):
        sim, hosts = world
        stack = DyncTcpStack(hosts["server"])
        sock = make_socket(stack)
        with pytest.raises(ValueError):
            stack.sock_mode(sock, 7)
