"""Address types and wire formats: parse/format roundtrips, checksums."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.net.addresses import (
    AddressError,
    BROADCAST_IP,
    BROADCAST_MAC,
    INADDR_ANY,
    Ipv4Address,
    MacAddress,
    ip,
    mac,
)
from repro.net.packet import (
    ArpPacket,
    EthernetFrame,
    ETHERTYPE_ARP,
    ETHERTYPE_IP,
    IcmpMessage,
    internet_checksum,
    IpPacket,
    IPPROTO_ICMP,
    IPPROTO_TCP,
    IPPROTO_UDP,
    PacketError,
    TCP_ACK,
    TCP_SYN,
    TcpSegment,
    UdpDatagram,
)


class TestAddresses:
    def test_parse_format_roundtrip(self):
        for text in ("0.0.0.0", "10.0.0.1", "255.255.255.255", "192.168.1.77"):
            assert str(Ipv4Address.parse(text)) == text

    def test_parse_rejects_garbage(self):
        for bad in ("1.2.3", "1.2.3.4.5", "256.0.0.1", "a.b.c.d", ""):
            with pytest.raises(AddressError):
                Ipv4Address.parse(bad)

    def test_bytes_roundtrip(self):
        addr = ip("172.16.254.3")
        assert Ipv4Address.from_bytes(addr.to_bytes()) == addr
        with pytest.raises(AddressError):
            Ipv4Address.from_bytes(b"\x01\x02\x03")

    def test_constants(self):
        assert str(INADDR_ANY) == "0.0.0.0"
        assert str(BROADCAST_IP) == "255.255.255.255"
        assert str(BROADCAST_MAC) == "ff:ff:ff:ff:ff:ff"

    def test_mac_roundtrip(self):
        address = mac("02:00:00:00:00:2a")
        assert str(address) == "02:00:00:00:00:2a"
        assert MacAddress.from_bytes(address.to_bytes()) == address

    def test_mac_rejects_garbage(self):
        for bad in ("02:00:00:00:00", "zz:00:00:00:00:00", "020000000000"):
            with pytest.raises(AddressError):
                MacAddress.parse(bad)

    def test_range_checks(self):
        with pytest.raises(AddressError):
            Ipv4Address(1 << 32)
        with pytest.raises(AddressError):
            MacAddress(1 << 48)

    @given(st.integers(min_value=0, max_value=0xFFFFFFFF))
    def test_ipv4_value_roundtrip(self, value):
        addr = Ipv4Address(value)
        assert Ipv4Address.parse(str(addr)) == addr

    def test_ordering(self):
        assert ip("10.0.0.1") < ip("10.0.0.2")


class TestChecksum:
    def test_rfc1071_example(self):
        data = bytes.fromhex("00010f234435667a ccac".replace(" ", ""))
        checksum = internet_checksum(data)
        # Verifying: data plus its checksum folds to zero.
        verify = internet_checksum(data + checksum.to_bytes(2, "big"))
        assert verify == 0

    def test_zero_data(self):
        assert internet_checksum(b"\x00\x00") == 0xFFFF

    def test_odd_length_padded(self):
        assert internet_checksum(b"\x01") == internet_checksum(b"\x01\x00")


class TestWireFormats:
    def test_arp_roundtrip(self):
        packet = ArpPacket(1, mac("02:00:00:00:00:01"), ip("10.0.0.1"),
                           MacAddress(0), ip("10.0.0.2"))
        assert ArpPacket.from_bytes(packet.to_bytes()) == packet
        assert packet.wire_size() == len(packet.to_bytes())

    def test_arp_rejects_short(self):
        with pytest.raises(PacketError):
            ArpPacket.from_bytes(b"\x00" * 10)

    def test_icmp_roundtrip_and_checksum(self):
        message = IcmpMessage(8, 0, 7, 1, b"payload")
        wire = message.to_bytes()
        assert IcmpMessage.from_bytes(wire) == message
        corrupted = wire[:-1] + bytes([wire[-1] ^ 0xFF])
        with pytest.raises(PacketError):
            IcmpMessage.from_bytes(corrupted)

    def test_udp_roundtrip(self):
        datagram = UdpDatagram(1234, 53, b"query")
        assert UdpDatagram.from_bytes(datagram.to_bytes()) == datagram

    def test_udp_length_check(self):
        wire = UdpDatagram(1, 2, b"abc").to_bytes()
        with pytest.raises(PacketError):
            UdpDatagram.from_bytes(wire + b"extra")

    @given(payload=st.binary(max_size=100),
           seq=st.integers(min_value=0, max_value=0xFFFFFFFF),
           flags=st.integers(min_value=0, max_value=0x3F))
    def test_tcp_roundtrip(self, payload, seq, flags):
        segment = TcpSegment(80, 12345, seq, 0, flags, 8000, payload)
        assert TcpSegment.from_bytes(segment.to_bytes()) == segment

    def test_tcp_flag_helpers(self):
        segment = TcpSegment(1, 2, 0, 0, TCP_SYN | TCP_ACK, 0)
        assert segment.flag(TCP_SYN)
        assert segment.flag(TCP_ACK)
        assert "SYN" in segment.flag_names()

    def test_ip_roundtrip_all_protocols(self):
        payloads = [
            (IPPROTO_ICMP, IcmpMessage(8, 0, 1, 1, b"x")),
            (IPPROTO_TCP, TcpSegment(1, 2, 3, 4, TCP_ACK, 100, b"data")),
            (IPPROTO_UDP, UdpDatagram(5, 6, b"dgram")),
        ]
        for protocol, payload in payloads:
            packet = IpPacket(ip("10.0.0.1"), ip("10.0.0.2"), protocol, payload)
            decoded = IpPacket.from_bytes(packet.to_bytes())
            assert decoded.src == packet.src
            assert decoded.dst == packet.dst
            assert decoded.payload == payload

    def test_ip_header_checksum_enforced(self):
        packet = IpPacket(ip("1.1.1.1"), ip("2.2.2.2"), IPPROTO_UDP,
                          UdpDatagram(1, 2, b""))
        wire = bytearray(packet.to_bytes())
        wire[8] ^= 0xFF  # corrupt the TTL field
        with pytest.raises(PacketError):
            IpPacket.from_bytes(bytes(wire))

    def test_ethernet_roundtrip(self):
        inner = IpPacket(ip("10.0.0.1"), ip("10.0.0.2"), IPPROTO_UDP,
                         UdpDatagram(1, 2, b"hello"))
        frame = EthernetFrame(mac("02:00:00:00:00:01"),
                              mac("02:00:00:00:00:02"), ETHERTYPE_IP, inner)
        decoded = EthernetFrame.from_bytes(frame.to_bytes())
        assert decoded.src == frame.src
        assert decoded.payload.payload == inner.payload

    def test_ethernet_minimum_frame_size(self):
        inner = ArpPacket(1, MacAddress(1), ip("1.2.3.4"), MacAddress(0),
                          ip("4.3.2.1"))
        frame = EthernetFrame(MacAddress(1), BROADCAST_MAC, ETHERTYPE_ARP, inner)
        assert frame.wire_size() >= 64

    def test_ttl_decrement(self):
        packet = IpPacket(ip("1.1.1.1"), ip("2.2.2.2"), IPPROTO_UDP,
                          UdpDatagram(1, 2, b""), ttl=5)
        assert packet.decrement_ttl().ttl == 4
