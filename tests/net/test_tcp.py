"""TCP state machine tests: handshake, data, loss recovery, flow
control, teardown, resets, and sequence arithmetic properties."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.net.host import build_lan
from repro.net.packet import ETHERTYPE_IP, IPPROTO_TCP, TCP_SYN, TcpSegment
from repro.net.sim import Simulator
from repro.net.tcp import (
    DEFAULT_MSS,
    seq_add,
    seq_diff,
    seq_le,
    seq_lt,
    TcpError,
    TcpState,
)

U32 = st.integers(min_value=0, max_value=(1 << 32) - 1)


class TestSeqArithmetic:
    @given(U32, st.integers(min_value=0, max_value=1 << 30))
    def test_add_then_diff(self, base, delta):
        assert seq_diff(seq_add(base, delta), base) == delta

    @given(U32)
    def test_reflexive(self, a):
        assert seq_diff(a, a) == 0
        assert seq_le(a, a)
        assert not seq_lt(a, a)

    @given(U32, st.integers(min_value=1, max_value=1 << 30))
    def test_ordering_with_wraparound(self, base, delta):
        later = seq_add(base, delta)
        assert seq_lt(base, later)
        assert not seq_lt(later, base)

    def test_wrap_example(self):
        assert seq_lt(0xFFFFFFF0, 0x10)
        assert seq_diff(0x10, 0xFFFFFFF0) == 0x20


@pytest.fixture()
def pair():
    sim = Simulator()
    segment, hosts = build_lan(sim, ["server", "client"])
    return sim, segment, hosts["server"], hosts["client"]


def _establish(sim, server, client, port=80):
    listener = server.tcp.listen(port)
    conn = client.tcp.connect(server.ip_address, port)
    sim.run(until=sim.now + 1.0)
    accepted = listener.pop()
    assert accepted is not None, "handshake did not complete"
    return listener, conn, accepted


class TestHandshake:
    def test_three_way(self, pair):
        sim, segment, server, client = pair
        _listener, conn, accepted = _establish(sim, server, client)
        assert conn.state == TcpState.ESTABLISHED
        assert accepted.state == TcpState.ESTABLISHED

    def test_connect_to_closed_port_resets(self, pair):
        sim, segment, server, client = pair
        conn = client.tcp.connect(server.ip_address, 81)
        sim.run(until=1.0)
        assert conn.state == TcpState.CLOSED
        assert conn.error is not None

    def test_syn_retransmission(self, pair):
        sim, segment, server, client = pair
        # Drop the first SYN; the client retries and still connects.
        dropped = []

        def drop_first_syn(frame, index):
            if frame.ethertype != ETHERTYPE_IP:
                return False
            packet = frame.payload
            if packet.protocol != IPPROTO_TCP or dropped:
                return False
            if packet.payload.flag(TCP_SYN):
                dropped.append(index)
                return True
            return False

        segment.set_drop_filter(drop_first_syn)
        listener = server.tcp.listen(80)
        conn = client.tcp.connect(server.ip_address, 80)
        sim.run(until=2.0)
        assert conn.state == TcpState.ESTABLISHED
        assert conn.segments_retransmitted >= 1
        assert listener.pop() is not None

    def test_backlog_refusal(self, pair):
        sim, segment, server, client = pair
        server.tcp.listen(80, backlog=1)
        first = client.tcp.connect(server.ip_address, 80)
        second = client.tcp.connect(server.ip_address, 80)
        sim.run(until=2.0)
        states = {first.state, second.state}
        assert TcpState.ESTABLISHED in states
        assert TcpState.CLOSED in states

    def test_duplicate_listen_rejected(self, pair):
        sim, segment, server, client = pair
        server.tcp.listen(80)
        with pytest.raises(TcpError):
            server.tcp.listen(80)


class TestDataTransfer:
    def test_bidirectional(self, pair):
        sim, segment, server, client = pair
        _listener, conn, accepted = _establish(sim, server, client)
        conn.send(b"ping from client")
        accepted.send(b"pong from server")
        sim.run(until=sim.now + 1.0)
        assert accepted.recv(100) == b"ping from client"
        assert conn.recv(100) == b"pong from server"

    def test_large_transfer_segmented(self, pair):
        sim, segment, server, client = pair
        _listener, conn, accepted = _establish(sim, server, client)
        payload = bytes(i & 0xFF for i in range(5000))
        conn.send(payload)
        sim.run(until=sim.now + 5.0)
        received = accepted.recv(10000)
        assert received == payload
        # 5000 bytes over MSS-sized segments.
        assert conn.bytes_sent == 5000
        assert 5000 // DEFAULT_MSS <= server.tcp.segments_received

    def test_loss_recovery(self, pair):
        sim, segment, server, client = pair
        _listener, conn, accepted = _establish(sim, server, client)
        # Drop every 5th TCP data frame once.
        seen = set()

        def lossy(frame, index):
            if frame.ethertype != ETHERTYPE_IP:
                return False
            packet = frame.payload
            if packet.protocol != IPPROTO_TCP or not packet.payload.payload:
                return False
            key = packet.payload.seq
            if key % 5 == 0 and key not in seen:
                seen.add(key)
                return True
            return False

        segment.set_drop_filter(lossy)
        payload = bytes(range(256)) * 20  # 5120 bytes
        conn.send(payload)
        sim.run(until=sim.now + 30.0)
        assert accepted.recv(10000) == payload
        assert conn.segments_retransmitted >= 1

    def test_flow_control_window(self, pair):
        sim, segment, server, client = pair
        listener = server.tcp.listen(80, window=1024)
        conn = client.tcp.connect(server.ip_address, 80)
        sim.run(until=1.0)
        accepted = listener.pop()
        payload = bytes(4096)
        conn.send(payload)
        sim.run(until=sim.now + 5.0)
        # Receiver buffer capped at its window until the app reads.
        assert accepted.receive_available() <= 1024
        # Reading reopens the window and the rest flows.
        collected = b""
        for _ in range(20):
            collected += accepted.recv(512)
            sim.run(until=sim.now + 1.0)
            if len(collected) == 4096:
                break
        assert collected == payload

    def test_send_before_established_raises(self, pair):
        sim, segment, server, client = pair
        conn = client.tcp.connect(server.ip_address, 80)
        with pytest.raises(TcpError):
            conn.send(b"too early")


class TestTeardown:
    def test_orderly_close_four_way(self, pair):
        sim, segment, server, client = pair
        _listener, conn, accepted = _establish(sim, server, client)
        conn.close()
        sim.run(until=sim.now + 1.0)
        assert accepted.fin_received
        assert accepted.at_eof
        assert accepted.state == TcpState.CLOSE_WAIT
        accepted.close()
        sim.run(until=sim.now + 0.5)
        assert accepted.state == TcpState.CLOSED
        assert conn.state == TcpState.TIME_WAIT
        sim.run(until=sim.now + 2.0)
        assert conn.state == TcpState.CLOSED

    def test_close_flushes_pending_data(self, pair):
        sim, segment, server, client = pair
        _listener, conn, accepted = _establish(sim, server, client)
        payload = bytes(2000)
        conn.send(payload)
        conn.close()  # FIN queued behind the data
        sim.run(until=sim.now + 5.0)
        assert accepted.recv(5000) == payload
        assert accepted.at_eof

    def test_abort_sends_rst(self, pair):
        sim, segment, server, client = pair
        _listener, conn, accepted = _establish(sim, server, client)
        conn.abort()
        sim.run(until=sim.now + 1.0)
        assert accepted.state == TcpState.CLOSED
        assert accepted.error is not None

    def test_send_after_close_raises(self, pair):
        sim, segment, server, client = pair
        _listener, conn, accepted = _establish(sim, server, client)
        conn.close()
        with pytest.raises(TcpError):
            conn.send(b"late")

    def test_time_wait_releases_port(self, pair):
        sim, segment, server, client = pair
        _listener, conn, accepted = _establish(sim, server, client)
        before = client.tcp.open_connections
        conn.close()
        accepted.close()
        sim.run(until=sim.now + 3.0)
        assert client.tcp.open_connections == before - 1


class TestRobustness:
    def test_stray_segment_gets_rst(self, pair):
        sim, segment, server, client = pair
        stray = TcpSegment(1234, 4321, 1, 0, 0x10, 100, b"stray")
        client.ip.send(server.ip_address, IPPROTO_TCP, stray)
        sim.run(until=1.0)
        assert server.tcp.resets_sent == 1

    def test_duplicate_data_ignored(self, pair):
        sim, segment, server, client = pair
        _listener, conn, accepted = _establish(sim, server, client)
        conn.send(b"hello")
        sim.run(until=sim.now + 1.0)
        assert accepted.recv(100) == b"hello"
        # Replay the same bytes at the same sequence numbers.
        replay = TcpSegment(conn.local_port, 80,
                            seq_add(conn.snd_una, -5 % (1 << 32)), conn.rcv_nxt,
                            0x18, 8000, b"hello")
        client.ip.send(server.ip_address, IPPROTO_TCP, replay)
        sim.run(until=sim.now + 1.0)
        assert accepted.recv(100) == b""

    def test_connection_stats(self, pair):
        sim, segment, server, client = pair
        _listener, conn, accepted = _establish(sim, server, client)
        conn.send(b"x" * 100)
        sim.run(until=sim.now + 1.0)
        assert conn.bytes_sent == 100
        assert accepted.bytes_received == 100

    def test_listener_close_aborts_embryonic(self, pair):
        sim, segment, server, client = pair
        listener = server.tcp.listen(80)
        client.tcp.connect(server.ip_address, 80)
        listener.close()
        sim.run(until=2.0)
        assert server.tcp._listeners.get(80) is None
