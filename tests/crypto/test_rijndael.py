"""Rijndael/AES tests: FIPS-197 vectors, cross-implementation equality,
variable block sizes, and property-based roundtrips."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.aes_ttable import AesTTable
from repro.crypto.rijndael import Rijndael, RijndaelError, expand_key

# FIPS-197 Appendix C example vectors: (key hex, plaintext hex, ciphertext hex)
FIPS_VECTORS = [
    (
        "000102030405060708090a0b0c0d0e0f",
        "00112233445566778899aabbccddeeff",
        "69c4e0d86a7b0430d8cdb78070b4c55a",
    ),
    (
        "000102030405060708090a0b0c0d0e0f1011121314151617",
        "00112233445566778899aabbccddeeff",
        "dda97ca4864cdfe06eaf70a0ec0d7191",
    ),
    (
        "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f",
        "00112233445566778899aabbccddeeff",
        "8ea2b7ca516745bfeafc49904b496089",
    ),
]


@pytest.mark.parametrize("key_hex,pt_hex,ct_hex", FIPS_VECTORS)
def test_reference_fips_vectors(key_hex, pt_hex, ct_hex):
    cipher = Rijndael(bytes.fromhex(key_hex))
    assert cipher.encrypt_block(bytes.fromhex(pt_hex)).hex() == ct_hex
    assert cipher.decrypt_block(bytes.fromhex(ct_hex)).hex() == pt_hex


@pytest.mark.parametrize("key_hex,pt_hex,ct_hex", FIPS_VECTORS)
def test_ttable_fips_vectors(key_hex, pt_hex, ct_hex):
    cipher = AesTTable(bytes.fromhex(key_hex))
    assert cipher.encrypt_block(bytes.fromhex(pt_hex)).hex() == ct_hex
    assert cipher.decrypt_block(bytes.fromhex(ct_hex)).hex() == pt_hex


def test_appendix_b_vector():
    key = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
    pt = bytes.fromhex("3243f6a8885a308d313198a2e0370734")
    assert Rijndael(key).encrypt_block(pt).hex() == "3925841d02dc09fbdc118597196a0b32"


def test_round_counts():
    assert Rijndael(bytes(16)).rounds == 10
    assert Rijndael(bytes(24)).rounds == 12
    assert Rijndael(bytes(32)).rounds == 14
    assert Rijndael(bytes(16), block_bits=256).rounds == 14
    assert Rijndael(bytes(24), block_bits=192).rounds == 12
    assert AesTTable(bytes(16)).rounds == 10


def test_key_expansion_word_count():
    # Nb * (Nr + 1) words.
    assert len(expand_key(bytes(16))) == 44
    assert len(expand_key(bytes(24))) == 52
    assert len(expand_key(bytes(32))) == 60
    assert len(expand_key(bytes(16), block_bits=256)) == 8 * 15


def test_fips_key_schedule_first_words():
    # FIPS-197 Appendix A.1 for the 128-bit key.
    words = expand_key(bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c"))
    assert bytes(words[4]).hex() == "a0fafe17"
    assert bytes(words[5]).hex() == "88542cb1"
    assert bytes(words[43]).hex() == "b6630ca6"


@pytest.mark.parametrize("bad_len", [0, 1, 15, 17, 20, 33, 64])
def test_bad_key_length_rejected(bad_len):
    with pytest.raises(RijndaelError):
        Rijndael(bytes(bad_len))
    with pytest.raises(RijndaelError):
        AesTTable(bytes(bad_len))


def test_bad_block_length_rejected():
    cipher = Rijndael(bytes(16))
    with pytest.raises(RijndaelError):
        cipher.encrypt_block(bytes(15))
    with pytest.raises(RijndaelError):
        cipher.decrypt_block(bytes(17))
    with pytest.raises(RijndaelError):
        Rijndael(bytes(16), block_bits=160)


@pytest.mark.parametrize("block_bits", [128, 192, 256])
@pytest.mark.parametrize("key_len", [16, 24, 32])
def test_all_rijndael_size_combinations_roundtrip(block_bits, key_len):
    cipher = Rijndael(bytes(range(key_len)), block_bits=block_bits)
    block = bytes(range(100, 100 + block_bits // 8))
    assert cipher.decrypt_block(cipher.encrypt_block(block)) == block
    assert cipher.block_size == block_bits // 8


@given(key=st.binary(min_size=16, max_size=16), block=st.binary(min_size=16, max_size=16))
@settings(max_examples=25, deadline=None)
def test_implementations_agree(key, block):
    ref = Rijndael(key)
    opt = AesTTable(key)
    ct = ref.encrypt_block(block)
    assert opt.encrypt_block(block) == ct
    assert ref.decrypt_block(ct) == block
    assert opt.decrypt_block(ct) == block


@given(
    key=st.binary(min_size=24, max_size=24),
    block=st.binary(min_size=16, max_size=16),
)
@settings(max_examples=10, deadline=None)
def test_implementations_agree_192_key(key, block):
    assert AesTTable(key).encrypt_block(block) == Rijndael(key).encrypt_block(block)


@given(block=st.binary(min_size=16, max_size=16))
@settings(max_examples=25, deadline=None)
def test_encryption_changes_data(block):
    # A block cipher output differing from its input in every test case is
    # not guaranteed, but equality would mean a fixed point on this key --
    # astronomically unlikely and worth flagging.
    cipher = AesTTable(b"0123456789abcdef")
    assert cipher.encrypt_block(block) != block or block == cipher.encrypt_block(block)
    assert cipher.decrypt_block(cipher.encrypt_block(block)) == block


def test_avalanche_single_bit_flip():
    cipher = Rijndael(bytes(16))
    base = cipher.encrypt_block(bytes(16))
    flipped = cipher.encrypt_block(b"\x01" + bytes(15))
    differing_bits = sum(bin(a ^ b).count("1") for a, b in zip(base, flipped))
    # Expect roughly half of 128 bits to differ; allow a generous band.
    assert 30 <= differing_bits <= 100
