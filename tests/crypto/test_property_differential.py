"""Seeded property/differential tests for the ported crypto.

The paper's port had no room for a crypto test battery on the target;
the reproduction does.  Every case here draws randomized inputs from a
fixed-seed ``random.Random`` (reproducible by construction, no new
dependencies) and checks the port against an independent authority:

* the two AES implementations against *each other* (a table lookup bug
  that self-inverts would survive a round-trip test but not this),
* SHA-1/MD5/HMAC against ``hashlib``/``hmac``,
* block modes round-trip across random key/plaintext/length choices,
* corrupted ciphertext must *fail* -- never silently decrypt to the
  original -- which is the property the issl MAC teardown stands on.
"""

import hashlib
import hmac as py_hmac
import random

import pytest

from repro.crypto.aes_ttable import AesTTable
from repro.crypto.hmac import (
    Hmac,
    constant_time_equal,
    hmac_md5,
    hmac_sha1,
)
from repro.crypto.md5 import md5
from repro.crypto.modes import (
    PaddingError,
    cbc_decrypt,
    cbc_encrypt,
    ctr_xor,
    ecb_decrypt,
    ecb_encrypt,
    pkcs7_pad,
    pkcs7_unpad,
)
from repro.crypto.rijndael import Rijndael
from repro.crypto.sha1 import sha1

SEED = 20030310  # the paper's DATE 2003 session, fixed forever
CASES = 40

KEY_SIZES = (16, 24, 32)


def _rng() -> random.Random:
    return random.Random(SEED)


def _rand_bytes(rng: random.Random, n: int) -> bytes:
    return rng.randbytes(n)


class TestAesDifferential:
    """Reference Rijndael vs the T-table port, same inputs."""

    def test_encrypt_block_agrees(self):
        rng = _rng()
        for _ in range(CASES):
            key = _rand_bytes(rng, rng.choice(KEY_SIZES))
            block = _rand_bytes(rng, 16)
            assert (AesTTable(key).encrypt_block(block)
                    == Rijndael(key).encrypt_block(block))

    def test_decrypt_block_agrees(self):
        rng = _rng()
        for _ in range(CASES):
            key = _rand_bytes(rng, rng.choice(KEY_SIZES))
            block = _rand_bytes(rng, 16)
            assert (AesTTable(key).decrypt_block(block)
                    == Rijndael(key).decrypt_block(block))

    def test_round_trip_both_implementations(self):
        rng = _rng()
        for _ in range(CASES):
            key = _rand_bytes(rng, rng.choice(KEY_SIZES))
            block = _rand_bytes(rng, 16)
            for implementation in (AesTTable, Rijndael):
                cipher = implementation(key)
                assert cipher.decrypt_block(
                    cipher.encrypt_block(block)
                ) == block


class TestModesProperties:
    def test_ecb_cbc_round_trip_random_lengths(self):
        rng = _rng()
        for _ in range(CASES):
            cipher = AesTTable(_rand_bytes(rng, rng.choice(KEY_SIZES)))
            iv = _rand_bytes(rng, 16)
            plaintext = _rand_bytes(rng, rng.randrange(0, 200))
            padded = pkcs7_pad(plaintext, 16)
            assert pkcs7_unpad(
                ecb_decrypt(cipher, ecb_encrypt(cipher, padded)), 16
            ) == plaintext
            assert pkcs7_unpad(
                cbc_decrypt(cipher, iv, cbc_encrypt(cipher, iv, padded)),
                16,
            ) == plaintext

    def test_ctr_is_an_involution(self):
        rng = _rng()
        for _ in range(CASES):
            cipher = AesTTable(_rand_bytes(rng, rng.choice(KEY_SIZES)))
            nonce = _rand_bytes(rng, 16)
            data = _rand_bytes(rng, rng.randrange(0, 200))
            assert ctr_xor(
                cipher, nonce, ctr_xor(cipher, nonce, data)
            ) == data

    def test_cbc_differs_from_ecb_on_repeated_blocks(self):
        rng = _rng()
        cipher = AesTTable(_rand_bytes(rng, 16))
        iv = _rand_bytes(rng, 16)
        repeated = _rand_bytes(rng, 16) * 4
        ecb = ecb_encrypt(cipher, repeated)
        cbc = cbc_encrypt(cipher, iv, repeated)
        assert ecb[:16] == ecb[16:32]  # ECB leaks the repetition...
        assert cbc[:16] != cbc[16:32]  # ...CBC must not


class TestHashDifferential:
    """The hand-ported digests against the platform's own."""

    def test_sha1_matches_hashlib(self):
        rng = _rng()
        # Lengths straddling the 64-byte block boundary and beyond.
        lengths = [0, 1, 55, 56, 63, 64, 65, 127, 128]
        lengths += [rng.randrange(0, 500) for _ in range(CASES)]
        for length in lengths:
            data = _rand_bytes(rng, length)
            assert sha1(data) == hashlib.sha1(data).digest()

    def test_md5_matches_hashlib(self):
        rng = _rng()
        lengths = [0, 1, 55, 56, 63, 64, 65, 127, 128]
        lengths += [rng.randrange(0, 500) for _ in range(CASES)]
        for length in lengths:
            data = _rand_bytes(rng, length)
            assert md5(data) == hashlib.md5(data).digest()

    def test_hmac_matches_stdlib(self):
        rng = _rng()
        for _ in range(CASES):
            # Keys shorter, equal to, and longer than the block size.
            key = _rand_bytes(rng, rng.choice([0, 1, 16, 64, 65, 200]))
            data = _rand_bytes(rng, rng.randrange(0, 300))
            assert hmac_sha1(key, data) == py_hmac.new(
                key, data, hashlib.sha1
            ).digest()
            assert hmac_md5(key, data) == py_hmac.new(
                key, data, hashlib.md5
            ).digest()

    def test_hmac_incremental_matches_oneshot(self):
        rng = _rng()
        for _ in range(10):
            key = _rand_bytes(rng, 20)
            parts = [
                _rand_bytes(rng, rng.randrange(0, 50)) for _ in range(5)
            ]
            mac = Hmac(key)
            for part in parts:
                mac.update(part)
            assert mac.digest() == hmac_sha1(key, b"".join(parts))


class TestCorruptionMustFail:
    """One flipped bit anywhere in the protected stream must be caught
    -- the property every fault scenario's MAC-teardown check relies
    on."""

    def test_corrupted_cbc_never_yields_original(self):
        rng = _rng()
        for _ in range(CASES):
            cipher = AesTTable(_rand_bytes(rng, 16))
            iv = _rand_bytes(rng, 16)
            plaintext = _rand_bytes(rng, rng.randrange(1, 100))
            ciphertext = bytearray(
                cbc_encrypt(cipher, iv, pkcs7_pad(plaintext, 16))
            )
            position = rng.randrange(len(ciphertext))
            ciphertext[position] ^= 1 << rng.randrange(8)
            try:
                recovered = pkcs7_unpad(
                    cbc_decrypt(cipher, iv, bytes(ciphertext)), 16
                )
            except PaddingError:
                continue  # failing loudly is the good outcome
            assert recovered != plaintext

    def test_mac_catches_every_single_bit_flip(self):
        rng = _rng()
        key = _rand_bytes(rng, 20)
        message = _rand_bytes(rng, 48)
        tag = hmac_sha1(key, message)
        for position in range(len(message)):
            for bit in range(8):
                corrupted = bytearray(message)
                corrupted[position] ^= 1 << bit
                assert not constant_time_equal(
                    hmac_sha1(key, bytes(corrupted)), tag
                )

    def test_constant_time_equal_requires_equality(self):
        rng = _rng()
        for _ in range(CASES):
            data = _rand_bytes(rng, rng.randrange(1, 40))
            assert constant_time_equal(data, bytes(data))
            assert not constant_time_equal(data, data + b"\x00")


def test_seed_is_pinned():
    """The whole module is reproducible: same seed, same draws."""
    assert _rng().randbytes(8) == random.Random(SEED).randbytes(8)


if __name__ == "__main__":  # pragma: no cover
    pytest.main([__file__, "-v"])
