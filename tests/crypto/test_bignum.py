"""BigNum tests: arithmetic vs Python ints, Knuth division vs the binary
oracle, modular algebra, and primality."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.bignum import (
    BigNum,
    BignumError,
    generate_prime,
    is_probable_prime,
    random_below,
    random_bits,
)
from repro.crypto.prng import Lcg

NONNEG = st.integers(min_value=0, max_value=1 << 300)
POSITIVE = st.integers(min_value=1, max_value=1 << 300)


@given(NONNEG)
def test_int_roundtrip(value):
    assert BigNum.from_int(value).to_int() == value


@given(st.binary(min_size=1, max_size=60))
def test_bytes_roundtrip(data):
    n = BigNum.from_bytes(data)
    assert n.to_int() == int.from_bytes(data, "big")
    assert n.to_bytes(len(data)) == data


def test_from_int_rejects_negative():
    with pytest.raises(BignumError):
        BigNum.from_int(-1)


def test_zero_properties():
    zero = BigNum.from_int(0)
    assert zero.is_zero()
    assert zero.bit_length() == 0
    assert zero.is_even()
    assert zero.to_bytes() == b"\x00"


@given(NONNEG, NONNEG)
def test_add(a, b):
    assert BigNum.from_int(a).add(BigNum.from_int(b)).to_int() == a + b


@given(NONNEG, NONNEG)
def test_sub(a, b):
    big, small = max(a, b), min(a, b)
    assert BigNum.from_int(big).sub(BigNum.from_int(small)).to_int() == big - small


def test_sub_underflow_raises():
    with pytest.raises(BignumError):
        BigNum.from_int(1).sub(BigNum.from_int(2))


@given(NONNEG, NONNEG)
def test_mul(a, b):
    assert BigNum.from_int(a).mul(BigNum.from_int(b)).to_int() == a * b


@given(
    st.integers(min_value=0, max_value=1 << 1200),
    st.integers(min_value=0, max_value=1 << 1200),
)
@settings(max_examples=20, deadline=None)
def test_mul_karatsuba_path(a, b):
    # Values above the Karatsuba cutoff (24 limbs = 384 bits).
    a |= 1 << 600
    b |= 1 << 600
    assert BigNum.from_int(a).mul(BigNum.from_int(b)).to_int() == a * b


@given(NONNEG, POSITIVE)
def test_divmod_matches_python(a, b):
    q, r = BigNum.from_int(a).divmod(BigNum.from_int(b))
    assert (q.to_int(), r.to_int()) == divmod(a, b)


@given(
    st.integers(min_value=0, max_value=1 << 200),
    st.integers(min_value=1, max_value=1 << 150),
)
@settings(max_examples=50, deadline=None)
def test_divmod_matches_binary_oracle(a, b):
    A, B = BigNum.from_int(a), BigNum.from_int(b)
    q1, r1 = A.divmod(B)
    q2, r2 = A.divmod_binary(B)
    assert q1 == q2
    assert r1 == r2


def test_divmod_by_zero():
    with pytest.raises(BignumError):
        BigNum.from_int(5).divmod(BigNum.from_int(0))
    with pytest.raises(BignumError):
        BigNum.from_int(5).divmod_binary(BigNum.from_int(0))


def test_divmod_edge_cases():
    # Dividend smaller than divisor; equal values; divisor one.
    q, r = BigNum.from_int(3).divmod(BigNum.from_int(7))
    assert (q.to_int(), r.to_int()) == (0, 3)
    q, r = BigNum.from_int(7).divmod(BigNum.from_int(7))
    assert (q.to_int(), r.to_int()) == (1, 0)
    q, r = BigNum.from_int(123456789).divmod(BigNum.from_int(1))
    assert (q.to_int(), r.to_int()) == (123456789, 0)


def test_divmod_addback_case():
    # Exercise the rare Knuth D6 add-back path: crafted so qhat overshoots.
    a = (1 << 128) - 1
    b = (1 << 64) + 1
    q, r = BigNum.from_int(a).divmod(BigNum.from_int(b))
    assert (q.to_int(), r.to_int()) == divmod(a, b)


@given(NONNEG, st.integers(min_value=0, max_value=200))
def test_shl_shr(a, n):
    assert BigNum.from_int(a).shl(n).to_int() == a << n
    assert BigNum.from_int(a).shr(n).to_int() == a >> n


@given(NONNEG, NONNEG)
def test_compare(a, b):
    cmp = BigNum.from_int(a).compare(BigNum.from_int(b))
    assert cmp == (a > b) - (a < b)


@given(
    st.integers(min_value=0, max_value=1 << 100),
    st.integers(min_value=0, max_value=1 << 40),
    st.integers(min_value=1, max_value=1 << 100),
)
@settings(max_examples=50, deadline=None)
def test_modexp(base, exp, mod):
    got = BigNum.from_int(base).modexp(BigNum.from_int(exp), BigNum.from_int(mod))
    assert got.to_int() == pow(base, exp, mod)


@given(st.integers(min_value=2, max_value=1 << 80), st.integers(min_value=0, max_value=1 << 80))
@settings(max_examples=50, deadline=None)
def test_modinv(m, a):
    import math

    if math.gcd(a, m) == 1:
        inv = BigNum.from_int(a).modinv(BigNum.from_int(m))
        assert (inv.to_int() * a) % m == 1 or m == 1
    else:
        with pytest.raises(BignumError):
            BigNum.from_int(a).modinv(BigNum.from_int(m))


@given(st.integers(min_value=0, max_value=1 << 60), st.integers(min_value=0, max_value=1 << 60))
def test_gcd(a, b):
    import math

    assert BigNum.from_int(a).gcd(BigNum.from_int(b)).to_int() == math.gcd(a, b)


def test_bit_access():
    n = BigNum.from_int(0b1011001)
    bits = [n.bit(i) for i in range(8)]
    assert bits == [1, 0, 0, 1, 1, 0, 1, 0]
    assert n.bit(1000) == 0


KNOWN_PRIMES = [2, 3, 5, 101, 257, 65537, (1 << 61) - 1, 2**89 - 1]
KNOWN_COMPOSITES = [0, 1, 4, 100, 65536, 561, 41041, 2**67 - 1]  # Carmichaels too


@pytest.mark.parametrize("p", KNOWN_PRIMES)
def test_is_probable_prime_on_primes(p):
    assert is_probable_prime(BigNum.from_int(p), Lcg(7))


@pytest.mark.parametrize("c", KNOWN_COMPOSITES)
def test_is_probable_prime_on_composites(c):
    assert not is_probable_prime(BigNum.from_int(c), Lcg(7))


def test_generate_prime_properties():
    rng = Lcg(1234)
    p = generate_prime(96, rng)
    assert p.bit_length() == 96
    assert is_probable_prime(p, rng)


def test_random_bits_exact_width():
    rng = Lcg(5)
    for bits in (1, 7, 16, 17, 100):
        n = random_bits(bits, rng)
        assert n.bit_length() == bits


def test_random_below_in_range():
    rng = Lcg(9)
    limit = BigNum.from_int(1000)
    for _ in range(50):
        assert random_below(limit, rng).to_int() < 1000


def test_repr_and_hash():
    n = BigNum.from_int(255)
    assert "0xff" in repr(n)
    assert hash(BigNum.from_int(10)) == hash(BigNum.from_int(10))
