"""Block-mode and padding tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.aes_ttable import AesTTable
from repro.crypto.modes import (
    PaddingError,
    cbc_decrypt,
    cbc_encrypt,
    ctr_keystream,
    ctr_xor,
    ecb_decrypt,
    ecb_encrypt,
    pkcs7_pad,
    pkcs7_unpad,
)
from repro.crypto.rijndael import Rijndael

KEY = bytes(range(16))
IV = bytes(range(16, 32))


@pytest.fixture(scope="module")
def cipher():
    return AesTTable(KEY)


@given(st.binary(max_size=100), st.sampled_from([8, 16, 24, 32]))
def test_pkcs7_roundtrip(data, block_size):
    padded = pkcs7_pad(data, block_size)
    assert len(padded) % block_size == 0
    assert len(padded) > len(data)
    assert pkcs7_unpad(padded, block_size) == data


def test_pkcs7_always_adds_padding():
    # A full block of data gets a whole extra block of padding.
    padded = pkcs7_pad(bytes(16), 16)
    assert len(padded) == 32
    assert padded[-1] == 16


def test_pkcs7_unpad_rejects_garbage():
    with pytest.raises(PaddingError):
        pkcs7_unpad(b"", 16)
    with pytest.raises(PaddingError):
        pkcs7_unpad(bytes(15), 16)
    with pytest.raises(PaddingError):
        pkcs7_unpad(bytes(16), 16)  # pad byte 0 invalid
    with pytest.raises(PaddingError):
        pkcs7_unpad(b"\x01" * 15 + b"\x11", 16)  # pad byte 17 > block
    with pytest.raises(PaddingError):
        pkcs7_unpad(b"\x00" * 14 + b"\x01\x02", 16)  # inconsistent bytes


def test_pkcs7_bad_block_size():
    with pytest.raises(ValueError):
        pkcs7_pad(b"x", 0)
    with pytest.raises(ValueError):
        pkcs7_pad(b"x", 256)


@given(data=st.binary(max_size=96))
@settings(max_examples=30, deadline=None)
def test_cbc_roundtrip_padded(data):
    cipher = AesTTable(KEY)
    padded = pkcs7_pad(data, 16)
    ct = cbc_encrypt(cipher, IV, padded)
    assert len(ct) == len(padded)
    assert pkcs7_unpad(cbc_decrypt(cipher, IV, ct), 16) == data


def test_cbc_chaining_differs_from_ecb(cipher):
    # Two identical plaintext blocks: ECB repeats, CBC does not.
    pt = bytes(16) * 2
    ecb = ecb_encrypt(cipher, pt)
    cbc = cbc_encrypt(cipher, IV, pt)
    assert ecb[:16] == ecb[16:]
    assert cbc[:16] != cbc[16:]


def test_cbc_iv_sensitivity(cipher):
    pt = pkcs7_pad(b"secret", 16)
    assert cbc_encrypt(cipher, IV, pt) != cbc_encrypt(cipher, bytes(16), pt)


def test_cbc_rejects_bad_iv(cipher):
    with pytest.raises(ValueError):
        cbc_encrypt(cipher, b"short", bytes(16))
    with pytest.raises(ValueError):
        cbc_decrypt(cipher, b"short", bytes(16))


def test_cbc_rejects_partial_blocks(cipher):
    with pytest.raises(ValueError):
        cbc_encrypt(cipher, IV, bytes(15))
    with pytest.raises(ValueError):
        cbc_decrypt(cipher, IV, bytes(17))


def test_ecb_known_answer(cipher):
    # ECB of one block must equal the raw block cipher.
    block = bytes(range(16))
    assert ecb_encrypt(cipher, block) == cipher.encrypt_block(block)
    assert ecb_decrypt(cipher, cipher.encrypt_block(block)) == block


@given(data=st.binary(max_size=200))
@settings(max_examples=30, deadline=None)
def test_ctr_roundtrip_any_length(data):
    cipher = AesTTable(KEY)
    assert ctr_xor(cipher, IV, ctr_xor(cipher, IV, data)) == data


def test_ctr_keystream_deterministic(cipher):
    assert ctr_keystream(cipher, IV, 100) == ctr_keystream(cipher, IV, 100)
    assert ctr_keystream(cipher, IV, 40) == ctr_keystream(cipher, IV, 100)[:40]


def test_ctr_counter_wraps(cipher):
    nonce = b"\xff" * 16
    stream = ctr_keystream(cipher, nonce, 32)
    expected = cipher.encrypt_block(b"\xff" * 16) + cipher.encrypt_block(bytes(16))
    assert stream == expected


def test_modes_work_with_reference_cipher():
    ref = Rijndael(KEY)
    pt = pkcs7_pad(b"interop", 16)
    assert cbc_decrypt(ref, IV, cbc_encrypt(ref, IV, pt)) == pt


def test_modes_work_with_large_blocks():
    big = Rijndael(KEY, block_bits=256)
    pt = pkcs7_pad(b"large-block rijndael", 32)
    assert pkcs7_unpad(cbc_decrypt(big, bytes(32), cbc_encrypt(big, bytes(32), pt)), 32) \
        == b"large-block rijndael"
