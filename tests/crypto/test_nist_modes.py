"""NIST SP 800-38A known-answer tests for CBC and CTR over AES-128."""

import pytest

from repro.crypto.aes_ttable import AesTTable
from repro.crypto.modes import cbc_decrypt, cbc_encrypt, ctr_xor
from repro.crypto.rijndael import Rijndael

# SP 800-38A F.2.1 (CBC-AES128) and F.5.1 (CTR-AES128) vectors.
KEY = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
PLAINTEXT = bytes.fromhex(
    "6bc1bee22e409f96e93d7e117393172a"
    "ae2d8a571e03ac9c9eb76fac45af8e51"
    "30c81c46a35ce411e5fbc1191a0a52ef"
    "f69f2445df4f9b17ad2b417be66c3710"
)

CBC_IV = bytes.fromhex("000102030405060708090a0b0c0d0e0f")
CBC_CIPHERTEXT = bytes.fromhex(
    "7649abac8119b246cee98e9b12e9197d"
    "5086cb9b507219ee95db113a917678b2"
    "73bed6b8e3c1743b7116e69e22229516"
    "3ff1caa1681fac09120eca307586e1a7"
)

CTR_COUNTER = bytes.fromhex("f0f1f2f3f4f5f6f7f8f9fafbfcfdfeff")
CTR_CIPHERTEXT = bytes.fromhex(
    "874d6191b620e3261bef6864990db6ce"
    "9806f66b7970fdff8617187bb9fffdff"
    "5ae4df3edbd5d35e5b4f09020db03eab"
    "1e031dda2fbe03d1792170a0f3009cee"
)


@pytest.mark.parametrize("cipher_cls", [AesTTable, Rijndael])
def test_cbc_encrypt_nist_f21(cipher_cls):
    cipher = cipher_cls(KEY)
    assert cbc_encrypt(cipher, CBC_IV, PLAINTEXT) == CBC_CIPHERTEXT


@pytest.mark.parametrize("cipher_cls", [AesTTable, Rijndael])
def test_cbc_decrypt_nist_f22(cipher_cls):
    cipher = cipher_cls(KEY)
    assert cbc_decrypt(cipher, CBC_IV, CBC_CIPHERTEXT) == PLAINTEXT


def test_ctr_nist_f51():
    cipher = AesTTable(KEY)
    assert ctr_xor(cipher, CTR_COUNTER, PLAINTEXT) == CTR_CIPHERTEXT


def test_ctr_nist_f51_decrypt():
    cipher = AesTTable(KEY)
    assert ctr_xor(cipher, CTR_COUNTER, CTR_CIPHERTEXT) == PLAINTEXT


def test_board_aes_matches_nist_cbc_first_block():
    """Close the loop: the emulated Rabbit's AES agrees with NIST too."""
    from repro.rabbit.board import Board
    from repro.rabbit.programs.aes_asm import AesAsm

    implementation = AesAsm(Board())
    implementation.set_key(KEY)
    first_input = bytes(a ^ b for a, b in zip(PLAINTEXT[:16], CBC_IV))
    ciphertext, _cycles = implementation.encrypt_block(first_input)
    assert ciphertext == CBC_CIPHERTEXT[:16]
