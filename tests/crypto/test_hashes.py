"""SHA-1 / MD5 / HMAC tests against RFC vectors, hashlib, and streaming
properties."""

import hashlib
import hmac as py_hmac

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.hmac import Hmac, constant_time_equal, hmac_md5, hmac_sha1
from repro.crypto.md5 import Md5, md5
from repro.crypto.sha1 import Sha1, sha1


def test_sha1_rfc3174_vectors():
    assert sha1(b"abc").hex() == "a9993e364706816aba3e25717850c26c9cd0d89d"
    assert (
        sha1(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq").hex()
        == "84983e441c3bd26ebaae4aa1f95129e5e54670f1"
    )


def test_sha1_empty():
    assert sha1(b"").hex() == "da39a3ee5e6b4b0d3255bfef95601890afd80709"


def test_md5_rfc1321_vectors():
    vectors = {
        b"": "d41d8cd98f00b204e9800998ecf8427e",
        b"a": "0cc175b9c0f1b6a831c399e269772661",
        b"abc": "900150983cd24fb0d6963f7d28e17f72",
        b"message digest": "f96b697d7cb7938d525a2f31aaf161d0",
        b"abcdefghijklmnopqrstuvwxyz": "c3fcd3d76192e4007dfb496cca67e13b",
    }
    for data, expected in vectors.items():
        assert md5(data).hex() == expected


@given(st.binary(max_size=500))
@settings(max_examples=100, deadline=None)
def test_sha1_matches_hashlib(data):
    assert sha1(data) == hashlib.sha1(data).digest()


@given(st.binary(max_size=500))
@settings(max_examples=100, deadline=None)
def test_md5_matches_hashlib(data):
    assert md5(data) == hashlib.md5(data).digest()


@given(st.lists(st.binary(max_size=100), max_size=10))
def test_sha1_streaming_equals_oneshot(chunks):
    h = Sha1()
    for chunk in chunks:
        h.update(chunk)
    assert h.digest() == sha1(b"".join(chunks))


@given(st.lists(st.binary(max_size=100), max_size=10))
def test_md5_streaming_equals_oneshot(chunks):
    h = Md5()
    for chunk in chunks:
        h.update(chunk)
    assert h.digest() == md5(b"".join(chunks))


def test_digest_does_not_consume_state():
    h = Sha1(b"hello")
    first = h.digest()
    assert h.digest() == first
    h.update(b" world")
    assert h.digest() == sha1(b"hello world")


def test_copy_is_independent():
    h = Md5(b"base")
    clone = h.copy()
    clone.update(b"more")
    assert h.digest() == md5(b"base")
    assert clone.digest() == md5(b"basemore")


@pytest.mark.parametrize("length", [55, 56, 57, 63, 64, 65, 119, 120, 128])
def test_padding_boundaries(length):
    # Lengths that straddle the 64-byte compression boundary.
    data = bytes(range(256))[:length] * 1
    data = (b"x" * length)
    assert sha1(data) == hashlib.sha1(data).digest()
    assert md5(data) == hashlib.md5(data).digest()


def test_hmac_rfc2202_sha1():
    assert (
        hmac_sha1(b"\x0b" * 20, b"Hi There").hex()
        == "b617318655057264e28bc0b6fb378c8ef146be00"
    )
    assert (
        hmac_sha1(b"Jefe", b"what do ya want for nothing?").hex()
        == "effcdf6ae5eb2fa2d27416d5f184df9c259a7c79"
    )


def test_hmac_rfc2202_md5():
    assert (
        hmac_md5(b"\x0b" * 16, b"Hi There").hex()
        == "9294727a3638bb1c13f48ef8158bfc9d"
    )


@given(key=st.binary(min_size=1, max_size=128), data=st.binary(max_size=300))
@settings(max_examples=50, deadline=None)
def test_hmac_matches_stdlib(key, data):
    assert hmac_sha1(key, data) == py_hmac.new(key, data, hashlib.sha1).digest()
    assert hmac_md5(key, data) == py_hmac.new(key, data, hashlib.md5).digest()


def test_hmac_long_key_is_hashed():
    key = b"k" * 200
    assert hmac_sha1(key, b"m") == py_hmac.new(key, b"m", hashlib.sha1).digest()


def test_hmac_streaming():
    h = Hmac(b"key")
    h.update(b"part one ")
    h.update(b"part two")
    assert h.digest() == hmac_sha1(b"key", b"part one part two")


def test_constant_time_equal():
    assert constant_time_equal(b"abc", b"abc")
    assert not constant_time_equal(b"abc", b"abd")
    assert not constant_time_equal(b"abc", b"abcd")
    assert constant_time_equal(b"", b"")
