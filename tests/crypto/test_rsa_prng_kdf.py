"""RSA, PRNG and KDF tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.kdf import derive_key_block, derive_master_secret, ssl3_prf
from repro.crypto.prng import CipherRng, Lcg
from repro.crypto.rsa import (
    RsaError,
    decrypt,
    encrypt,
    generate_keypair,
    sign_raw,
    verify_raw,
)
from repro.crypto.sha1 import sha1


@pytest.fixture(scope="module")
def keypair():
    # Deterministic seed keeps the suite reproducible; 256 bits keeps it fast.
    return generate_keypair(256, CipherRng(b"rsa-test-seed"))


class TestLcg:
    def test_deterministic(self):
        a, b = Lcg(42), Lcg(42)
        assert [a.rand() for _ in range(20)] == [b.rand() for _ in range(20)]

    def test_seed_changes_stream(self):
        assert [Lcg(1).rand() for _ in range(5)] != [Lcg(2).rand() for _ in range(5)]

    def test_reseed(self):
        rng = Lcg(1)
        first = [rng.rand() for _ in range(5)]
        rng.seed(1)
        assert [rng.rand() for _ in range(5)] == first

    def test_range(self):
        rng = Lcg(7)
        for _ in range(1000):
            assert 0 <= rng.rand() <= 0x7FFF

    def test_ansi_c_reference_values(self):
        # First outputs of the ANSI C reference rand() with seed 1.
        rng = Lcg(1)
        assert [rng.rand() for _ in range(3)] == [16838, 5758, 10113]

    def test_next_bytes_length(self):
        assert len(Lcg(3).next_bytes(17)) == 17

    def test_u16_covers_both_bytes(self):
        rng = Lcg(11)
        values = {rng.next_u16() for _ in range(200)}
        assert any(v > 0xFF for v in values)
        assert len(values) > 100


class TestCipherRng:
    def test_deterministic(self):
        assert CipherRng(b"s").next_bytes(64) == CipherRng(b"s").next_bytes(64)

    def test_seed_sensitivity(self):
        assert CipherRng(b"s1").next_bytes(32) != CipherRng(b"s2").next_bytes(32)

    def test_stream_continuation(self):
        rng = CipherRng(b"s")
        combined = rng.next_bytes(10) + rng.next_bytes(22)
        assert combined == CipherRng(b"s").next_bytes(32)

    def test_output_looks_uniform(self):
        data = CipherRng(b"uniformity").next_bytes(4096)
        # Chi-squared-free sanity check: every byte value appears.
        assert len(set(data)) == 256


class TestRsa:
    def test_roundtrip(self, keypair):
        rng = CipherRng(b"pad")
        ct = encrypt(keypair.public_key(), b"hello", rng)
        assert decrypt(keypair, ct) == b"hello"

    def test_ciphertext_length_is_modulus_size(self, keypair):
        rng = CipherRng(b"pad")
        ct = encrypt(keypair.public_key(), b"x", rng)
        assert len(ct) == keypair.modulus_bytes

    def test_randomized_padding(self, keypair):
        rng = CipherRng(b"pad")
        c1 = encrypt(keypair.public_key(), b"same", rng)
        c2 = encrypt(keypair.public_key(), b"same", rng)
        assert c1 != c2
        assert decrypt(keypair, c1) == decrypt(keypair, c2) == b"same"

    def test_message_too_long(self, keypair):
        rng = CipherRng(b"pad")
        limit = keypair.modulus_bytes - 11
        encrypt(keypair.public_key(), b"x" * limit, rng)  # fits
        with pytest.raises(RsaError):
            encrypt(keypair.public_key(), b"x" * (limit + 1), rng)

    def test_tampered_ciphertext_rejected(self, keypair):
        rng = CipherRng(b"pad")
        ct = bytearray(encrypt(keypair.public_key(), b"msg", rng))
        ct[0] ^= 0xFF
        # Either the padding check fires or the plaintext differs.
        try:
            assert decrypt(keypair, bytes(ct)) != b"msg"
        except RsaError:
            pass

    def test_wrong_length_ciphertext(self, keypair):
        with pytest.raises(RsaError):
            decrypt(keypair, b"short")

    def test_sign_verify(self, keypair):
        digest = sha1(b"document")
        sig = sign_raw(keypair, digest)
        assert verify_raw(keypair.public_key(), digest, sig)
        assert not verify_raw(keypair.public_key(), sha1(b"other"), sig)
        assert not verify_raw(keypair.public_key(), digest, b"\x00" * len(sig))

    def test_keypair_algebra(self, keypair):
        # d*e == 1 mod phi(n) implies m^(ed) == m mod n.
        from repro.crypto.bignum import BigNum

        m = BigNum.from_int(12345)
        c = m.modexp(keypair.e, keypair.n)
        assert c.modexp(keypair.d, keypair.n) == m

    def test_modulus_bits_exact(self, keypair):
        assert keypair.n.bit_length() == 256

    def test_too_small_modulus_rejected(self):
        with pytest.raises(RsaError):
            generate_keypair(64, CipherRng(b"s"))


class TestKdf:
    def test_prf_deterministic(self):
        assert ssl3_prf(b"s", b"r", 48) == ssl3_prf(b"s", b"r", 48)

    def test_prf_length(self):
        for n in (1, 16, 47, 48, 49, 100):
            assert len(ssl3_prf(b"secret", b"seed", n)) == n

    def test_prf_secret_and_seed_sensitivity(self):
        base = ssl3_prf(b"s", b"r", 32)
        assert ssl3_prf(b"S", b"r", 32) != base
        assert ssl3_prf(b"s", b"R", 32) != base

    def test_prf_prefix_property(self):
        assert ssl3_prf(b"s", b"r", 16) == ssl3_prf(b"s", b"r", 64)[:16]

    def test_prf_limit(self):
        with pytest.raises(ValueError):
            ssl3_prf(b"s", b"r", 16 * 27)

    def test_master_secret_is_48_bytes(self):
        ms = derive_master_secret(b"pre", b"c" * 16, b"s" * 16)
        assert len(ms) == 48

    def test_key_block_directional_asymmetry(self):
        # Client and server randoms swap order between master-secret and
        # key-block derivation, so the two differ even with equal inputs.
        ms = derive_master_secret(b"pre", b"r" * 16, b"r" * 16)
        kb = derive_key_block(ms, b"r" * 16, b"r" * 16, 48)
        assert kb != ms

    @given(n=st.integers(min_value=1, max_value=200))
    @settings(max_examples=20, deadline=None)
    def test_key_block_length(self, n):
        assert len(derive_key_block(b"m" * 48, b"c", b"s", n)) == n
