"""Unit and property tests for GF(2^8) arithmetic."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.crypto.gf import AES_POLY, INV_SBOX, RCON, SBOX, ginv, gmul, gpow, xtime

BYTES = st.integers(min_value=0, max_value=255)


def test_xtime_known_values():
    assert xtime(0x57) == 0xAE
    assert xtime(0xAE) == 0x47
    assert xtime(0x47) == 0x8E
    assert xtime(0x8E) == 0x07


def test_gmul_fips_example():
    # FIPS-197 section 4.2.1: {57} * {13} = {fe}
    assert gmul(0x57, 0x13) == 0xFE


def test_gmul_identity_and_zero():
    for a in range(256):
        assert gmul(a, 1) == a
        assert gmul(a, 0) == 0
        assert gmul(0, a) == 0


@given(BYTES, BYTES)
def test_gmul_commutative(a, b):
    assert gmul(a, b) == gmul(b, a)


@given(BYTES, BYTES, BYTES)
def test_gmul_associative(a, b, c):
    assert gmul(gmul(a, b), c) == gmul(a, gmul(b, c))


@given(BYTES, BYTES, BYTES)
def test_gmul_distributes_over_xor(a, b, c):
    assert gmul(a, b ^ c) == gmul(a, b) ^ gmul(a, c)


@given(BYTES)
def test_xtime_is_gmul_by_two(a):
    assert xtime(a) == gmul(a, 2)


@given(st.integers(min_value=1, max_value=255))
def test_ginv_is_inverse(a):
    assert gmul(a, ginv(a)) == 1


def test_ginv_zero_convention():
    assert ginv(0) == 0


@given(BYTES, st.integers(min_value=0, max_value=20))
def test_gpow_matches_repeated_mul(a, n):
    expected = 1
    for _ in range(n):
        expected = gmul(expected, a)
    assert gpow(a, n) == expected


def test_sbox_known_entries():
    assert SBOX[0x00] == 0x63
    assert SBOX[0x01] == 0x7C
    assert SBOX[0x53] == 0xED
    assert SBOX[0xFF] == 0x16


def test_sbox_is_permutation():
    assert sorted(SBOX) == list(range(256))
    assert sorted(INV_SBOX) == list(range(256))


def test_inv_sbox_inverts_sbox():
    for i in range(256):
        assert INV_SBOX[SBOX[i]] == i


def test_sbox_has_no_fixed_points():
    # Design property of the AES S-box.
    for i in range(256):
        assert SBOX[i] != i
        assert SBOX[i] != i ^ 0xFF


def test_rcon_values():
    assert RCON[1] == 0x01
    assert RCON[2] == 0x02
    assert RCON[8] == 0x80
    assert RCON[9] == 0x1B
    assert RCON[10] == 0x36


def test_poly_constant():
    assert AES_POLY == 0x11B
