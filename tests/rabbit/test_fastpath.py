"""Fast-core equivalence: block-cached dispatch vs the single-step core.

The predecoded basic-block cache (``repro.rabbit.fastcore``) must be
observationally identical to the per-step fetch/decode path: same final
registers, same memory image, same cycle/instruction/read/write/wait
counters, on every workload.  These tests run the same firmware under
both cores and diff the complete machine state, plus the cases that can
only go wrong in a block cache: self-modifying code, reprogramming
flash, and the profiler fallback.

The paper's Figure 3 redirector exists in this repo as Dynamic C
*source* (``repro.rabbit.programs.redirector_dc``, parsed by dclint,
never lowered to machine code), so the interrupt-driven firmware that
stands in for it on the emulated board is the Section 5.1 serial debug
monitor -- the one real firmware with an ISR, I/O, and a main loop.
"""

from __future__ import annotations

import pytest

from repro.rabbit.asm import assemble
from repro.rabbit.board import Board
from repro.rabbit.cpu import Cpu, CpuError
from repro.rabbit.programs.aes_asm import AesAsm
from repro.rabbit.programs.serial_debug import SerialDebugMonitor

KEY = bytes.fromhex("000102030405060708090a0b0c0d0e0f")
BLOCK = bytes.fromhex("00112233445566778899aabbccddeeff")


def _machine_state(board: Board) -> dict:
    """The complete observable machine state, for exact comparison."""
    cpu, memory = board.cpu, board.memory
    return {
        "regs": (cpu.a, cpu.f, cpu.b, cpu.c, cpu.d, cpu.e, cpu.h, cpu.l,
                 cpu.a2, cpu.f2, cpu.b2, cpu.c2, cpu.d2, cpu.e2,
                 cpu.h2, cpu.l2, cpu.ix, cpu.iy, cpu.sp, cpu.pc,
                 cpu.i, cpu.r, cpu.iff1, cpu.iff2, cpu.im, cpu.halted),
        "cycles": cpu.cycles,
        "instructions": cpu.instructions,
        "reads": memory.reads,
        "writes": memory.writes,
        "wait_cycles": memory.wait_cycles,
        "xpc": memory.xpc,
        "flash": bytes(memory.flash),
        "sram": bytes(memory.sram),
    }


def _aes_workload(board: Board) -> list:
    """Key schedule + encrypt + decrypt on the emulated board."""
    aes = AesAsm(board)
    outputs = []
    aes.set_key(KEY)
    outputs.append(aes.encrypt_block(BLOCK))
    outputs.append(aes.decrypt_block(outputs[0][0]))
    return outputs


def _serial_workload(board: Board) -> list:
    """Boot the serial monitor and drive its ISR (Section 5.1)."""
    monitor = SerialDebugMonitor(board)
    monitor.boot()
    outputs = []
    for command in (b"s", b"r", b"s", b"R", b"s"):
        outputs.append(monitor.send_command(command))
    outputs.append((monitor.counter, monitor.saved_counter))
    outputs.append(monitor.interrupt_latency())
    return outputs


@pytest.mark.parametrize("workload", [_aes_workload, _serial_workload],
                         ids=["aes_asm", "serial_monitor"])
def test_cores_observationally_identical(workload):
    fast_board, slow_board = Board(), Board()
    slow_board.cpu.use_fast_core = False
    fast_outputs = workload(fast_board)
    slow_outputs = workload(slow_board)
    assert fast_outputs == slow_outputs
    assert _machine_state(fast_board) == _machine_state(slow_board)
    # The fast run must actually have taken the fast path.
    cache = fast_board.cpu._cache
    assert cache is not None and cache.executed_blocks > 0
    assert slow_board.cpu._cache is None


# Runs from SRAM (flash is write-protected): the store patches the
# operand of an instruction *ahead* of it in the same straight-line
# run, so a block cache that misses the write executes the stale
# `ld b, 0x11` image.  The loop runs twice so the patched copy is also
# re-dispatched from a rebuilt block.
SELF_MODIFYING = """
entry:  ld   c, 2           ; two passes
        ld   a, 0x22        ; patch operand
loop:   ld   (patch + 1), a ; self-modifying store, same 256-byte page
patch:  ld   b, 0x11        ; operand is overwritten to 0x22
        ld   a, b
        dec  c
        jp   nz, loop
        ld   (0xC050), a    ; park the result for the harness
        halt
"""

STUB_BASE = 0xC100  # logical; SRAM physical offset 0x100


def _load_stub(board: Board):
    assembly = assemble(SELF_MODIFYING, origin=STUB_BASE)
    board.memory.load_sram(assembly.code, STUB_BASE - 0xC000)
    return assembly


def test_self_modifying_code_invalidates_blocks():
    fast_board, slow_board = Board(), Board()
    slow_board.cpu.use_fast_core = False
    for board in (fast_board, slow_board):
        assembly = _load_stub(board)
        with pytest.raises(CpuError, match="HALT"):
            board.cpu.call_subroutine(assembly.symbols["entry"],
                                      max_instructions=200)
    assert fast_board.memory.sram[0x50] == 0x22  # patched value won
    assert _machine_state(fast_board) == _machine_state(slow_board)
    cache = fast_board.cpu._cache
    assert cache.executed_blocks > 0
    # The store landed on a watched code page and dropped its blocks.
    assert cache.decoded_blocks > len(cache.blocks)


def test_reloading_memory_invalidates_everything():
    board = Board()
    aes = AesAsm(board)
    aes.set_key(KEY)
    aes.encrypt_block(BLOCK)
    cache = board.cpu._cache
    assert cache.blocks
    assembly = _load_stub(board)  # load_sram flushes the block cache
    assert not cache.blocks
    with pytest.raises(CpuError, match="HALT"):
        board.cpu.call_subroutine(assembly.symbols["entry"],
                                  max_instructions=200)
    assert board.memory.sram[0x50] == 0x22


def test_run_cycles_budget_identical():
    fast_board, slow_board = Board(), Board()
    slow_board.cpu.use_fast_core = False
    for board in (fast_board, slow_board):
        monitor = SerialDebugMonitor(board)
        monitor.boot(cycles=1234)
    assert _machine_state(fast_board) == _machine_state(slow_board)


def test_instruction_budget_exhaustion_identical():
    errors = []
    for fast in (True, False):
        board = Board()
        board.cpu.use_fast_core = fast
        assembly = _load_stub(board)
        with pytest.raises(CpuError) as excinfo:
            board.cpu.call_subroutine(assembly.symbols["entry"],
                                      max_instructions=5)
        errors.append(str(excinfo.value))
        assert board.cpu.instructions == 5
    assert errors[0] == errors[1]


def test_profiler_install_falls_back_to_step_path():
    from repro.obs import Obs
    from repro.obs.profile import CycleProfiler

    board = Board()
    aes = AesAsm(board)
    aes.set_key(KEY)
    baseline_blocks = board.cpu._cache.executed_blocks
    profiler = CycleProfiler(
        board.cpu, {"aes": 0x0000}, tracer=Obs().tracer
    )
    with profiler:
        assert not board.cpu._fast_eligible()
        aes.encrypt_block(BLOCK)
        # Instrumented run: every instruction went through the profiled
        # step, none through the block dispatcher.
        assert board.cpu._cache.executed_blocks == baseline_blocks
        assert profiler.total_cycles > 0
    # Uninstall restores the fast path.
    assert board.cpu._fast_eligible()
    aes.encrypt_block(BLOCK)
    assert board.cpu._cache.executed_blocks > baseline_blocks
