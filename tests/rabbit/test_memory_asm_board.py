"""Memory/MMU, assembler, serial ports, watchdog, and board tests."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.rabbit.asm import AsmError, assemble
from repro.rabbit.board import Board, CLOCK_HZ
from repro.rabbit.memory import (
    DATA_BASE,
    FLASH_SIZE,
    MemoryError_,
    RabbitMemory,
    ROOT_TOP,
    SRAM_BASE,
    WINDOW_BASE,
)
from repro.rabbit.ports import IoBus, SADR, SerialPort, Watchdog


class TestMmu:
    def test_root_maps_to_flash(self):
        memory = RabbitMemory()
        assert memory.translate(0x0000) == 0x00000
        assert memory.translate(0x1234) == 0x01234
        assert memory.translate(ROOT_TOP - 1) == ROOT_TOP - 1

    def test_data_segment_maps_to_sram(self):
        memory = RabbitMemory()
        assert memory.translate(DATA_BASE) == SRAM_BASE
        assert memory.translate(0xD123) == SRAM_BASE + 0xD123 - DATA_BASE

    def test_window_follows_xpc(self):
        memory = RabbitMemory()
        memory.xpc = 0x85
        assert memory.translate(WINDOW_BASE) == 0x85000
        assert memory.translate(0xF000) == 0x86000
        memory.xpc = 0x90
        assert memory.translate(WINDOW_BASE + 0x10) == 0x90010

    def test_window_for_inverse(self):
        memory = RabbitMemory()
        xpc, logical = memory.window_for(0x92ABC)
        memory.xpc = xpc
        assert memory.translate(logical) == 0x92ABC

    @given(st.integers(min_value=0, max_value=0xFFFF),
           st.integers(min_value=0x80, max_value=0x9F))
    def test_translation_total(self, logical, xpc):
        memory = RabbitMemory()
        memory.xpc = xpc
        physical = memory.translate(logical)
        assert 0 <= physical < (1 << 20)

    def test_flash_write_protected(self):
        memory = RabbitMemory()
        with pytest.raises(MemoryError_):
            memory.write8(0x1000, 0xAA)
        memory.flash_writable = True
        memory.write8(0x1000, 0xAA)
        assert memory.read8(0x1000) == 0xAA

    def test_sram_read_write(self):
        memory = RabbitMemory()
        memory.write8(0xC123, 0x5A)
        assert memory.read8(0xC123) == 0x5A
        assert memory.sram[0xC123 - DATA_BASE] == 0x5A

    def test_wait_state_accounting(self):
        memory = RabbitMemory(flash_wait_states=3, sram_wait_states=1)
        memory.read8(0x0000)    # flash
        assert memory.wait_cycles == 3
        memory.read8(0xC000)    # sram
        assert memory.wait_cycles == 4

    def test_unpopulated_strict(self):
        memory = RabbitMemory()
        memory.xpc = 0xF0  # points past SRAM
        with pytest.raises(MemoryError_):
            memory.read8(WINDOW_BASE)
        relaxed = RabbitMemory(strict=False)
        relaxed.xpc = 0xF0
        assert relaxed.read8(WINDOW_BASE) == 0xFF

    def test_load_flash_bounds(self):
        memory = RabbitMemory()
        with pytest.raises(MemoryError_):
            memory.load_flash(b"x", offset=FLASH_SIZE)

    def test_dump_and_poke(self):
        memory = RabbitMemory()
        memory.poke(0xC100, b"hello")
        assert memory.dump(0xC100, 5) == b"hello"


class TestAssembler:
    def test_labels_and_forward_references(self):
        assembly = assemble("""
            org 0
            jp end
            db 1, 2, 3
        end:
            halt
        """)
        assert assembly.code[0] == 0xC3  # JP nn
        target = assembly.symbol("end")
        assert assembly.code[1] | (assembly.code[2] << 8) == target

    def test_equ_and_expressions(self):
        assembly = assemble("""
            BASE equ 0x1000
            org 0
            ld hl, BASE + 4 * 2
            ld a, (BASE >> 8) & 0xFF
            halt
        """)
        assert assembly.code[1] | (assembly.code[2] << 8) == 0x1008
        assert assembly.code[4] == 0x10

    def test_db_strings_and_dw(self):
        assembly = assemble("""
            org 0
            db "AB", 0x43, 'D'
            dw 0x1234
            ds 3, 0xEE
        """)
        assert assembly.code[:4] == b"ABCD"
        assert assembly.code[4:6] == b"\x34\x12"
        assert assembly.code[6:9] == b"\xee\xee\xee"

    def test_org_pads(self):
        assembly = assemble("""
            org 0
            nop
            org 0x10
            halt
        """)
        assert len(assembly.code) == 0x11
        assert assembly.code[0x10] == 0x76

    def test_org_backwards_rejected(self):
        with pytest.raises(AsmError):
            assemble("org 0\nnop\nnop\norg 1\nnop\n")

    def test_duplicate_label_rejected(self):
        with pytest.raises(AsmError):
            assemble("a:\nnop\na:\nnop\n")

    def test_undefined_symbol_rejected(self):
        with pytest.raises(AsmError):
            assemble("ld hl, nowhere\n")

    def test_unknown_mnemonic(self):
        with pytest.raises(AsmError):
            assemble("frobnicate a, b\n")

    def test_jr_out_of_range(self):
        source = "org 0\njr far\n" + "nop\n" * 200 + "far:\nnop\n"
        with pytest.raises(AsmError, match="out of range"):
            assemble(source)

    def test_location_counter_dollar(self):
        assembly = assemble("""
            org 0x10
            here: dw $
        """)
        assert assembly.code[0x10] | (assembly.code[0x11] << 8) == 0x10

    def test_comments_and_strings(self):
        assembly = assemble("""
            org 0
            db "a;b"     ; the semicolon in the string survives
            nop          ; this one is a comment
        """)
        assert assembly.code[:3] == b"a;b"
        assert assembly.code[3] == 0x00

    def test_known_encodings(self):
        # Spot-check opcodes against the Z80 reference.
        cases = {
            "nop": [0x00],
            "ld a, 0x12": [0x3E, 0x12],
            "ld bc, 0x1234": [0x01, 0x34, 0x12],
            "add hl, de": [0x19],
            "jp 0x5678": [0xC3, 0x78, 0x56],
            "call 0x1000": [0xCD, 0x00, 0x10],
            "ret": [0xC9],
            "push af": [0xF5],
            "pop iy": [0xFD, 0xE1],
            "ldir": [0xED, 0xB0],
            "rlc b": [0xCB, 0x00],
            "bit 7, a": [0xCB, 0x7F],
            "out (0x40), a": [0xD3, 0x40],
            "in a, (0x41)": [0xDB, 0x41],
            "ex de, hl": [0xEB],
            "ld xpc, a": [0xED, 0x67],
            "ld a, xpc": [0xED, 0x77],
            "sbc hl, bc": [0xED, 0x42],
            "ld (ix+2), 7": [0xDD, 0x36, 0x02, 0x07],
        }
        for source, expected in cases.items():
            assert list(assemble(source).code) == expected, source

    def test_rrd_refused(self):
        # ED 67 is the Rabbit XPC extension on this core.
        with pytest.raises(AsmError):
            assemble("rrd\n")


class TestSerialAndWatchdog:
    def test_serial_tx_rx(self):
        bus = IoBus()
        port = SerialPort(bus)
        port.inject(b"hi")
        assert bus.read_port(SADR + 1) & 0x80  # rx ready
        assert bus.read_port(SADR) == ord("h")
        assert bus.read_port(SADR) == ord("i")
        assert not bus.read_port(SADR + 1) & 0x80
        bus.write_port(SADR, ord("X"))
        assert port.transmitted() == b"X"

    def test_serial_overrun(self):
        bus = IoBus()
        port = SerialPort(bus)
        port.inject(b"x" * 100)
        assert port.rx_overruns == 100 - 64

    def test_serial_interrupt_callback(self):
        bus = IoBus()
        port = SerialPort(bus)
        fired = []
        port.interrupt_callback = lambda: fired.append(1)
        port.inject(b"a")          # interrupts not enabled yet
        bus.write_port(SADR + 2, 0x01)
        port.inject(b"b")
        assert fired == [1]

    def test_unclaimed_ports(self):
        bus = IoBus()
        assert bus.read_port(0x99) == 0xFF
        bus.write_port(0x99, 1)
        assert bus.unclaimed_reads == 1
        assert bus.unclaimed_writes == 1

    def test_watchdog_kick_and_expiry(self):
        bus = IoBus()
        watchdog = Watchdog(bus, budget_cycles=1000)
        assert not watchdog.check(500)
        bus.write_port(0x08, 0x5A)
        assert watchdog.kicks == 1
        assert not watchdog.check(1400)
        assert watchdog.check(5000)
        assert watchdog.expired


class TestBoard:
    def test_program_and_run(self):
        board = Board()
        board.program(assemble("org 0\nld a, 7\nld (0xC000), a\nhalt\n").code)
        board.run()
        assert board.memory.read8(0xC000) == 7
        assert board.cpu.halted

    def test_call_interface(self):
        assembly = assemble("""
            org 0
            halt
        fn:
            ld hl, 0xBEEF
            ret
        """)
        board = Board()
        board.program(assembly.code)
        cycles = board.call(assembly.symbol("fn"))
        assert board.cpu.hl == 0xBEEF
        assert cycles > 0

    def test_elapsed_seconds(self):
        board = Board()
        board.program(assemble("org 0\nhalt\n").code)
        board.run()
        assert board.elapsed_seconds == board.cpu.cycles / CLOCK_HZ

    def test_vector_validation(self):
        board = Board()
        with pytest.raises(ValueError):
            board.set_vect_extern2000(5, 0x100)

    def test_run_budget(self):
        from repro.rabbit.cpu import CpuError

        board = Board()
        board.program(assemble("org 0\nspin: jp spin\n").code)
        with pytest.raises(CpuError):
            board.run(max_instructions=100)
