"""Disassembler tests, including assemble/disassemble round trips."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rabbit.asm import assemble
from repro.rabbit.asm.disasm import disassemble, disassemble_one

#: Instruction source lines used for round-trip testing (one per line,
#: address-free so reassembly is position-independent).
ROUND_TRIP_LINES = [
    "nop", "halt", "di", "ei", "exx", "daa", "cpl", "scf", "ccf",
    "rlca", "rrca", "rla", "rra", "ret", "neg", "reti", "ldir", "lddr",
    "cpir", "rld",
    "ld   a, 0x12", "ld   b, 0x00", "ld   l, 0xFF",
    "ld   bc, 0x1234", "ld   de, 0x0001", "ld   hl, 0xFFFF",
    "ld   sp, 0xDFF0", "ld   sp, hl",
    "ld   a, (bc)", "ld   (de), a", "ld   a, (0xC000)",
    "ld   (0xC000), a", "ld   (0xC000), hl", "ld   hl, (0xC000)",
    "ld   (0xC000), bc", "ld   de, (0xC000)",
    "ld   b, c", "ld   (hl), a", "ld   e, (hl)", "ld   (hl), 0x7F",
    "add  a, b", "adc  a, 0x10", "sub  (hl)", "sbc  a, c",
    "and  0x0F", "xor  a", "or   (hl)", "cp   0x30",
    "add  hl, de", "adc  hl, bc", "sbc  hl, sp",
    "inc  a", "dec  (hl)", "inc  de", "dec  sp",
    "rlc  b", "rrc  c", "rl   d", "rr   e", "sla  h", "sra  l",
    "srl  a", "rlc  (hl)",
    "bit  0, a", "bit  7, (hl)", "set  3, b", "res  5, (hl)",
    "jp   0x1234", "jp   nz, 0x1234", "jp   (hl)",
    "call 0x1234", "call z, 0x1234", "ret  nc", "rst  0x28",
    "push bc", "push af", "pop  de", "pop  af",
    "ex   de, hl", "ex   (sp), hl", "ex   af, af'",
    "in   a, (0x40)", "out  (0x41), a", "in   b, (c)", "out  (c), d",
    "im   1",
    "ld   xpc, a", "ld   a, xpc",
    "ld   ix, 0x1000", "ld   iy, 0x2000", "push ix", "pop  iy",
    "ld   (ix+5), a", "ld   b, (iy-3)", "ld   (ix+0), 0x42",
    "add  ix, de", "inc  (ix+1)", "dec  (iy-1)",
    "add  a, (ix+2)", "xor  (iy+7)",
    "bit  2, (ix+4)", "set  7, (iy-8)", "rlc  (ix+1)",
    "jp   (ix)", "ld   sp, ix", "ex   (sp), iy",
]


@pytest.mark.parametrize("line", ROUND_TRIP_LINES)
def test_assemble_disassemble_fixed_point(line):
    code = assemble(line).code
    instructions = disassemble(code)
    assert len(instructions) == 1, (line, instructions)
    recoded = assemble(instructions[0].text).code
    assert recoded == code, (line, instructions[0].text)


def test_relative_jumps_decode_to_targets():
    assembly = assemble("""
        org 0
        jr   next
        nop
    next:
        djnz next
        jr   c, next
    """)
    instructions = disassemble(assembly.code)
    texts = [i.text for i in instructions]
    assert texts[0] == "jr   0x0003"
    assert texts[2] == "djnz 0x0003"
    assert texts[3] == "jr   c, 0x0003"


def test_stream_decoding_lengths():
    assembly = assemble("""
        org 0
        ld   a, 1
        ld   bc, 0x1234
        ldir
        halt
    """)
    instructions = disassemble(assembly.code)
    assert [i.length for i in instructions] == [2, 3, 2, 1]
    assert instructions[-1].address == 2 + 3 + 2


def test_origin_offsets_addresses():
    code = assemble("nop\nnop\n").code
    instructions = disassemble(code, origin=0x100)
    assert [i.address for i in instructions] == [0x100, 0x101]


def test_unknown_ed_decodes_as_db():
    instructions = disassemble(bytes([0xED, 0x00]))
    assert instructions[0].text.startswith("db")


def test_truncated_tail_is_db():
    # A lone 0xCD (CALL) with no operand bytes.
    instructions = disassemble(bytes([0xCD]))
    assert instructions[0].text.startswith("db")
    assert instructions[0].length == 1


def test_str_rendering():
    instruction = disassemble_one(assemble("ld a, 0x42").code)
    text = str(instruction)
    assert "3e 42" in text
    assert "ld   a, 0x42" in text


@given(data=st.binary(min_size=1, max_size=64))
@settings(max_examples=100, deadline=None)
def test_disassembler_total_on_arbitrary_bytes(data):
    # Any byte soup decodes without raising and consumes every byte.
    instructions = disassemble(data)
    assert sum(i.length for i in instructions) == len(data)


def test_count_limit():
    code = assemble("nop\n" * 10).code
    assert len(disassemble(code, count=3)) == 3


def test_aes_asm_disassembles_cleanly():
    # The hand-written AES image must contain no undecodable bytes in
    # its code section.
    from repro.rabbit.programs.aes_asm import generate_source

    assembly = assemble(generate_source())
    code_end = assembly.symbol("sbox_flash")
    instructions = disassemble(assembly.code[:code_end])
    bad = [i for i in instructions if i.text.startswith("db")]
    assert not bad
