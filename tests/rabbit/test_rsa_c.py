"""The Dynamic C subset bignum modexp on the board."""

import pytest

from repro.rabbit.board import Board
from repro.rabbit.programs.rsa_c import generate_source, RsaC


@pytest.fixture(scope="module")
def rsa16():
    return RsaC(Board(), n_bytes=2)


class TestModexp:
    @pytest.mark.parametrize("base,exp,mod", [
        (2, 10, 1000),
        (0x1234, 3, 0xFFF1),
        (1, 0xFFFF, 0xFFF1),
        (0xFFF0, 0xFFFF, 0xFFF1),
        (5, 0, 97),            # exponent zero -> 1
        (0, 5, 97),            # base zero -> 0
    ])
    def test_matches_python_pow(self, rsa16, base, exp, mod):
        result, cycles = rsa16.modexp(base % mod, exp, mod)
        assert result == pow(base % mod, exp, mod)
        assert cycles > 0

    def test_range_validation(self, rsa16):
        with pytest.raises(ValueError):
            rsa16.modexp(1, 1, 1 << 16)   # modulus too wide
        with pytest.raises(ValueError):
            rsa16.modexp(100, 1, 50)      # base not reduced

    def test_generate_source_width_validation(self):
        with pytest.raises(ValueError):
            generate_source(1)
        with pytest.raises(ValueError):
            generate_source(64)

    def test_cycles_grow_with_width(self, rsa16):
        rsa24 = RsaC(Board(), n_bytes=3)
        _, c16 = rsa16.modexp(0x1234, 0xFFF1, 0xFFF1 + 0x0A)
        _, c24 = rsa24.modexp(0x1234, 0xFFFFF1, 0xFFFFFB)
        assert c24 > 2 * c16
