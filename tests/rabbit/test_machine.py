"""Snapshot/fork equivalence: forked machines vs freshly booted ones.

The O(1) snapshot/fork layer (``repro.rabbit.machine``) promises that a
machine stamped out of a warm template is byte-for-byte the machine a
cold boot would have produced, that sibling forks never share writes
(bank copy-on-write), and that restoring over a live board drops its
block cache -- including blocks already promoted to the translated
tier.  These tests diff the complete machine state the same way the
fast-core equivalence suite does.
"""

from __future__ import annotations

import pytest

from repro.rabbit import machine
from repro.rabbit.board import Board
from repro.rabbit.cpu import CpuError
from repro.rabbit.fastcore import BlockCache
from repro.rabbit.programs.serial_debug import SerialDebugMonitor
from tests.rabbit.test_fastpath import _load_stub, _machine_state

BOOT_CYCLES = 2000


def _peripheral_state(board: Board) -> dict:
    """Serial/watchdog/io state, beyond the CPU+memory core diff."""
    return {
        "a_rx": tuple(board.serial_a.rx_queue),
        "a_tx": bytes(board.serial_a.tx_log),
        "a_irq": board.serial_a.rx_interrupt_enabled,
        "a_overruns": board.serial_a.rx_overruns,
        "b_rx": tuple(board.serial_b.rx_queue),
        "b_tx": bytes(board.serial_b.tx_log),
        "wd_kicks": board.watchdog.kicks,
        "wd_expired": board.watchdog.expired,
        "io_unclaimed": (board.io.unclaimed_reads, board.io.unclaimed_writes),
        "int_pending": tuple(board.cpu._int_pending),
    }


def _fresh_booted(cycles: int = BOOT_CYCLES) -> Board:
    board = Board()
    SerialDebugMonitor(board).boot(cycles)
    return board


def _drive(board: Board, command: bytes, cycles: int = 2000) -> bytes:
    board.serial_a.clear_tx()
    board.serial_a.inject(command)
    board.run_cycles(cycles)
    return board.serial_a.transmitted()


def test_fork_matches_fresh_boot_exactly():
    fresh = _fresh_booted()
    forked = machine.fork_warm_monitor(BOOT_CYCLES)
    assert _machine_state(forked) == _machine_state(fresh)
    assert _peripheral_state(forked) == _peripheral_state(fresh)


def test_fork_then_run_matches_fresh_boot_then_run():
    fresh = _fresh_booted()
    forked = machine.fork_warm_monitor(BOOT_CYCLES)
    assert _drive(forked, b"s") == _drive(fresh, b"s")
    assert _machine_state(forked) == _machine_state(fresh)


def test_sibling_forks_do_not_share_writes():
    snap = machine.warm_monitor_snapshot(BOOT_CYCLES)
    template_sram = bytes(snap.sram)
    left = machine.fork(snap)
    right = machine.fork(snap)
    # Drive only the left fork: its main loop bumps the SRAM work
    # counter, so the bank materializes (copy-on-write) on first write.
    _drive(left, b"s", cycles=6000)
    assert left.memory.sram is not snap.sram
    assert _machine_state(left) != _machine_state(right)
    # The untouched sibling still aliases the frozen template bank and
    # is indistinguishable from a brand-new fork.
    assert right.memory.sram is snap.sram
    assert _machine_state(right) == _machine_state(machine.fork(snap))
    # Nothing leaked into the template.
    assert bytes(snap.sram) == template_sram


def test_divergent_forks_answer_independently():
    snap = machine.warm_monitor_snapshot(BOOT_CYCLES)
    slow_start = machine.fork(snap)
    head_start = machine.fork(snap)
    head_start.run_cycles(20_000)  # let its work counter pull ahead
    slow_reply = _drive(slow_start, b"s")
    fast_reply = _drive(head_start, b"s")
    assert slow_reply[:1] == fast_reply[:1] == b"S"
    slow_count = slow_reply[1] | (slow_reply[2] << 8)
    fast_count = fast_reply[1] | (fast_reply[2] << 8)
    assert fast_count > slow_count


def test_restore_then_run_parity_with_step_core():
    snap = machine.warm_monitor_snapshot(BOOT_CYCLES)
    fast = machine.fork(snap)
    slow = machine.fork(snap)
    slow.cpu.use_fast_core = False
    for command in (b"s", b"r", b"s"):
        assert _drive(fast, command) == _drive(slow, command)
    assert _machine_state(fast) == _machine_state(slow)
    assert _peripheral_state(fast) == _peripheral_state(slow)
    cache = fast.cpu._cache
    assert cache is not None and cache.executed_blocks > 0
    assert slow.cpu._cache is None


def test_restore_in_place_drops_block_cache():
    snap = machine.warm_monitor_snapshot(BOOT_CYCLES)
    board = machine.fork(snap)
    _drive(board, b"s")
    cache = board.cpu._cache
    assert cache.blocks
    restored = machine.restore(snap, board)
    assert restored is board
    assert not cache.blocks
    assert cache.invalidated_restore == 1
    # The restored machine behaves exactly like a pristine fork.
    assert _drive(board, b"s") == _drive(machine.fork(snap), b"s")


def test_smc_invalidation_fires_in_translated_tier(monkeypatch):
    # Promote every block on first execution so the self-modifying
    # store lands while the translated code object is live.
    monkeypatch.setattr(BlockCache, "translate_threshold", 1)
    fast_board, slow_board = Board(), Board()
    slow_board.cpu.use_fast_core = False
    for board in (fast_board, slow_board):
        assembly = _load_stub(board)
        with pytest.raises(CpuError, match="HALT"):
            board.cpu.call_subroutine(assembly.symbols["entry"],
                                      max_instructions=200)
    assert fast_board.memory.sram[0x50] == 0x22  # patched value won
    assert _machine_state(fast_board) == _machine_state(slow_board)
    cache = fast_board.cpu._cache
    assert cache.translated_blocks > 0
    assert cache.translated_execs > 0
    assert cache.invalidated_smc > 0


def test_translated_tier_restore_parity(monkeypatch):
    # A machine snapshotted mid-flight -- after translated blocks have
    # already run -- must replay identically to the single-step core
    # from the same snapshot.
    monkeypatch.setattr(BlockCache, "translate_threshold", 1)
    origin = Board()
    assembly = _load_stub(origin)
    with pytest.raises(CpuError, match="did not return"):
        origin.cpu.call_subroutine(assembly.symbols["entry"],
                                   max_instructions=10)
    cache = origin.cpu._cache
    assert cache.translated_execs > 0
    mid = machine.snapshot(origin, firmware="mid-flight")
    fast = machine.fork(mid)
    slow = machine.fork(mid)
    slow.cpu.use_fast_core = False
    for board in (fast, slow):
        board.cpu.run(max_instructions=200)  # returns at HALT
        assert board.cpu.halted
    assert fast.memory.sram[0x50] == 0x22  # patched value won
    assert _machine_state(fast) == _machine_state(slow)
