"""CPU flag edge cases: 16-bit overflow, DAA after SUB, block-op flags,
HALT wake-up on interrupt."""

import pytest

from repro.rabbit.asm import assemble
from repro.rabbit.board import Board
from repro.rabbit.cpu import FLAG_C, FLAG_N, FLAG_PV, FLAG_S, FLAG_Z


def run_asm(body: str) -> Board:
    source = f"        org 0\n        ld sp, 0xDFF0\n{body}\n        halt\n"
    board = Board()
    board.program(assemble(source).code)
    board.run()
    return board


class TestSixteenBitFlags:
    def test_sbc_hl_overflow(self):
        # 0x8000 - 1 = 0x7FFF: signed overflow (min-int minus one).
        board = run_asm("""
            ld hl, 0x8000
            ld de, 0x0001
            or a
            sbc hl, de
        """)
        assert board.cpu.hl == 0x7FFF
        assert board.cpu.flag(FLAG_PV)
        assert not board.cpu.flag(FLAG_S)
        assert board.cpu.flag(FLAG_N)

    def test_adc_hl_overflow(self):
        # 0x7FFF + 1 = 0x8000: signed overflow upward.
        board = run_asm("""
            or a
            ld hl, 0x7FFF
            ld de, 0x0001
            adc hl, de
        """)
        assert board.cpu.hl == 0x8000
        assert board.cpu.flag(FLAG_PV)
        assert board.cpu.flag(FLAG_S)

    def test_sbc_hl_zero_flag(self):
        board = run_asm("""
            or a
            ld hl, 0x1234
            ld de, 0x1234
            sbc hl, de
        """)
        assert board.cpu.hl == 0
        assert board.cpu.flag(FLAG_Z)
        assert not board.cpu.flag(FLAG_C)

    def test_add_hl_carry_only(self):
        # ADD HL does not touch Z or S.
        board = run_asm("""
            xor a          ; set Z
            ld hl, 0xFFFF
            ld de, 0x0001
            add hl, de
        """)
        assert board.cpu.hl == 0
        assert board.cpu.flag(FLAG_C)
        assert board.cpu.flag(FLAG_Z)  # preserved from XOR A


class TestDaa:
    def test_daa_after_sub(self):
        # BCD 0x42 - 0x13 = 0x29.
        board = run_asm("""
            ld a, 0x42
            sub 0x13
            daa
            ld (0xC000), a
        """)
        assert board.memory.read8(0xC000) == 0x29

    def test_daa_carry_propagation(self):
        # BCD 0x99 + 0x01 = 1 00 with carry.
        board = run_asm("""
            ld a, 0x99
            add a, 0x01
            daa
            ld (0xC000), a
        """)
        assert board.memory.read8(0xC000) == 0x00
        assert board.cpu.flag(FLAG_C)


class TestBlockOpFlags:
    def test_ldir_clears_pv_at_end(self):
        board = run_asm("""
            ld hl, 0xC100
            ld de, 0xC200
            ld bc, 4
            ldir
        """)
        assert not board.cpu.flag(FLAG_PV)  # BC reached zero
        assert board.cpu.bc == 0

    def test_ldi_sets_pv_while_remaining(self):
        board = run_asm("""
            ld hl, 0xC100
            ld de, 0xC200
            ld bc, 4
            ldi
        """)
        assert board.cpu.flag(FLAG_PV)
        assert board.cpu.bc == 3

    def test_cpir_z_on_match(self):
        board = run_asm("""
            ld hl, data
            ld bc, 4
            ld a, 3
            cpir
            halt
        data:
            db 1, 2, 3, 4
        """)
        assert board.cpu.flag(FLAG_Z)

    def test_cpir_no_match_exhausts_bc(self):
        board = run_asm("""
            ld hl, data
            ld bc, 4
            ld a, 9
            cpir
            halt
        data:
            db 1, 2, 3, 4
        """)
        assert not board.cpu.flag(FLAG_Z)
        assert board.cpu.bc == 0


class TestHaltAndInterrupts:
    def test_halt_wakes_on_interrupt(self):
        source = """
            org 0
            ld sp, 0xDFF0
            ei
            halt
            ld a, 0x77         ; resumes here after RETI
            ld (0xC000), a
            halt
        isr:
            ld a, 0x11
            ld (0xC001), a
            ei
            reti
        """
        assembly = assemble(source)
        board = Board()
        board.program(assembly.code)
        board.run_cycles(100)
        assert board.cpu.halted
        board.cpu.request_interrupt(assembly.symbol("isr"))
        board.run_cycles(500)
        assert board.memory.read8(0xC001) == 0x11
        assert board.memory.read8(0xC000) == 0x77

    def test_interrupts_queue_in_order(self):
        source = """
            org 0
            ld sp, 0xDFF0
            ei
        spin:
            jp spin
        isr1:
            ld a, 1
            ld (0xC000), a
            ei
            reti
        isr2:
            ld a, 2
            ld (0xC001), a
            ei
            reti
        """
        assembly = assemble(source)
        board = Board()
        board.program(assembly.code)
        board.run_cycles(50)
        board.cpu.request_interrupt(assembly.symbol("isr1"))
        board.cpu.request_interrupt(assembly.symbol("isr2"))
        board.run_cycles(1000)
        assert board.memory.read8(0xC000) == 1
        assert board.memory.read8(0xC001) == 2

    def test_neg_flags(self):
        board = run_asm("""
            ld a, 0x80
            neg
        """)
        # -(-128) overflows back to -128.
        assert board.cpu.a == 0x80
        assert board.cpu.flag(FLAG_PV)
        assert board.cpu.flag(FLAG_C)
