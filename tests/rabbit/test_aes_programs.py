"""The two AES implementations on the emulated board (DESIGN.md S13)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.rijndael import Rijndael
from repro.dync.compiler import CompilerOptions
from repro.rabbit.board import Board
from repro.rabbit.programs.aes_asm import AesAsm, generate_source
from repro.rabbit.programs.aes_c import AesC

FIPS_KEY = bytes.fromhex("000102030405060708090a0b0c0d0e0f")
FIPS_PT = bytes.fromhex("00112233445566778899aabbccddeeff")
FIPS_CT = bytes.fromhex("69c4e0d86a7b0430d8cdb78070b4c55a")


@pytest.fixture(scope="module")
def asm_aes():
    return AesAsm(Board())


@pytest.fixture(scope="module")
def c_aes():
    return AesC(Board(), CompilerOptions())


class TestAsmAes:
    def test_fips_vector(self, asm_aes):
        asm_aes.set_key(FIPS_KEY)
        ciphertext, _cycles = asm_aes.encrypt_block(FIPS_PT)
        assert ciphertext == FIPS_CT

    def test_appendix_a_vector(self, asm_aes):
        key = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
        plaintext = bytes.fromhex("3243f6a8885a308d313198a2e0370734")
        asm_aes.set_key(key)
        ciphertext, _ = asm_aes.encrypt_block(plaintext)
        assert ciphertext.hex() == "3925841d02dc09fbdc118597196a0b32"

    @given(key=st.binary(min_size=16, max_size=16),
           block=st.binary(min_size=16, max_size=16))
    @settings(max_examples=5, deadline=None)
    def test_matches_reference(self, asm_aes, key, block):
        asm_aes.set_key(key)
        ciphertext, _ = asm_aes.encrypt_block(block)
        assert ciphertext == Rijndael(key).encrypt_block(block)

    def test_cycles_deterministic(self, asm_aes):
        asm_aes.set_key(FIPS_KEY)
        _, first = asm_aes.encrypt_block(FIPS_PT)
        asm_aes.set_key(FIPS_KEY)
        _, second = asm_aes.encrypt_block(FIPS_PT)
        assert first == second

    def test_rejects_bad_sizes(self, asm_aes):
        with pytest.raises(ValueError):
            asm_aes.set_key(bytes(8))
        with pytest.raises(ValueError):
            asm_aes.encrypt_block(bytes(8))

    def test_generated_source_is_unrolled(self):
        source = generate_source()
        # Nine middle rounds, each with four columns, fully unrolled.
        assert source.count("; round") == 36
        assert "djnz" not in source.split("aes_encrypt")[1].split("ret")[0]


class TestCAes:
    def test_fips_vector(self, c_aes):
        c_aes.set_key(FIPS_KEY)
        ciphertext, _ = c_aes.encrypt_block(FIPS_PT)
        assert ciphertext == FIPS_CT

    @given(key=st.binary(min_size=16, max_size=16),
           block=st.binary(min_size=16, max_size=16))
    @settings(max_examples=3, deadline=None)
    def test_matches_reference(self, c_aes, key, block):
        c_aes.set_key(key)
        ciphertext, _ = c_aes.encrypt_block(block)
        assert ciphertext == Rijndael(key).encrypt_block(block)

    def test_all_option_combinations_correct(self):
        for options in (CompilerOptions(debug=False),
                        CompilerOptions(optimize=True),
                        CompilerOptions(unroll=True),
                        CompilerOptions(data_placement="root_ram"),
                        CompilerOptions(data_placement="xmem")):
            implementation = AesC(Board(), options)
            implementation.set_key(FIPS_KEY)
            ciphertext, _ = implementation.encrypt_block(FIPS_PT)
            assert ciphertext == FIPS_CT, options.describe()


class TestRelativePerformance:
    def test_asm_at_least_10x(self, asm_aes, c_aes):
        asm_aes.set_key(FIPS_KEY)
        c_aes.set_key(FIPS_KEY)
        _, asm_cycles = asm_aes.encrypt_block(FIPS_PT)
        _, c_cycles = c_aes.encrypt_block(FIPS_PT)
        assert c_cycles >= 10 * asm_cycles

    def test_key_schedule_also_faster(self, asm_aes, c_aes):
        asm_cycles = asm_aes.set_key(FIPS_KEY)
        c_cycles = c_aes.set_key(FIPS_KEY)
        assert c_cycles > 2 * asm_cycles
