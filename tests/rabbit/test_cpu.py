"""CPU core tests: instruction semantics, flags, cycles, interrupts.

Programs are assembled with the project assembler and run on a Board,
so these double as assembler-encoding tests for every mnemonic used.
"""

import pytest

from repro.rabbit.asm import assemble
from repro.rabbit.board import Board
from repro.rabbit.cpu import FLAG_C, FLAG_PV, FLAG_S, FLAG_Z

RESULT = 0xC000


def run_asm(body: str, max_instructions: int = 2_000_000) -> Board:
    source = f"        org 0\n        ld sp, 0xDFF0\n{body}\n        halt\n"
    board = Board()
    board.program(assemble(source).code)
    board.run(max_instructions=max_instructions)
    return board


def result8(board, offset=0):
    return board.memory.read8(RESULT + offset)


def result16(board, offset=0):
    return board.memory.read8(RESULT + offset) | (
        board.memory.read8(RESULT + offset + 1) << 8
    )


class TestLoadsAndStores:
    def test_immediate_loads_all_registers(self):
        board = run_asm("""
            ld a, 1
            ld b, 2
            ld c, 3
            ld d, 4
            ld e, 5
            ld h, 6
            ld l, 7
            ld (0xC000), a
            ld a, b
            ld (0xC001), a
            ld a, c
            ld (0xC002), a
            ld a, d
            ld (0xC003), a
            ld a, e
            ld (0xC004), a
            ld a, h
            ld (0xC005), a
            ld a, l
            ld (0xC006), a
        """)
        assert [result8(board, i) for i in range(7)] == [1, 2, 3, 4, 5, 6, 7]

    def test_16bit_loads_and_stores(self):
        board = run_asm("""
            ld bc, 0x1234
            ld de, 0x5678
            ld hl, 0x9ABC
            ld (0xC000), bc
            ld (0xC002), de
            ld (0xC004), hl
        """)
        assert result16(board, 0) == 0x1234
        assert result16(board, 2) == 0x5678
        assert result16(board, 4) == 0x9ABC

    def test_indirect_via_bc_de(self):
        board = run_asm("""
            ld a, 0x42
            ld bc, 0xC000
            ld (bc), a
            ld de, 0xC001
            ld a, 0x43
            ld (de), a
            ld a, (bc)
            ld (0xC002), a
        """)
        assert result8(board, 0) == 0x42
        assert result8(board, 1) == 0x43
        assert result8(board, 2) == 0x42

    def test_hl_indirect_and_immediate(self):
        board = run_asm("""
            ld hl, 0xC000
            ld (hl), 0x99
            inc hl
            ld a, 0x77
            ld (hl), a
        """)
        assert result8(board, 0) == 0x99
        assert result8(board, 1) == 0x77

    def test_sp_loads(self):
        board = run_asm("""
            ld hl, 0xD000
            ld sp, hl
            ld (0xC000), sp
        """)
        assert result16(board) == 0xD000

    def test_exchanges(self):
        board = run_asm("""
            ld de, 0x1111
            ld hl, 0x2222
            ex de, hl
            ld (0xC000), hl
            ld (0xC002), de
            exx
            ld hl, 0x3333
            exx
            ld (0xC004), hl
        """)
        assert result16(board, 0) == 0x1111
        assert result16(board, 2) == 0x2222
        assert result16(board, 4) == 0x1111  # exx restored the main set

    def test_push_pop(self):
        board = run_asm("""
            ld bc, 0xAABB
            push bc
            pop de
            ld (0xC000), de
            ld hl, 0x1234
            push hl
            ld hl, 0
            pop hl
            ld (0xC002), hl
        """)
        assert result16(board, 0) == 0xAABB
        assert result16(board, 2) == 0x1234

    def test_ex_sp_hl(self):
        board = run_asm("""
            ld hl, 0x1111
            push hl
            ld hl, 0x2222
            ex (sp), hl
            ld (0xC000), hl
            pop hl
            ld (0xC002), hl
        """)
        assert result16(board, 0) == 0x1111
        assert result16(board, 2) == 0x2222


class TestArithmetic:
    def test_add_flags(self):
        board = run_asm("""
            ld a, 0x7F
            add a, 1
            ld (0xC000), a
        """)
        assert result8(board) == 0x80
        assert board.cpu.flag(FLAG_S)
        assert board.cpu.flag(FLAG_PV)  # signed overflow
        assert not board.cpu.flag(FLAG_C)

    def test_add_carry_out(self):
        board = run_asm("""
            ld a, 0xFF
            add a, 2
            ld (0xC000), a
        """)
        assert result8(board) == 1
        assert board.cpu.flag(FLAG_C)
        assert not board.cpu.flag(FLAG_Z)

    def test_adc_sbc_chain(self):
        # 16-bit add via 8-bit adc: 0x00FF + 0x0101 = 0x0200
        board = run_asm("""
            ld a, 0xFF
            add a, 0x01
            ld (0xC000), a
            ld a, 0x00
            adc a, 0x01
            ld (0xC001), a
        """)
        assert result16(board) == 0x0200

    def test_sub_and_compare(self):
        board = run_asm("""
            ld a, 10
            sub 25
            ld (0xC000), a
        """)
        assert result8(board) == (10 - 25) & 0xFF
        assert board.cpu.flag(FLAG_C)

    def test_cp_sets_z(self):
        board = run_asm("""
            ld a, 5
            cp 5
            ld b, 0
            jp nz, done
            ld b, 1
        done:
            ld a, b
            ld (0xC000), a
        """)
        assert result8(board) == 1

    def test_inc_dec_flags(self):
        board = run_asm("""
            ld a, 0xFF
            inc a
            ld (0xC000), a
            ld b, 1
            dec b
            ld a, b
            ld (0xC001), a
        """)
        assert result8(board, 0) == 0
        assert result8(board, 1) == 0
        assert board.cpu.flag(FLAG_Z)

    def test_neg(self):
        board = run_asm("""
            ld a, 1
            neg
            ld (0xC000), a
        """)
        assert result8(board) == 0xFF

    def test_16bit_add(self):
        board = run_asm("""
            ld hl, 0x00FF
            ld de, 0x0F01
            add hl, de
            ld (0xC000), hl
        """)
        assert result16(board) == 0x1000

    def test_sbc_hl(self):
        board = run_asm("""
            ld hl, 0x1000
            ld de, 0x0001
            or a
            sbc hl, de
            ld (0xC000), hl
        """)
        assert result16(board) == 0x0FFF

    def test_adc_hl(self):
        board = run_asm("""
            scf
            ld hl, 0x0001
            ld de, 0x0001
            adc hl, de
            ld (0xC000), hl
        """)
        assert result16(board) == 0x0003

    def test_daa_bcd_addition(self):
        # 0x19 + 0x28 = BCD 47
        board = run_asm("""
            ld a, 0x19
            add a, 0x28
            daa
            ld (0xC000), a
        """)
        assert result8(board) == 0x47


class TestLogicAndBits:
    def test_logic_ops(self):
        board = run_asm("""
            ld a, 0xF0
            and 0x3C
            ld (0xC000), a
            ld a, 0xF0
            or 0x0C
            ld (0xC001), a
            ld a, 0xF0
            xor 0xFF
            ld (0xC002), a
            ld a, 0x55
            cpl
            ld (0xC003), a
        """)
        assert result8(board, 0) == 0x30
        assert result8(board, 1) == 0xFC
        assert result8(board, 2) == 0x0F
        assert result8(board, 3) == 0xAA

    def test_rotates_a(self):
        board = run_asm("""
            ld a, 0x81
            rlca
            ld (0xC000), a
            ld a, 0x81
            rrca
            ld (0xC001), a
            or a
            ld a, 0x80
            rla
            ld (0xC002), a
        """)
        assert result8(board, 0) == 0x03
        assert result8(board, 1) == 0xC0
        assert result8(board, 2) == 0x00  # carry was clear, bit7 out

    def test_cb_shifts(self):
        board = run_asm("""
            ld b, 0x81
            sla b
            ld a, b
            ld (0xC000), a
            ld c, 0x81
            sra c
            ld a, c
            ld (0xC001), a
            ld d, 0x81
            srl d
            ld a, d
            ld (0xC002), a
            ld e, 0x81
            rlc e
            ld a, e
            ld (0xC003), a
        """)
        assert result8(board, 0) == 0x02
        assert result8(board, 1) == 0xC0
        assert result8(board, 2) == 0x40
        assert result8(board, 3) == 0x03

    def test_bit_set_res(self):
        board = run_asm("""
            ld a, 0
            set 7, a
            set 0, a
            res 7, a
            ld (0xC000), a
            ld hl, 0xC001
            ld (hl), 0xFF
            res 4, (hl)
        """)
        assert result8(board, 0) == 0x01
        assert result8(board, 1) == 0xEF

    def test_bit_test_flags(self):
        board = run_asm("""
            ld a, 0x08
            bit 3, a
            ld b, 0
            jp z, done
            ld b, 1
        done:
            ld a, b
            ld (0xC000), a
        """)
        assert result8(board) == 1

    def test_rld(self):
        board = run_asm("""
            ld hl, 0xC000
            ld (hl), 0x34
            ld a, 0x12
            rld
            ld (0xC001), a
        """)
        # RLD: A=0x12,(HL)=0x34 -> (HL)=0x42, A=0x13
        assert result8(board, 0) == 0x42
        assert result8(board, 1) == 0x13


class TestControlFlow:
    def test_djnz_loop(self):
        board = run_asm("""
            ld b, 5
            ld a, 0
        loop:
            add a, 10
            djnz loop
            ld (0xC000), a
        """)
        assert result8(board) == 50

    def test_conditional_jumps_all(self):
        board = run_asm("""
            ld a, 0
            cp 1          ; sets C and NZ and M
            jp c, c_ok
            jp fail
        c_ok:
            jp nz, nz_ok
            jp fail
        nz_ok:
            jp m, m_ok
            jp fail
        m_ok:
            ld a, 1
            or a          ; clears all
            jp p, p_ok
            jp fail
        p_ok:
            ld a, 0xAA
            ld (0xC000), a
            halt
        fail:
            ld a, 0x55
            ld (0xC000), a
        """)
        assert result8(board) == 0xAA

    def test_jr_both_directions(self):
        board = run_asm("""
            ld a, 0
            jr fwd
        back:
            add a, 1
            jr done
        fwd:
            add a, 2
            jr back
        done:
            ld (0xC000), a
        """)
        assert result8(board) == 3

    def test_call_ret_nesting(self):
        board = run_asm("""
            call outer
            ld (0xC000), hl
            halt
        outer:
            ld hl, 1
            call inner
            inc hl
            ret
        inner:
            inc hl
            ret
        """)
        assert result16(board) == 3

    def test_conditional_call_and_ret(self):
        board = run_asm("""
            ld a, 1
            or a
            call nz, hit
            call z, miss
            ld (0xC000), hl
            halt
        hit:
            ld hl, 0x0F0F
            ret
        miss:
            ld hl, 0xDEAD
            ret
        """)
        assert result16(board) == 0x0F0F

    def test_rst(self):
        source = """
            org 0
            jp start
            org 0x08
            ld a, 0x5A
            ld (0xC000), a
            ret
        start:
            ld sp, 0xDFF0
            rst 0x08
            halt
        """
        board = Board()
        board.program(assemble(source).code)
        board.run()
        assert board.memory.read8(0xC000) == 0x5A

    def test_jp_hl(self):
        board = run_asm("""
            ld hl, target
            jp (hl)
            ld a, 0xBB
            ld (0xC000), a
            halt
        target:
            ld a, 0xCC
            ld (0xC000), a
        """)
        assert result8(board) == 0xCC


class TestBlockOps:
    def test_ldir(self):
        board = run_asm("""
            ld hl, src
            ld de, 0xC000
            ld bc, 5
            ldir
            halt
        src:
            db 9, 8, 7, 6, 5
        """)
        assert board.memory.dump(0xC000, 5) == bytes([9, 8, 7, 6, 5])

    def test_lddr(self):
        board = run_asm("""
            ld hl, src + 4
            ld de, 0xC004
            ld bc, 5
            lddr
            halt
        src:
            db 1, 2, 3, 4, 5
        """)
        assert board.memory.dump(0xC000, 5) == bytes([1, 2, 3, 4, 5])

    def test_cpir_finds_byte(self):
        board = run_asm("""
            ld hl, data
            ld bc, 10
            ld a, 7
            cpir
            ld (0xC000), hl
            halt
        data:
            db 1, 3, 5, 7, 9, 11, 13, 15, 17, 19
        """)
        data_addr = assemble("""
            org 0
            ld sp, 0xDFF0
            ld hl, data
            ld bc, 10
            ld a, 7
            cpir
            ld (0xC000), hl
            halt
        data:
            db 1
        """).symbol("data")
        # HL points one past the match (data + 4).
        assert result16(board) == data_addr + 4


class TestIndexRegisters:
    def test_ix_iy_load_store(self):
        board = run_asm("""
            ld ix, 0xC010
            ld iy, 0xC020
            ld (ix+0), 0x11
            ld (ix+5), 0x22
            ld (iy-2), 0x33
            ld a, (ix+0)
            ld (0xC000), a
            ld a, (ix+5)
            ld (0xC001), a
            ld a, (iy-2)
            ld (0xC002), a
        """)
        assert result8(board, 0) == 0x11
        assert result8(board, 1) == 0x22
        assert result8(board, 2) == 0x33
        assert board.memory.read8(0xC010) == 0x11
        assert board.memory.read8(0xC015) == 0x22
        assert board.memory.read8(0xC01E) == 0x33

    def test_add_ix(self):
        board = run_asm("""
            ld ix, 0x1000
            ld de, 0x0234
            add ix, de
            push ix
            pop hl
            ld (0xC000), hl
        """)
        assert result16(board) == 0x1234

    def test_ix_alu(self):
        board = run_asm("""
            ld ix, 0xC010
            ld (ix+1), 40
            ld a, 2
            add a, (ix+1)
            ld (0xC000), a
        """)
        assert result8(board) == 42

    def test_ix_cb_bitops(self):
        board = run_asm("""
            ld ix, 0xC010
            ld (ix+0), 0
            set 6, (ix+0)
            ld a, (ix+0)
            ld (0xC000), a
        """)
        assert result8(board) == 0x40


class TestCyclesAndInterrupts:
    def test_nop_cycles(self):
        board = Board(flash_wait_states=0)
        board.program(assemble("org 0\nnop\nnop\nhalt\n").code)
        board.run()
        assert board.cpu.cycles == 4 + 4 + 4

    def test_flash_wait_states_cost(self):
        fast = Board(flash_wait_states=0)
        slow = Board(flash_wait_states=2)
        image = assemble("org 0\nnop\nnop\nhalt\n").code
        fast.program(image)
        slow.program(image)
        fast.run()
        slow.run()
        assert slow.cpu.cycles > fast.cpu.cycles

    def test_interrupt_dispatch(self):
        source = """
            org 0
            ld sp, 0xDFF0
            ei
        spin:
            jp spin
        isr:
            ld a, 0x99
            ld (0xC000), a
            halt
        """
        assembly = assemble(source)
        board = Board()
        board.program(assembly.code)
        board.run_cycles(100)
        board.cpu.request_interrupt(assembly.symbol("isr"))
        board.run_cycles(100)
        assert board.memory.read8(0xC000) == 0x99

    def test_interrupt_masked_by_di(self):
        source = """
            org 0
            ld sp, 0xDFF0
            di
        spin:
            jp spin
        isr:
            ld a, 0x99
            ld (0xC000), a
            halt
        """
        assembly = assemble(source)
        board = Board()
        board.program(assembly.code)
        board.run_cycles(100)
        board.cpu.request_interrupt(assembly.symbol("isr"))
        board.run_cycles(200)
        assert board.memory.read8(0xC000) == 0x00

    def test_instruction_counting(self):
        board = Board()
        board.program(assemble("org 0\nnop\nnop\nnop\nhalt\n").code)
        board.run()
        assert board.cpu.instructions == 4

    def test_rabbit_xpc_extension(self):
        board = run_asm("""
            ld a, 0x90
            ld xpc, a
            ld a, 0
            ld a, xpc
            ld (0xC000), a
        """)
        assert result8(board) == 0x90
        assert board.memory.xpc == 0x90
