"""AES decryption on the board, both implementations."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.rijndael import Rijndael
from repro.dync.compiler import CompilerOptions
from repro.rabbit.board import Board
from repro.rabbit.programs.aes_asm import AesAsm
from repro.rabbit.programs.aes_c import AesC

FIPS_KEY = bytes.fromhex("000102030405060708090a0b0c0d0e0f")
FIPS_PT = bytes.fromhex("00112233445566778899aabbccddeeff")
FIPS_CT = bytes.fromhex("69c4e0d86a7b0430d8cdb78070b4c55a")


@pytest.fixture(scope="module")
def asm_aes():
    return AesAsm(Board())


@pytest.fixture(scope="module")
def c_aes():
    return AesC(Board(), CompilerOptions())


class TestAsmDecrypt:
    def test_fips_vector(self, asm_aes):
        asm_aes.set_key(FIPS_KEY)
        plaintext, _cycles = asm_aes.decrypt_block(FIPS_CT)
        assert plaintext == FIPS_PT

    @given(key=st.binary(min_size=16, max_size=16),
           block=st.binary(min_size=16, max_size=16))
    @settings(max_examples=5, deadline=None)
    def test_roundtrip(self, asm_aes, key, block):
        asm_aes.set_key(key)
        ciphertext, _ = asm_aes.encrypt_block(block)
        plaintext, _ = asm_aes.decrypt_block(ciphertext)
        assert plaintext == block

    def test_matches_reference_decrypt(self, asm_aes):
        key = bytes(range(16, 32))
        ciphertext = bytes(range(16))
        asm_aes.set_key(key)
        plaintext, _ = asm_aes.decrypt_block(ciphertext)
        assert plaintext == Rijndael(key).decrypt_block(ciphertext)

    def test_decrypt_cycles_same_order_as_encrypt(self, asm_aes):
        asm_aes.set_key(FIPS_KEY)
        _, enc_cycles = asm_aes.encrypt_block(FIPS_PT)
        _, dec_cycles = asm_aes.decrypt_block(FIPS_CT)
        # InvMixColumns costs a bit more (4 tables); same magnitude.
        assert enc_cycles < dec_cycles < 2 * enc_cycles

    def test_rejects_bad_block(self, asm_aes):
        with pytest.raises(ValueError):
            asm_aes.decrypt_block(bytes(15))


class TestCDecrypt:
    def test_fips_vector(self, c_aes):
        c_aes.set_key(FIPS_KEY)
        plaintext, _ = c_aes.decrypt_block(FIPS_CT)
        assert plaintext == FIPS_PT

    def test_roundtrip(self, c_aes):
        key = b"0123456789abcdef"
        block = b"fedcba9876543210"
        c_aes.set_key(key)
        ciphertext, _ = c_aes.encrypt_block(block)
        plaintext, _ = c_aes.decrypt_block(ciphertext)
        assert plaintext == block

    def test_optimized_build_decrypts(self):
        implementation = AesC(
            Board(),
            CompilerOptions(debug=False, optimize=True,
                            data_placement="root_ram"),
        )
        implementation.set_key(FIPS_KEY)
        plaintext, _ = implementation.decrypt_block(FIPS_CT)
        assert plaintext == FIPS_PT


class TestDecryptGap:
    def test_asm_decrypt_also_order_of_magnitude_faster(self, asm_aes, c_aes):
        asm_aes.set_key(FIPS_KEY)
        c_aes.set_key(FIPS_KEY)
        _, asm_cycles = asm_aes.decrypt_block(FIPS_CT)
        _, c_cycles = c_aes.decrypt_block(FIPS_CT)
        assert c_cycles >= 10 * asm_cycles

    def test_c_decrypt_slower_than_c_encrypt(self, c_aes):
        # InvMixColumns needs 4 multiplications per byte vs ~2; the
        # naive port pays the full price (real deployments noticed).
        c_aes.set_key(FIPS_KEY)
        _, enc = c_aes.encrypt_block(FIPS_PT)
        _, dec = c_aes.decrypt_block(FIPS_CT)
        assert dec > 1.5 * enc
