"""Snapshot schema: round-trip, validation, atomic save, flattening."""

import json

import pytest

from repro.bench.schema import (
    SCHEMA_VERSION,
    BenchSchemaError,
    default_snapshot_path,
    flatten_metrics,
    flatten_wall,
    list_snapshots,
    load_snapshot,
    save_snapshot,
    validate_snapshot,
)
from repro.experiments.harness import ExperimentResult

from tests.bench.conftest import make_snapshot


class TestValidation:
    def test_valid_document_passes(self, snapshot):
        assert validate_snapshot(snapshot) is snapshot

    def test_non_object_rejected(self):
        with pytest.raises(BenchSchemaError, match="JSON object"):
            validate_snapshot([1, 2, 3])

    def test_missing_top_level_key(self, snapshot):
        del snapshot["workload"]
        with pytest.raises(BenchSchemaError, match="workload"):
            validate_snapshot(snapshot)

    def test_version_mismatch(self, snapshot):
        snapshot["schema_version"] = SCHEMA_VERSION + 1
        with pytest.raises(BenchSchemaError, match="schema_version"):
            validate_snapshot(snapshot)

    def test_experiment_record_shape(self, snapshot):
        del snapshot["experiments"]["E1"]["metrics"]
        with pytest.raises(BenchSchemaError, match="E1"):
            validate_snapshot(snapshot)


class TestRoundTrip:
    def test_save_load_identity(self, tmp_path, snapshot):
        path = save_snapshot(snapshot, tmp_path / "BENCH_t.json")
        assert load_snapshot(path) == snapshot

    def test_save_is_atomic(self, tmp_path, snapshot):
        path = tmp_path / "BENCH_t.json"
        save_snapshot(snapshot, path)
        assert not path.with_name(path.name + ".tmp").exists()

    def test_save_rejects_invalid(self, tmp_path, snapshot):
        del snapshot["obs"]
        with pytest.raises(BenchSchemaError):
            save_snapshot(snapshot, tmp_path / "BENCH_t.json")
        assert list(tmp_path.iterdir()) == []

    def test_load_missing_file(self, tmp_path):
        with pytest.raises(BenchSchemaError, match="no snapshot"):
            load_snapshot(tmp_path / "BENCH_absent.json")

    def test_load_torn_json(self, tmp_path):
        path = tmp_path / "BENCH_torn.json"
        path.write_text('{"schema_version": 1, "tag"')
        with pytest.raises(BenchSchemaError, match="not valid JSON"):
            load_snapshot(path)

    def test_experiment_result_survives_round_trip(self, tmp_path,
                                                   snapshot):
        path = save_snapshot(snapshot, tmp_path / "BENCH_t.json")
        record = load_snapshot(path)["experiments"]["E1"]
        result = ExperimentResult.from_dict(record)
        assert result.metrics["asm_over_c_speed_ratio"] == 25.0
        assert "[E1]" in result.format()
        # The regenerated table keeps its column order.
        assert "implementation" in result.format().splitlines()[2]

    def test_from_dict_ignores_unknown_keys(self):
        record = ExperimentResult(
            experiment_id="EX", title="t", paper_claim="c"
        ).to_dict()
        record["future_field"] = 1
        assert ExperimentResult.from_dict(record).experiment_id == "EX"


class TestPathsAndListing:
    def test_default_path_shape(self):
        assert default_snapshot_path("baseline").name == (
            "BENCH_baseline.json"
        )
        assert default_snapshot_path("a/b").name == "BENCH_a_b.json"

    def test_list_snapshots_sorted_by_created(self, tmp_path):
        for tag, created in (("new", 2000.0), ("old", 1000.0)):
            save_snapshot(
                make_snapshot(tag=tag, created_unix=created),
                tmp_path / f"BENCH_{tag}.json",
            )
        (tmp_path / "unrelated.json").write_text("{}")
        names = [p.name for p in list_snapshots(tmp_path)]
        assert names == ["BENCH_old.json", "BENCH_new.json"]

    def test_list_snapshots_tolerates_garbage(self, tmp_path):
        (tmp_path / "BENCH_bad.json").write_text("not json")
        assert [p.name for p in list_snapshots(tmp_path)] == [
            "BENCH_bad.json"
        ]


class TestFlattening:
    def test_experiment_metrics_and_reproduced(self, snapshot):
        flat = flatten_metrics(snapshot)
        assert flat["E1.asm_over_c_speed_ratio"] == 25.0
        assert flat["E1.reproduced"] == 1

    def test_obs_detail_flattened(self, snapshot):
        flat = flatten_metrics(snapshot)
        assert flat["obs.aes.asm.total_cycles"] == 100000
        assert flat["obs.aes.asm.routine.aes_encrypt.self_cycles"] == 90000
        assert flat["obs.redirector.counter.issl.records.sent"] == 12
        assert flat["obs.redirector.gauge.xalloc.used.high_water"] == 4096.0
        assert flat["obs.redirector.histogram.costate.gap_s.p95"] == 0.004

    def test_wall_excluded_from_metrics(self, snapshot):
        assert not any(
            name.startswith("wall.") for name in flatten_metrics(snapshot)
        )

    def test_flatten_wall(self, snapshot):
        wall = flatten_wall(snapshot)
        assert wall == {
            "wall.experiments.E1": 2.0,
            "wall.obs.redirector": 1.0,
            "wall.total": 3.0,
        }

    def test_snapshot_json_serializable(self, snapshot):
        json.dumps(flatten_metrics(snapshot))


class TestScalingFlattening:
    def _with_scaling(self, snapshot):
        from tests.bench.test_gate import make_scaling_section

        snapshot["redirector_scaling"] = make_scaling_section()
        snapshot["wall_seconds"]["redirector_scaling"] = 7.5
        return snapshot

    def test_scaling_points_flattened(self, snapshot):
        flat = flatten_metrics(self._with_scaling(snapshot))
        assert flat["scaling.static3.throughput_rps"] == 20.0
        assert flat["scaling.pool3.refusal_rate"] == 0.4
        assert flat["scaling.pool8.throughput_rps"] == 25.0
        assert flat["scaling.pool8.latency_s.p95"] == 0.2
        assert flat["scaling.pool8.xmem_budget_violations"] == 0

    def test_scaling_summary_flattened(self, snapshot):
        flat = flatten_metrics(self._with_scaling(snapshot))
        assert flat["scaling.summary.speedup_8_vs_static3"] == 1.25
        assert flat["scaling.summary.monotone_throughput"] == 1

    def test_scaling_wall_in_wall_map_not_metrics(self, snapshot):
        document = self._with_scaling(snapshot)
        assert flatten_wall(document)["wall.redirector_scaling"] == 7.5
        assert not any(
            name.startswith("wall.") for name in flatten_metrics(document)
        )

    def test_section_optional_for_validation(self, snapshot):
        # Old snapshots without the section still validate and flatten.
        validate_snapshot(snapshot)
        assert not any(
            name.startswith("scaling.") for name in flatten_metrics(snapshot)
        )
