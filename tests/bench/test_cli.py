"""``python -m repro.bench``: the CLI surface and the CI gate contract.

A session-scoped quick snapshot over the cheap experiments keeps the
suite fast; the gate's regression behaviour is pinned by a subprocess
test that perturbs a snapshot exactly the way a cost-model change would
move the numbers and requires a non-zero exit with a readable
per-metric diff.
"""

import json
import os
import pathlib
import subprocess
import sys

import pytest

from repro.bench.cli import main

REPO = pathlib.Path(__file__).resolve().parent.parent.parent

#: The sub-second experiments; enough to exercise every pipeline stage.
CHEAP = "E6,E7,E8,E9"


def _run_module(*argv: str, cwd=REPO) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    return subprocess.run(
        [sys.executable, "-m", "repro.bench", *argv],
        capture_output=True, text=True, env=env, cwd=cwd, timeout=300,
    )


@pytest.fixture(scope="session")
def quick_snapshot_path(tmp_path_factory) -> pathlib.Path:
    path = tmp_path_factory.mktemp("bench") / "BENCH_quick.json"
    assert main(["run", "--tag", "quick", "--quick", "--only", CHEAP,
                 "--no-obs", "--out", str(path)]) == 0
    return path


class TestRun:
    def test_writes_schema_versioned_snapshot(self, quick_snapshot_path):
        document = json.loads(quick_snapshot_path.read_text())
        assert document["schema_version"] == 1
        assert document["workload"] == "quick"
        assert sorted(document["experiments"]) == sorted(CHEAP.split(","))
        assert "E7" in document["wall_seconds"]["experiments"]

    def test_unknown_experiment_id_errors(self, tmp_path):
        with pytest.raises(ValueError, match="E42"):
            main(["run", "--only", "E42", "--no-obs",
                  "--out", str(tmp_path / "BENCH_x.json")])


class TestCompareCli:
    def test_self_compare_exits_zero(self, quick_snapshot_path, capsys):
        assert main(["compare", str(quick_snapshot_path),
                     str(quick_snapshot_path)]) == 0
        assert "all metrics within tolerance" in capsys.readouterr().out

    def test_missing_file_exits_two(self, tmp_path, capsys):
        assert main(["compare", str(tmp_path / "BENCH_no.json"),
                     str(tmp_path / "BENCH_no.json")]) == 2
        assert "no snapshot" in capsys.readouterr().err


class TestShow:
    def test_regenerates_tables(self, quick_snapshot_path, capsys):
        assert main(["show", str(quick_snapshot_path), "E7"]) == 0
        out = capsys.readouterr().out
        assert "[E7]" in out
        assert "reproduced: YES" in out

    def test_unknown_id_exits_two(self, quick_snapshot_path, capsys):
        assert main(["show", str(quick_snapshot_path), "E1"]) == 2
        assert "E1" in capsys.readouterr().err


class TestTrend:
    def test_lists_snapshots(self, quick_snapshot_path, capsys):
        assert main(["trend", "--dir",
                     str(quick_snapshot_path.parent)]) == 0
        out = capsys.readouterr().out
        assert "quick" in out
        assert "E7 RAM B" in out

    def test_markdown(self, quick_snapshot_path, capsys):
        assert main(["trend", "--dir", str(quick_snapshot_path.parent),
                     "--markdown"]) == 0
        assert capsys.readouterr().out.startswith("| tag |")

    def test_empty_directory(self, tmp_path, capsys):
        assert main(["trend", "--dir", str(tmp_path)]) == 0
        assert "no snapshots" in capsys.readouterr().out


class TestGateCli:
    def test_self_gate_passes(self, quick_snapshot_path, capsys):
        assert main(["gate", "--baseline", str(quick_snapshot_path),
                     "--snapshot", str(quick_snapshot_path)]) == 0
        assert "verdict: PASS" in capsys.readouterr().out

    def test_perturbed_metric_fails_gate_subprocess(
        self, quick_snapshot_path, tmp_path
    ):
        """The acceptance contract, end to end through the real entry
        point: drift a deterministic metric (what perturbing the AES
        cost model does to E7's twin, here port RAM bytes) and the gate
        must exit non-zero printing a per-metric diff."""
        document = json.loads(quick_snapshot_path.read_text())
        document["experiments"]["E7"]["metrics"]["port_ram_bytes"] *= 1.25
        document["tag"] = "perturbed"
        perturbed = tmp_path / "BENCH_perturbed.json"
        perturbed.write_text(json.dumps(document))
        completed = _run_module(
            "gate", "--baseline", str(quick_snapshot_path),
            "--snapshot", str(perturbed),
        )
        assert completed.returncode == 1, completed.stderr
        assert "E7.port_ram_bytes" in completed.stdout
        assert "FAIL" in completed.stdout
        assert "+25.00%" in completed.stdout

    def test_perturbed_slo_rules_fail_gate_subprocess(
        self, quick_snapshot_path, tmp_path
    ):
        """The SLO acceptance contract end to end: a rules file whose
        threshold the snapshot violates must turn the gate red with a
        per-rule diff, even when claims and drift both pass."""
        rules = tmp_path / "slo.toml"
        rules.write_text(
            '[[rule]]\n'
            'name = "all-scenarios-pass"\n'
            'path = "faults/passed"\n'
            'op = ">="\n'
            'threshold = 99.0\n'
            'severity = "error"\n'
            'description = "the matrix must stay this big"\n',
            encoding="utf-8",
        )
        completed = _run_module(
            "gate", "--baseline", str(quick_snapshot_path),
            "--snapshot", str(quick_snapshot_path), "--slo", str(rules),
        )
        assert completed.returncode == 1, completed.stderr
        assert "FAIL all-scenarios-pass [error]" in completed.stdout
        assert "faults/passed" in completed.stdout
        assert "want >= 99" in completed.stdout
        assert "slo verdict: FAIL" in completed.stdout
        assert "verdict: FAIL" in completed.stdout.splitlines()[-1]

    def test_met_slo_rules_keep_the_gate_green(
        self, quick_snapshot_path, tmp_path, capsys
    ):
        rules = tmp_path / "slo.toml"
        rules.write_text(
            '[[rule]]\n'
            'name = "no-failed-scenarios"\n'
            'path = "faults/failed"\n'
            'op = "=="\n'
            'threshold = 0.0\n',
            encoding="utf-8",
        )
        assert main(["gate", "--baseline", str(quick_snapshot_path),
                     "--snapshot", str(quick_snapshot_path),
                     "--slo", str(rules)]) == 0
        out = capsys.readouterr().out
        assert "slo verdict: PASS" in out
        assert "verdict: PASS" in out.splitlines()[-1]

    def test_no_slo_skips_evaluation(self, quick_snapshot_path, capsys):
        assert main(["gate", "--baseline", str(quick_snapshot_path),
                     "--snapshot", str(quick_snapshot_path),
                     "--no-slo"]) == 0
        assert "slo verdict" not in capsys.readouterr().out

    def test_invalid_slo_file_exits_two(self, quick_snapshot_path,
                                        tmp_path, capsys):
        bad = tmp_path / "bad.toml"
        bad.write_text("not [ toml", encoding="utf-8")
        assert main(["gate", "--baseline", str(quick_snapshot_path),
                     "--snapshot", str(quick_snapshot_path),
                     "--slo", str(bad)]) == 2
        assert "invalid TOML" in capsys.readouterr().err

    def test_violated_claim_fails_gate(self, quick_snapshot_path,
                                       tmp_path, capsys):
        document = json.loads(quick_snapshot_path.read_text())
        # The E7 churn claim: an allocate-only port must die early.
        document["experiments"]["E7"]["metrics"][
            "xalloc_churn_connections"
        ] = 10_000
        broken = tmp_path / "BENCH_broken.json"
        broken.write_text(json.dumps(document))
        assert main(["gate", "--baseline", str(quick_snapshot_path),
                     "--snapshot", str(broken)]) == 1
        out = capsys.readouterr().out
        assert "xalloc_churn_connections < 100" in out
        assert "VIOLATED" in out

    def test_missing_baseline_exits_two(self, tmp_path, capsys):
        assert main(["gate", "--baseline",
                     str(tmp_path / "BENCH_none.json"),
                     "--snapshot", str(tmp_path / "BENCH_none.json")]) == 2
        assert "no snapshot" in capsys.readouterr().err


class TestForensicsAcceptance:
    """The obs-v3 acceptance contract: comparing the committed baseline
    against a perturbed-AES-cost-model snapshot must attach a
    deterministic forensics section naming the moved routine and the
    first simulated-time divergence point, byte-identical across runs.
    """

    @pytest.fixture(scope="class")
    def perturbed_path(self, tmp_path_factory) -> pathlib.Path:
        document = json.loads(
            (REPO / "BENCH_baseline.json").read_text(encoding="utf-8")
        )
        # What a MixColumns cost-model change does to the numbers: the
        # routine's self cycles move, and with them the totals and the
        # cumulative cycle telemetry.
        profile = document["obs"]["aes_profile"]["c"]
        delta = 0
        for row in profile["routines"]:
            if row["routine"] == "mix_columns":
                delta = int(row["self cycles"] * 0.5)
                row["self cycles"] += delta
        assert delta > 0, "baseline lost its mix_columns routine"
        profile["total_cycles"] += delta
        telemetry = profile["telemetry"]["cpu.cycles"]
        telemetry["values"][-1] += delta
        telemetry["last"] += delta
        document["tag"] = "perturbed-aes"
        path = tmp_path_factory.mktemp("forensics") / "BENCH_pert.json"
        path.write_text(json.dumps(document), encoding="utf-8")
        return path

    def test_compare_attaches_deterministic_forensics(
        self, perturbed_path
    ):
        runs = [
            _run_module("compare", "BENCH_baseline.json",
                        str(perturbed_path))
            for _ in range(2)
        ]
        for completed in runs:
            assert completed.returncode == 1, completed.stdout
            out = completed.stdout
            assert "forensics:" in out
            assert "top routine cycle deltas [c]:" in out
            assert "mix_columns" in out
            assert ("first telemetry divergence: aes:c/cpu.cycles "
                    "at t=") in out
            assert "flight recorder tail" in out
        assert runs[0].stdout == runs[1].stdout

    def test_gate_carries_the_forensics_section(self, perturbed_path):
        completed = _run_module(
            "gate", "--baseline", "BENCH_baseline.json",
            "--snapshot", str(perturbed_path), "--no-slo",
        )
        assert completed.returncode == 1, completed.stdout
        assert "forensics:" in completed.stdout
        assert "mix_columns" in completed.stdout
        assert "verdict: FAIL" in completed.stdout.splitlines()[-1]


class TestEntryPoint:
    def test_help_exits_zero(self):
        completed = _run_module("--help")
        assert completed.returncode == 0
        for subcommand in ("run", "compare", "trend", "gate", "show"):
            assert subcommand in completed.stdout


class TestScalingSection:
    def test_quick_snapshot_carries_scaling_section(
        self, quick_snapshot_path
    ):
        document = json.loads(quick_snapshot_path.read_text())
        section = document["redirector_scaling"]
        assert section["workload"]["pool_sizes"] == [3, 8]
        assert section["summary"]["speedup_8_vs_static3"] > 1.0
        assert section["summary"]["xmem_budget_violations"] == 0
        assert "redirector_scaling" in document["wall_seconds"]

    def test_no_scaling_flag_omits_section(self, tmp_path):
        path = tmp_path / "BENCH_noscale.json"
        assert main(["run", "--tag", "noscale", "--quick", "--only", "E6",
                     "--no-obs", "--no-faults", "--no-scaling",
                     "--out", str(path)]) == 0
        document = json.loads(path.read_text())
        assert "redirector_scaling" not in document
        assert "redirector_scaling" not in document["wall_seconds"]
