"""Shared fixtures: synthetic snapshot documents for schema-level tests."""

import copy

import pytest

from repro.bench.schema import SCHEMA_VERSION

_TEMPLATE = {
    "schema_version": SCHEMA_VERSION,
    "tag": "synthetic",
    "workload": "full",
    "created_unix": 1000.0,
    "created_iso": "2026-01-01T00:00:00Z",
    "harness": {"python": "3", "platform": "linux"},
    "experiments": {
        "E1": {
            "experiment_id": "E1",
            "title": "AES C vs asm",
            "paper_claim": "order of magnitude",
            "rows": [{"implementation": "C", "cycles/block": 512000}],
            "summary": "25x",
            "reproduced": True,
            "notes": "",
            "extra_tables": {},
            "metrics": {
                "asm_over_c_speed_ratio": 25.0,
                "asm_cycles_per_block": 20160.0,
                "c_cycles_per_block": 512000.0,
            },
        },
    },
    "obs": {
        "aes_profile": {
            "asm": {
                "total_cycles": 100000,
                "blocks": 2,
                "routines": [
                    {"routine": "aes_encrypt", "self cycles": 90000,
                     "% of total": 90.0, "instructions": 5000, "calls": 2},
                ],
                "telemetry": {
                    "cpu.cycles": {"n": 3, "last": 100000.0, "max": 100000.0,
                                   "times": [0.0, 0.001, 0.002],
                                   "values": [0.0, 50000.0, 100000.0]},
                },
            },
        },
        "redirector": {
            "counters": {"issl.records.sent": 12},
            "gauges": {"xalloc.used": {"value": 4096.0,
                                       "high_water": 4096.0}},
            "histograms": {
                "costate.gap_s": {
                    "count": 10, "mean": 0.002,
                    "p50": 0.001, "p95": 0.004, "p99": 0.005,
                    "buckets": [{"le": 0.01, "count": 10},
                                {"le": "+inf", "count": 0}],
                },
            },
            "clients_ok": 2,
            "telemetry": {
                "sim.pending_events": {"n": 2, "last": 3.0, "max": 5.0,
                                       "times": [0.01, 0.02],
                                       "values": [5.0, 3.0]},
            },
            "recorder_tail": [
                {"seq": 7, "t": 0.098, "sev": "DEBUG", "cat": "net.tcp",
                 "tid": "tcp:rmc", "msg": "ESTABLISHED->CLOSE_WAIT"},
            ],
        },
    },
    "wall_seconds": {
        "experiments": {"E1": 2.0},
        "obs": {"redirector": 1.0},
        "total": 3.0,
    },
}


def make_snapshot(**overrides) -> dict:
    """A deep copy of the synthetic snapshot with top-level overrides."""
    document = copy.deepcopy(_TEMPLATE)
    document.update(overrides)
    return document


@pytest.fixture
def snapshot() -> dict:
    return make_snapshot()
