"""Tolerance-band logic: pass / warn / fail, added/removed, wall band."""

import pytest

from repro.bench.compare import (
    DETERMINISTIC_BAND,
    WALL_BAND,
    compare_snapshots,
)
from repro.bench.schema import BenchSchemaError

from tests.bench.conftest import make_snapshot


def _with_metric(document, name, value):
    document["experiments"]["E1"]["metrics"][name] = value
    return document


def _diff(report, name):
    matches = [d for d in report.diffs if d.name == name]
    assert len(matches) == 1, f"{name} not in report"
    return matches[0]


class TestDeterministicBand:
    def test_identical_snapshots_all_pass(self, snapshot):
        report = compare_snapshots(snapshot, make_snapshot())
        assert report.ok
        assert report.failures == []
        counts = report.counts()
        assert counts["warn"] == counts["fail"] == 0
        assert counts["pass"] == len(report.diffs)

    def test_sub_band_drift_passes(self, snapshot):
        current = _with_metric(make_snapshot(), "c_cycles_per_block",
                               512000.0 * 1.0005)
        diff = _diff(compare_snapshots(snapshot, current),
                     "E1.c_cycles_per_block")
        assert diff.status == "pass"

    def test_mid_band_drift_warns(self, snapshot):
        current = _with_metric(make_snapshot(), "c_cycles_per_block",
                               512000.0 * 1.01)
        report = compare_snapshots(snapshot, current)
        diff = _diff(report, "E1.c_cycles_per_block")
        assert diff.status == "warn"
        assert report.ok  # warns alone never fail a compare
        assert diff in report.warnings

    def test_beyond_band_drift_fails(self, snapshot):
        current = _with_metric(make_snapshot(), "c_cycles_per_block",
                               512000.0 * 1.10)
        report = compare_snapshots(snapshot, current)
        diff = _diff(report, "E1.c_cycles_per_block")
        assert diff.status == "fail"
        assert not report.ok
        assert diff.rel_drift == pytest.approx(0.10)

    def test_negative_drift_fails_symmetrically(self, snapshot):
        current = _with_metric(make_snapshot(), "c_cycles_per_block",
                               512000.0 * 0.90)
        diff = _diff(compare_snapshots(snapshot, current),
                     "E1.c_cycles_per_block")
        assert diff.status == "fail"
        assert diff.rel_drift == pytest.approx(-0.10)

    def test_reproduced_flip_fails(self, snapshot):
        current = make_snapshot()
        current["experiments"]["E1"]["reproduced"] = False
        diff = _diff(compare_snapshots(snapshot, current), "E1.reproduced")
        assert diff.status == "fail"

    def test_zero_baseline_uses_abs_floor(self, snapshot):
        baseline = _with_metric(make_snapshot(), "new_zero", 0.0)
        current = _with_metric(make_snapshot(), "new_zero", 1.0)
        assert _diff(compare_snapshots(baseline, current),
                     "E1.new_zero").status == "fail"


class TestAddedRemoved:
    def test_added_metric_warns_not_fails(self, snapshot):
        current = _with_metric(make_snapshot(), "brand_new", 7.0)
        report = compare_snapshots(snapshot, current)
        diff = _diff(report, "E1.brand_new")
        assert diff.status == "added"
        assert diff.delta is None
        assert report.ok

    def test_removed_metric_warns_not_fails(self, snapshot):
        current = make_snapshot()
        del current["experiments"]["E1"]["metrics"]["c_cycles_per_block"]
        report = compare_snapshots(snapshot, current)
        assert _diff(report, "E1.c_cycles_per_block").status == "removed"
        assert report.ok


class TestWallBand:
    def test_wall_never_fails(self, snapshot):
        current = make_snapshot()
        current["wall_seconds"]["experiments"]["E1"] = 50.0  # 25x slower
        report = compare_snapshots(snapshot, current)
        diff = _diff(report, "wall.experiments.E1")
        assert diff.status == "warn"
        assert diff.band == "wall"
        assert report.ok

    def test_small_wall_jitter_passes(self, snapshot):
        current = make_snapshot()
        current["wall_seconds"]["total"] = 3.5
        assert _diff(compare_snapshots(snapshot, current),
                     "wall.total").status == "pass"

    def test_sub_floor_wall_ignored(self, snapshot):
        # 0.01 s -> 0.05 s is 5x but under the absolute floor: timer
        # noise on tiny experiments must not even warn.
        baseline = make_snapshot()
        baseline["wall_seconds"]["experiments"]["E1"] = 0.01
        current = make_snapshot()
        current["wall_seconds"]["experiments"]["E1"] = 0.05
        assert _diff(compare_snapshots(baseline, current),
                     "wall.experiments.E1").status == "pass"


class TestWorkloadGuard:
    def test_workload_mismatch_raises(self, snapshot):
        with pytest.raises(BenchSchemaError, match="workload"):
            compare_snapshots(snapshot, make_snapshot(workload="quick"))


class TestReportRendering:
    def test_format_lists_failures(self, snapshot):
        current = _with_metric(make_snapshot(), "c_cycles_per_block",
                               700000.0)
        text = compare_snapshots(snapshot, current).format()
        assert "E1.c_cycles_per_block" in text
        assert "FAIL" in text
        assert "deterministic" in text

    def test_format_clean(self, snapshot):
        text = compare_snapshots(snapshot, make_snapshot()).format()
        assert "all metrics within tolerance" in text

    def test_format_verbose_shows_passes(self, snapshot):
        text = compare_snapshots(snapshot, make_snapshot()).format(
            verbose=True
        )
        assert "E1.asm_cycles_per_block" in text

    def test_band_constants(self):
        assert DETERMINISTIC_BAND.fail_rel is not None
        assert WALL_BAND.fail_rel is None


class TestForensicsAttachment:
    def test_clean_compare_attaches_no_forensics(self, snapshot):
        report = compare_snapshots(snapshot, make_snapshot())
        assert report.forensics is None
        assert "forensics:" not in report.format()

    def test_failing_compare_attaches_forensics(self, snapshot):
        current = make_snapshot()
        profile = current["obs"]["aes_profile"]["asm"]
        profile["routines"][0]["self cycles"] = 135000
        profile["total_cycles"] = 145000
        telemetry = profile["telemetry"]["cpu.cycles"]
        telemetry["values"][-1] = 145000.0
        telemetry["last"] = 145000.0
        report = compare_snapshots(snapshot, current)
        assert not report.ok
        assert report.forensics is not None
        text = report.format()
        assert "forensics:" in text
        assert "aes_encrypt" in report.forensics
        assert "+45000 cycles" in report.forensics
        assert ("first telemetry divergence: aes:asm/cpu.cycles "
                "at t=0.002000000s") in report.forensics
        # The synthetic snapshot embeds a one-event recorder tail.
        assert "flight recorder tail" in report.forensics
        assert "ESTABLISHED->CLOSE_WAIT" in report.forensics

    def test_warn_only_compare_also_attaches_forensics(self, snapshot):
        current = _with_metric(make_snapshot(), "c_cycles_per_block",
                               512000.0 * 1.01)
        report = compare_snapshots(snapshot, current)
        assert report.ok
        assert report.forensics is not None

    def test_snapshots_without_forensics_sections_still_compare(
        self, snapshot
    ):
        # Pre-v3 snapshots lack telemetry/recorder_tail; a failing
        # compare must still render, just with less detail.
        baseline = make_snapshot()
        current = _with_metric(make_snapshot(), "c_cycles_per_block",
                               700000.0)
        for document in (baseline, current):
            for profile in document["obs"]["aes_profile"].values():
                del profile["telemetry"]
            del document["obs"]["redirector"]["telemetry"]
            del document["obs"]["redirector"]["recorder_tail"]
        report = compare_snapshots(baseline, current)
        assert not report.ok
        assert "divergence: none" in report.forensics
