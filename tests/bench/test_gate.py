"""Gate logic: claim evaluation, reproduced flags, drift integration."""

from repro.bench.gate import (
    CLAIMS,
    FAST_BATTERY_WALL_SECONDS,
    SCALING_CLAIMS,
    SLOW_PATH_WALL_SECONDS,
    Claim,
    evaluate_gate,
)

from tests.bench.conftest import make_snapshot


def _result_for(report, experiment_id, metric):
    for result in report.claim_results:
        claim = result.claim
        if claim.experiment_id == experiment_id and claim.metric == metric:
            return result
    raise AssertionError(f"no claim {experiment_id}.{metric}")


class TestClaimEvaluation:
    def test_holding_claim_ok(self, snapshot):
        result = Claim("E1", "asm_over_c_speed_ratio", ">=", 10.0,
                       "order of magnitude").evaluate(snapshot)
        assert result.status == "ok"
        assert result.value == 25.0

    def test_violated_claim(self, snapshot):
        snapshot["experiments"]["E1"]["metrics"][
            "asm_over_c_speed_ratio"
        ] = 4.0
        result = Claim("E1", "asm_over_c_speed_ratio", ">=", 10.0,
                       "order of magnitude").evaluate(snapshot)
        assert result.status == "violated"

    def test_absent_experiment_skipped(self, snapshot):
        result = Claim("E5", "peak_sessions_3_handlers", "==", 3.0,
                       "ceiling").evaluate(snapshot)
        assert result.status == "skipped"

    def test_absent_metric_is_missing(self, snapshot):
        result = Claim("E1", "not_a_metric", ">=", 1.0,
                       "schema drift").evaluate(snapshot)
        assert result.status == "missing-metric"

    def test_claim_table_covers_all_ten_experiments_but_skips_none_extra(
        self,
    ):
        claimed = {claim.experiment_id for claim in CLAIMS}
        assert claimed == {f"E{i}" for i in range(1, 11)}


class TestGateVerdict:
    def test_healthy_snapshot_passes(self, snapshot):
        report = evaluate_gate(snapshot)
        assert report.ok
        assert _result_for(report, "E1",
                           "asm_over_c_speed_ratio").status == "ok"
        # Claims for experiments this snapshot lacks are skipped, not
        # failed: subset snapshots stay gateable.
        assert _result_for(report, "E5",
                           "peak_sessions_3_handlers").status == "skipped"

    def test_violated_claim_fails_gate(self, snapshot):
        snapshot["experiments"]["E1"]["metrics"][
            "asm_over_c_speed_ratio"
        ] = 4.0
        report = evaluate_gate(snapshot)
        assert not report.ok
        assert report.violated_claims

    def test_not_reproduced_fails_gate(self, snapshot):
        snapshot["experiments"]["E1"]["reproduced"] = False
        report = evaluate_gate(snapshot)
        assert not report.ok
        assert report.not_reproduced == ["E1"]

    def test_drift_against_baseline_fails_gate(self, snapshot):
        current = make_snapshot()
        current["experiments"]["E1"]["metrics"]["c_cycles_per_block"] *= 1.5
        report = evaluate_gate(current, baseline=snapshot)
        assert not report.ok
        assert report.compare is not None
        assert not report.compare.ok
        # The claims themselves still hold -- the drift is the failure.
        assert not report.violated_claims

    def test_no_baseline_means_claims_only(self, snapshot):
        report = evaluate_gate(snapshot)
        assert report.compare is None
        assert report.ok


class TestGateRendering:
    def test_format_readable_on_failure(self, snapshot):
        snapshot["experiments"]["E1"]["metrics"][
            "asm_over_c_speed_ratio"
        ] = 4.0
        text = evaluate_gate(snapshot).format()
        assert "asm_over_c_speed_ratio >= 10" in text
        assert "VIOLATED" in text
        assert "verdict: FAIL" in text

    def test_format_pass(self, snapshot):
        text = evaluate_gate(snapshot).format()
        assert "verdict: PASS" in text

    def test_format_verbose_lists_ok_claims(self, snapshot):
        text = evaluate_gate(snapshot).format(verbose=True)
        assert "order of magnitude" in text


class TestSpeedWarning:
    """The warn-only harness-speed claim: a full run at or above the
    recorded slow-path wall clock warns but never fails the gate."""

    def test_fast_full_run_has_no_warning(self, snapshot):
        report = evaluate_gate(snapshot)
        assert report.speed_warnings == []

    def test_slow_full_run_warns_without_failing(self, snapshot):
        snapshot["wall_seconds"]["total"] = SLOW_PATH_WALL_SECONDS + 1.0
        report = evaluate_gate(snapshot)
        # Above the slow-path sentinel it is also above the (smaller)
        # translated-tier budget: both warn-only notices fire.
        assert len(report.speed_warnings) == 2
        assert "fast" in report.speed_warnings[0]
        assert "translation tier" in report.speed_warnings[1]
        assert report.ok  # warn-only: wall clock never fails the gate
        text = report.format()
        assert "warning (speed, non-fatal)" in text
        assert "verdict: PASS" in text

    def test_over_translated_budget_warns_once(self, snapshot):
        snapshot["wall_seconds"]["total"] = FAST_BATTERY_WALL_SECONDS + 1.0
        report = evaluate_gate(snapshot)
        assert len(report.speed_warnings) == 1
        assert "translation tier" in report.speed_warnings[0]
        assert report.ok

    def test_quick_workload_never_warns(self, snapshot):
        snapshot["workload"] = "quick"
        snapshot["wall_seconds"]["total"] = SLOW_PATH_WALL_SECONDS + 1.0
        report = evaluate_gate(snapshot)
        assert report.speed_warnings == []


def _scaling_point(variant, slots, throughput, refusal_rate=0.0):
    return {
        "variant": variant, "slots": slots, "clients": 6,
        "requests_per_client": 1, "attempts": 6,
        "completed_requests": 6, "clients_completed": 6,
        "refused_connections": 0, "refused_slots": 0,
        "refused_sessions": 0, "refused_memory": 0,
        "refusal_rate": refusal_rate, "makespan_s": 1.0,
        "throughput_rps": throughput,
        "latency_s": {"p50": 0.1, "p95": 0.2, "p99": 0.3},
        "peak_slots_occupied": float(slots),
        "xmem_used_bytes": 4096, "xmem_capacity_bytes": 196608,
        "xmem_budget_violations": 0,
    }


def make_scaling_section(speedup=1.25) -> dict:
    static = _scaling_point("static", 3, 20.0)
    return {
        "workload": {"clients": 6, "requests_per_client": 1,
                     "request_size": 64, "seed": 2000,
                     "pool_sizes": [3, 8],
                     "xmem_capacity_bytes": 196608},
        "static3": static,
        "pools": {
            "3": _scaling_point("pool", 3, 15.0, refusal_rate=0.4),
            "8": _scaling_point("pool", 8, 20.0 * speedup),
        },
        "summary": {
            "throughput_rps_static3": 20.0,
            "monotone_throughput": 1,
            "monotone_refusal_rate": 1,
            "xmem_budget_violations": 0,
            "speedup_8_vs_static3": speedup,
        },
    }


class TestScalingClaims:
    """The post-paper claims on the dynamic connection-slot pool."""

    def test_claim_table_still_pins_exactly_the_ten_experiments(self):
        # SCALING_CLAIMS live in their own table so the paper's claim
        # census stays E1..E10 exactly.
        claimed = {claim.experiment_id for claim in CLAIMS}
        assert claimed == {f"E{i}" for i in range(1, 11)}
        assert all(claim.section == "redirector_scaling"
                   for claim in SCALING_CLAIMS)

    def test_skipped_when_section_absent(self, snapshot):
        report = evaluate_gate(snapshot)
        assert report.ok
        result = _result_for(report, "SCALING", "speedup_8_vs_static3")
        assert result.status == "skipped"

    def test_healthy_section_passes_all_four_claims(self, snapshot):
        snapshot["redirector_scaling"] = make_scaling_section()
        report = evaluate_gate(snapshot)
        assert report.ok
        for claim in SCALING_CLAIMS:
            result = _result_for(report, "SCALING", claim.metric)
            assert result.status == "ok", claim.metric

    def test_pool8_not_beating_static_fails_gate(self, snapshot):
        snapshot["redirector_scaling"] = make_scaling_section(speedup=0.95)
        report = evaluate_gate(snapshot)
        assert not report.ok
        result = _result_for(report, "SCALING", "speedup_8_vs_static3")
        assert result.status == "violated"

    def test_budget_violation_fails_gate(self, snapshot):
        section = make_scaling_section()
        section["summary"]["xmem_budget_violations"] = 1
        snapshot["redirector_scaling"] = section
        report = evaluate_gate(snapshot)
        assert not report.ok

    def test_non_monotone_curve_fails_gate(self, snapshot):
        section = make_scaling_section()
        section["summary"]["monotone_throughput"] = 0
        snapshot["redirector_scaling"] = section
        report = evaluate_gate(snapshot)
        assert not report.ok

    def test_missing_summary_metric_is_violated(self, snapshot):
        section = make_scaling_section()
        del section["summary"]["speedup_8_vs_static3"]
        snapshot["redirector_scaling"] = section
        report = evaluate_gate(snapshot)
        result = _result_for(report, "SCALING", "speedup_8_vs_static3")
        assert result.status == "missing-metric"
        assert not report.ok
