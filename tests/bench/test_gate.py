"""Gate logic: claim evaluation, reproduced flags, drift integration."""

from repro.bench.gate import (
    CLAIMS,
    SLOW_PATH_WALL_SECONDS,
    Claim,
    evaluate_gate,
)

from tests.bench.conftest import make_snapshot


def _result_for(report, experiment_id, metric):
    for result in report.claim_results:
        claim = result.claim
        if claim.experiment_id == experiment_id and claim.metric == metric:
            return result
    raise AssertionError(f"no claim {experiment_id}.{metric}")


class TestClaimEvaluation:
    def test_holding_claim_ok(self, snapshot):
        result = Claim("E1", "asm_over_c_speed_ratio", ">=", 10.0,
                       "order of magnitude").evaluate(snapshot)
        assert result.status == "ok"
        assert result.value == 25.0

    def test_violated_claim(self, snapshot):
        snapshot["experiments"]["E1"]["metrics"][
            "asm_over_c_speed_ratio"
        ] = 4.0
        result = Claim("E1", "asm_over_c_speed_ratio", ">=", 10.0,
                       "order of magnitude").evaluate(snapshot)
        assert result.status == "violated"

    def test_absent_experiment_skipped(self, snapshot):
        result = Claim("E5", "peak_sessions_3_handlers", "==", 3.0,
                       "ceiling").evaluate(snapshot)
        assert result.status == "skipped"

    def test_absent_metric_is_missing(self, snapshot):
        result = Claim("E1", "not_a_metric", ">=", 1.0,
                       "schema drift").evaluate(snapshot)
        assert result.status == "missing-metric"

    def test_claim_table_covers_all_ten_experiments_but_skips_none_extra(
        self,
    ):
        claimed = {claim.experiment_id for claim in CLAIMS}
        assert claimed == {f"E{i}" for i in range(1, 11)}


class TestGateVerdict:
    def test_healthy_snapshot_passes(self, snapshot):
        report = evaluate_gate(snapshot)
        assert report.ok
        assert _result_for(report, "E1",
                           "asm_over_c_speed_ratio").status == "ok"
        # Claims for experiments this snapshot lacks are skipped, not
        # failed: subset snapshots stay gateable.
        assert _result_for(report, "E5",
                           "peak_sessions_3_handlers").status == "skipped"

    def test_violated_claim_fails_gate(self, snapshot):
        snapshot["experiments"]["E1"]["metrics"][
            "asm_over_c_speed_ratio"
        ] = 4.0
        report = evaluate_gate(snapshot)
        assert not report.ok
        assert report.violated_claims

    def test_not_reproduced_fails_gate(self, snapshot):
        snapshot["experiments"]["E1"]["reproduced"] = False
        report = evaluate_gate(snapshot)
        assert not report.ok
        assert report.not_reproduced == ["E1"]

    def test_drift_against_baseline_fails_gate(self, snapshot):
        current = make_snapshot()
        current["experiments"]["E1"]["metrics"]["c_cycles_per_block"] *= 1.5
        report = evaluate_gate(current, baseline=snapshot)
        assert not report.ok
        assert report.compare is not None
        assert not report.compare.ok
        # The claims themselves still hold -- the drift is the failure.
        assert not report.violated_claims

    def test_no_baseline_means_claims_only(self, snapshot):
        report = evaluate_gate(snapshot)
        assert report.compare is None
        assert report.ok


class TestGateRendering:
    def test_format_readable_on_failure(self, snapshot):
        snapshot["experiments"]["E1"]["metrics"][
            "asm_over_c_speed_ratio"
        ] = 4.0
        text = evaluate_gate(snapshot).format()
        assert "asm_over_c_speed_ratio >= 10" in text
        assert "VIOLATED" in text
        assert "verdict: FAIL" in text

    def test_format_pass(self, snapshot):
        text = evaluate_gate(snapshot).format()
        assert "verdict: PASS" in text

    def test_format_verbose_lists_ok_claims(self, snapshot):
        text = evaluate_gate(snapshot).format(verbose=True)
        assert "order of magnitude" in text


class TestSpeedWarning:
    """The warn-only harness-speed claim: a full run at or above the
    recorded slow-path wall clock warns but never fails the gate."""

    def test_fast_full_run_has_no_warning(self, snapshot):
        report = evaluate_gate(snapshot)
        assert report.speed_warnings == []

    def test_slow_full_run_warns_without_failing(self, snapshot):
        snapshot["wall_seconds"]["total"] = SLOW_PATH_WALL_SECONDS + 1.0
        report = evaluate_gate(snapshot)
        assert len(report.speed_warnings) == 1
        assert "fast" in report.speed_warnings[0]
        assert report.ok  # warn-only: wall clock never fails the gate
        text = report.format()
        assert "warning (speed, non-fatal)" in text
        assert "verdict: PASS" in text

    def test_quick_workload_never_warns(self, snapshot):
        snapshot["workload"] = "quick"
        snapshot["wall_seconds"]["total"] = SLOW_PATH_WALL_SECONDS + 1.0
        report = evaluate_gate(snapshot)
        assert report.speed_warnings == []
