"""Calibration drift: costmodel presets vs freshly measured E1 cycles.

E4's network-level numbers are only as honest as the
``repro.issl.costmodel`` presets they charge crypto time at, and those
presets are constants calibrated from E1 (EXPERIMENTS.md "Calibration
loop").  This gate re-measures AES cycles/block on the cycle-counting
board and asserts the presets still match, so a compiler or emulator
change cannot silently decouple the throughput story from the
instruction-level measurement.
"""

import pytest

from repro.dync.compiler import CompilerOptions
from repro.experiments.e1_aes import measure_implementation
from repro.issl.costmodel import RMC2000_ASM, RMC2000_C_PORT
from repro.rabbit.board import Board
from repro.rabbit.programs.aes_asm import AesAsm
from repro.rabbit.programs.aes_c import AesC

#: Presets round the measured values (and per-block cost wobbles a few
#: percent with key/block mix), so the leash is loose-ish -- but far
#: tighter than any change that would move the E4 story.
CALIBRATION_RTOL = 0.10


def _measured_cycles_per_block(implementation) -> float:
    return measure_implementation(
        implementation, keys=1, blocks_per_key=2, name="calibration"
    ).cycles_per_block


def test_c_port_preset_matches_measurement():
    measured = _measured_cycles_per_block(
        AesC(Board(), CompilerOptions(), include_decrypt=False)
    )
    assert measured == pytest.approx(
        RMC2000_C_PORT.cycles_per_aes_block, rel=CALIBRATION_RTOL
    ), (
        f"RMC2000_C_PORT.cycles_per_aes_block="
        f"{RMC2000_C_PORT.cycles_per_aes_block} has drifted from the "
        f"fresh E1 measurement {measured:.0f}; recalibrate the preset "
        f"(and refresh BENCH_baseline.json)"
    )


def test_asm_preset_matches_measurement():
    measured = _measured_cycles_per_block(
        AesAsm(Board(), include_decrypt=False)
    )
    assert measured == pytest.approx(
        RMC2000_ASM.cycles_per_aes_block, rel=CALIBRATION_RTOL
    ), (
        f"RMC2000_ASM.cycles_per_aes_block="
        f"{RMC2000_ASM.cycles_per_aes_block} has drifted from the fresh "
        f"E1 measurement {measured:.0f}; recalibrate the preset "
        f"(and refresh BENCH_baseline.json)"
    )


def test_presets_preserve_e1_order_of_magnitude():
    """The two presets must keep encoding the paper's headline ratio."""
    ratio = (RMC2000_C_PORT.cycles_per_aes_block
             / RMC2000_ASM.cycles_per_aes_block)
    assert ratio >= 10.0
