"""issl end-to-end session tests over the simulated network."""

import pytest

from repro.crypto.demokeys import DEMO_PSK, demo_rsa_key
from repro.crypto.prng import CipherRng
from repro.issl import (
    CipherSuite,
    CircularLogger,
    FileLogger,
    IsslConfigError,
    IsslContext,
    IsslError,
    NullLogger,
    RMC2000_PORT,
    UNIX_FULL,
    issl_accept,
    issl_bind,
    issl_close,
    issl_connect,
    issl_read,
    issl_write,
)
from repro.net.bsd import socket
from repro.net.host import build_lan
from repro.net.sim import Simulator
from repro.unixsim.fs import FileSystem


@pytest.fixture(scope="module")
def rsa_key():
    return demo_rsa_key()


def run_session(client_suites, server_ctx_kwargs, client_ctx_kwargs,
                payload=b"payload", server_profile=UNIX_FULL,
                client_profile=UNIX_FULL):
    """One handshake + echo round trip; returns (out, server_session holder)."""
    sim = Simulator()
    _lan, hosts = build_lan(sim, ["server", "client"])
    server_ctx = IsslContext(server_profile, CipherRng(b"s"),
                             **server_ctx_kwargs)
    client_ctx = IsslContext(client_profile, CipherRng(b"c"),
                             **client_ctx_kwargs)
    out = {}

    def server():
        lsock = socket(hosts["server"])
        lsock.bind(("", 4433))
        lsock.listen()
        conn = yield from lsock.accept()
        session = issl_bind(server_ctx, conn, role="server")
        out["server_session"] = session
        try:
            yield from issl_accept(session)
        except IsslError as exc:
            out["server_error"] = str(exc)
            return
        data = yield from issl_read(session)
        yield from issl_write(session, b"echo:" + data)
        yield from issl_close(session)

    def client():
        sock = socket(hosts["client"])
        yield from sock.connect(("10.0.0.1", 4433))
        session = issl_bind(client_ctx, sock, role="client")
        out["client_session"] = session
        try:
            yield from issl_connect(session, client_suites)
        except IsslError as exc:
            out["client_error"] = str(exc)
            return
        yield from issl_write(session, payload)
        out["reply"] = yield from issl_read(session)
        yield from issl_close(session)

    hosts["server"].spawn(server())
    process = hosts["client"].spawn(client())
    sim.run_until_complete(process, timeout=600)
    sim.run(until=sim.now + 1.0)
    return out


class TestSuites:
    @pytest.mark.parametrize("suite", [CipherSuite.RSA_AES128,
                                       CipherSuite.RSA_AES192,
                                       CipherSuite.RSA_AES256])
    def test_rsa_suites(self, rsa_key, suite):
        out = run_session((suite,), {"rsa_key": rsa_key}, {})
        assert out["reply"] == b"echo:payload"
        assert out["client_session"].suite == suite

    def test_psk_suite(self):
        out = run_session((CipherSuite.PSK_AES128,),
                          {"psk": DEMO_PSK}, {"psk": DEMO_PSK})
        assert out["reply"] == b"echo:payload"

    def test_server_prefers_rsa_when_keyed(self, rsa_key):
        out = run_session(None, {"rsa_key": rsa_key, "psk": DEMO_PSK},
                          {"psk": DEMO_PSK})
        assert out["client_session"].suite.uses_rsa

    def test_rmc_profile_negotiates_only_psk(self):
        out = run_session(None, {"psk": DEMO_PSK}, {"psk": DEMO_PSK},
                          server_profile=RMC2000_PORT)
        assert out["client_session"].suite == CipherSuite.PSK_AES128

    def test_no_common_suite_fails(self, rsa_key):
        # Client insists on RSA; server only has a PSK.
        out = run_session((CipherSuite.RSA_AES128,), {"psk": DEMO_PSK}, {})
        assert "client_error" in out or "server_error" in out

    def test_psk_mismatch_fails_finished(self):
        out = run_session((CipherSuite.PSK_AES128,),
                          {"psk": b"A" * 16}, {"psk": b"B" * 16})
        assert "client_error" in out or "server_error" in out

    def test_rmc_profile_cannot_carry_rsa(self):
        import dataclasses

        bad = dataclasses.replace(RMC2000_PORT,
                                  suites=(CipherSuite.RSA_AES128,))
        with pytest.raises(IsslConfigError):
            IsslContext(bad, CipherRng(b"x"))


class TestDataTransfer:
    def test_large_payload_multiple_records(self, rsa_key):
        payload = bytes(range(256)) * 64  # 16 KB < client max, > rmc max
        sim_out = run_session((CipherSuite.PSK_AES128,),
                              {"psk": DEMO_PSK}, {"psk": DEMO_PSK},
                              payload=payload)
        # The echo comes back record by record; just check the first one
        # and session statistics.
        assert sim_out["client_session"].app_bytes_sent == len(payload)

    def test_session_statistics(self, rsa_key):
        out = run_session((CipherSuite.RSA_AES128,), {"rsa_key": rsa_key}, {})
        client = out["client_session"]
        assert client.established
        assert client.records_sent >= 4  # hello, kex, ccs, finished, data...
        assert client.app_bytes_sent == len(b"payload")
        assert client.app_bytes_received == len(b"echo:payload")

    def test_write_before_handshake_rejected(self):
        sim = Simulator()
        _lan, hosts = build_lan(sim, ["server", "client"])
        ctx = IsslContext(UNIX_FULL, CipherRng(b"x"), psk=DEMO_PSK)
        sock = socket(hosts["client"])
        session = issl_bind(ctx, sock, role="client")
        with pytest.raises(IsslError):
            next(session.write(b"early"))
        with pytest.raises(IsslError):
            next(session.read())

    def test_role_validation(self):
        sim = Simulator()
        _lan, hosts = build_lan(sim, ["server", "client"])
        ctx = IsslContext(UNIX_FULL, CipherRng(b"x"), psk=DEMO_PSK)
        sock = socket(hosts["client"])
        with pytest.raises(ValueError):
            issl_bind(ctx, sock, role="observer")
        session = issl_bind(ctx, sock, role="client")
        with pytest.raises(IsslError):
            next(issl_accept(session))

    def test_session_slots_released_after_close(self):
        out = run_session((CipherSuite.PSK_AES128,),
                          {"psk": DEMO_PSK}, {"psk": DEMO_PSK})
        server_session = out["server_session"]
        assert server_session.context.sessions_active == 0
        assert server_session.context.sessions_total == 1


class TestLoggers:
    def test_file_logger_grows(self):
        fs = FileSystem()
        logger = FileLogger(fs, "/var/log/issl.log")
        for i in range(10):
            logger.log(f"event {i}")
        assert logger.messages_logged == 10
        assert logger.size_bytes > 0
        assert logger.tail(2) == ["event 8", "event 9"]

    def test_circular_logger_bounded(self):
        logger = CircularLogger(capacity=4)
        for i in range(10):
            logger.log(f"event {i}")
        assert logger.messages_logged == 10
        assert logger.stored == 4
        assert logger.overwrites == 6
        assert logger.tail(10) == [f"event {i}" for i in range(6, 10)]

    def test_null_logger(self):
        logger = NullLogger()
        logger.log("anything")
        assert logger.messages_logged == 1
        assert logger.tail(5) == []

    def test_circular_capacity_validation(self):
        with pytest.raises(ValueError):
            CircularLogger(capacity=0)

    def test_handshake_is_logged(self):
        logger = CircularLogger()
        out = run_session((CipherSuite.PSK_AES128,),
                          {"psk": DEMO_PSK, "logger": logger},
                          {"psk": DEMO_PSK})
        assert out["reply"] == b"echo:payload"
        assert any("handshake complete" in line for line in logger.tail(10))
