"""issl over the Dynamic C transport, inside costatements — the exact
configuration the RMC2000 port runs in."""

import pytest

from repro.crypto.demokeys import DEMO_PSK
from repro.crypto.prng import CipherRng
from repro.dync.runtime import CostateScheduler, waitfor
from repro.issl import (
    CipherSuite,
    FREE,
    IsslContext,
    IsslError,
    RMC2000_PORT,
    UNIX_FULL,
    issl_bind,
)
from repro.issl.transport import DyncTransport, TransportError
from repro.net.bsd import socket
from repro.net.dynctcp import DyncTcpStack, make_socket
from repro.net.host import build_lan
from repro.net.sim import Simulator


def _world():
    sim = Simulator()
    _lan, hosts = build_lan(sim, ["rmc", "client"])
    stack = DyncTcpStack(hosts["rmc"])
    stack.sock_init()
    return sim, hosts, stack


def test_issl_bind_requires_stack_for_dync_socket():
    sim, hosts, stack = _world()
    context = IsslContext(RMC2000_PORT, CipherRng(b"x"), psk=DEMO_PSK)
    sock = make_socket(stack)
    with pytest.raises(IsslError, match="requires its stack"):
        issl_bind(context, sock, role="server")


def test_issl_bind_rejects_unknown_socket_type():
    context = IsslContext(UNIX_FULL, CipherRng(b"x"), psk=DEMO_PSK)
    with pytest.raises(IsslError):
        issl_bind(context, object(), role="server")


def test_full_session_inside_costate():
    sim, hosts, stack = _world()
    server_context = IsslContext(RMC2000_PORT.with_cost_model(FREE),
                                 CipherRng(b"s"), psk=DEMO_PSK)
    scheduler = CostateScheduler(sim)
    result = {}

    def server_costate():
        sock = make_socket(stack)
        stack.tcp_listen(sock, 4433)
        yield from waitfor(lambda: stack.sock_established(sock))
        session = issl_bind(server_context, sock, stack=stack, role="server")
        yield from session.handshake()
        data = yield from session.read()
        result["server_got"] = data
        yield from session.write(b"roger")
        yield from session.close()

    def tick():
        while True:
            stack.tcp_tick(None)
            yield

    scheduler.add(server_costate())
    scheduler.add(tick())
    scheduler.start()

    client_context = IsslContext(UNIX_FULL, CipherRng(b"c"), psk=DEMO_PSK)

    def client():
        csock = socket(hosts["client"])
        yield from csock.connect(("10.0.0.1", 4433))
        session = issl_bind(client_context, csock, role="client")
        yield from session.handshake((CipherSuite.PSK_AES128,))
        yield from session.write(b"over")
        result["client_got"] = yield from session.read()
        yield from session.close()

    process = hosts["client"].spawn(client())
    sim.run_until_complete(process, timeout=600)
    assert result["server_got"] == b"over"
    assert result["client_got"] == b"roger"


def test_dync_transport_eof_mid_message():
    sim, hosts, stack = _world()
    scheduler = CostateScheduler(sim)
    outcome = {}

    def server_costate():
        sock = make_socket(stack)
        stack.tcp_listen(sock, 9999)
        yield from waitfor(lambda: stack.sock_established(sock))
        transport = DyncTransport(stack, sock)
        try:
            yield from transport.recv_exactly(100)
        except TransportError as exc:
            outcome["error"] = str(exc)

    def tick():
        while True:
            stack.tcp_tick(None)
            yield

    scheduler.add(server_costate())
    scheduler.add(tick())
    scheduler.start()

    def client():
        csock = socket(hosts["client"])
        yield from csock.connect(("10.0.0.1", 9999))
        yield from csock.sendall(b"short")  # 5 of the promised 100
        csock.close()
        yield 0.2

    process = hosts["client"].spawn(client())
    sim.run_until_complete(process, timeout=600)
    sim.run(until=sim.now + 2.0)
    assert "EOF after 5 of 100" in outcome["error"]


def test_dync_transport_timeout():
    sim, hosts, stack = _world()
    scheduler = CostateScheduler(sim)
    outcome = {}

    def server_costate():
        sock = make_socket(stack)
        stack.tcp_listen(sock, 9999)
        yield from waitfor(lambda: stack.sock_established(sock))
        transport = DyncTransport(stack, sock)
        try:
            yield from transport.recv_exactly(10, timeout=0.05)
        except TransportError as exc:
            outcome["error"] = str(exc)

    def tick():
        while True:
            stack.tcp_tick(None)
            yield

    scheduler.add(server_costate())
    scheduler.add(tick())
    scheduler.start()

    def client():
        csock = socket(hosts["client"])
        yield from csock.connect(("10.0.0.1", 9999))
        yield 1.0  # never send anything

    hosts["client"].spawn(client())
    sim.run(until=2.0)
    assert "timed out" in outcome["error"]


def test_dync_transport_buffers_partial_reads():
    sim, hosts, stack = _world()
    scheduler = CostateScheduler(sim)
    outcome = {}

    def server_costate():
        sock = make_socket(stack)
        stack.tcp_listen(sock, 9999)
        yield from waitfor(lambda: stack.sock_established(sock))
        transport = DyncTransport(stack, sock)
        first = yield from transport.recv_exactly(3)
        second = yield from transport.recv_exactly(3)
        outcome["parts"] = (first, second)

    def tick():
        while True:
            stack.tcp_tick(None)
            yield

    scheduler.add(server_costate())
    scheduler.add(tick())
    scheduler.start()

    def client():
        csock = socket(hosts["client"])
        yield from csock.connect(("10.0.0.1", 9999))
        yield from csock.sendall(b"abcdef")
        yield 0.2

    process = hosts["client"].spawn(client())
    sim.run_until_complete(process, timeout=600)
    sim.run(until=sim.now + 1.0)
    assert outcome["parts"] == (b"abc", b"def")


def test_syns_deferred_counter():
    sim, hosts, stack = _world()
    # A listener exists for the port but no socket is waiting: the SYN
    # completes into the hidden queue and is counted as deferred.
    sock = make_socket(stack)
    stack.tcp_listen(sock, 7)
    # Occupy the only waiting socket with a first connection.
    scheduler = CostateScheduler(sim)

    def tick():
        while True:
            stack.tcp_tick(None)
            yield

    scheduler.add(tick())
    scheduler.start()

    def clients():
        c1 = socket(hosts["client"])
        yield from c1.connect(("10.0.0.1", 7))
        c2 = socket(hosts["client"])
        yield from c2.connect(("10.0.0.1", 7))
        yield 0.1

    process = hosts["client"].spawn(clients())
    sim.run_until_complete(process, timeout=600)
    assert stack.syns_deferred >= 1
