"""issl record layer and handshake message tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.issl.config import CipherSuite
from repro.issl.handshake import (
    ClientHello,
    ClientKeyExchange,
    decode_handshake,
    derive_session_keys,
    encode_handshake,
    finished_verify,
    HandshakeError,
    psk_pre_master,
    ServerHello,
)
from repro.issl.record import (
    CT_APPLICATION_DATA,
    CT_HANDSHAKE,
    decode_alert,
    decode_header,
    encode_alert,
    encode_record,
    HEADER_LEN,
    RecordCipherState,
    RecordError,
)


def _state_pair():
    key, mac, iv = bytes(16), bytes(range(20)), bytes(range(16))
    return (RecordCipherState(key, mac, iv),
            RecordCipherState(key, mac, iv))


class TestRecordLayer:
    def test_header_roundtrip(self):
        record = encode_record(CT_HANDSHAKE, b"body")
        content_type, length = decode_header(record[:HEADER_LEN])
        assert content_type == CT_HANDSHAKE
        assert length == 4

    def test_header_rejects_bad_type_and_version(self):
        with pytest.raises(RecordError):
            encode_record(99, b"")
        with pytest.raises(RecordError):
            decode_header(b"\x17\x04\x00\x00\x00")  # version 0x0400

    def test_oversized_record(self):
        with pytest.raises(RecordError):
            encode_record(CT_APPLICATION_DATA, bytes(70000))

    @given(payload=st.binary(max_size=200))
    @settings(max_examples=25, deadline=None)
    def test_seal_open_roundtrip(self, payload):
        sender, receiver = _state_pair()
        sealed = sender.seal(CT_APPLICATION_DATA, payload)
        assert receiver.open(CT_APPLICATION_DATA, sealed) == payload

    def test_sequence_numbers_prevent_replay(self):
        sender, receiver = _state_pair()
        first = sender.seal(CT_APPLICATION_DATA, b"one")
        assert receiver.open(CT_APPLICATION_DATA, first) == b"one"
        with pytest.raises(RecordError):
            receiver.open(CT_APPLICATION_DATA, first)  # replayed

    def test_reordering_detected(self):
        sender, receiver = _state_pair()
        first = sender.seal(CT_APPLICATION_DATA, b"one")
        second = sender.seal(CT_APPLICATION_DATA, b"two")
        with pytest.raises(RecordError):
            receiver.open(CT_APPLICATION_DATA, second)
        # ...and the state is not advanced by the failure:
        assert receiver.open(CT_APPLICATION_DATA, first) == b"one"

    def test_tamper_detected(self):
        sender, receiver = _state_pair()
        sealed = bytearray(sender.seal(CT_APPLICATION_DATA, b"payload"))
        sealed[0] ^= 0x01
        with pytest.raises(RecordError):
            receiver.open(CT_APPLICATION_DATA, bytes(sealed))

    def test_wrong_content_type_fails_mac(self):
        sender, receiver = _state_pair()
        sealed = sender.seal(CT_APPLICATION_DATA, b"data")
        with pytest.raises(RecordError):
            receiver.open(CT_HANDSHAKE, sealed)

    def test_ciphertext_grows_by_mac_and_padding(self):
        sender, _ = _state_pair()
        sealed = sender.seal(CT_APPLICATION_DATA, b"x" * 10)
        # 10 + 20 MAC = 30 -> padded to 32.
        assert len(sealed) == 32

    def test_reference_implementation_interoperates(self):
        key, mac, iv = bytes(16), bytes(20), bytes(16)
        optimized = RecordCipherState(key, mac, iv, "ttable")
        reference = RecordCipherState(key, mac, iv, "reference")
        sealed = optimized.seal(CT_APPLICATION_DATA, b"interop")
        assert reference.open(CT_APPLICATION_DATA, sealed) == b"interop"

    def test_unknown_implementation(self):
        with pytest.raises(RecordError):
            RecordCipherState(bytes(16), bytes(20), bytes(16), "simd")

    def test_alert_encoding(self):
        assert decode_alert(encode_alert(1, 0)) == (1, 0)
        with pytest.raises(RecordError):
            decode_alert(b"\x01")


class TestHandshakeMessages:
    def test_framing_roundtrip(self):
        encoded = encode_handshake(1, b"hello")
        assert decode_handshake(encoded) == (1, b"hello")

    def test_framing_rejects_truncation(self):
        encoded = encode_handshake(1, b"hello")
        with pytest.raises(HandshakeError):
            decode_handshake(encoded[:-1])

    def test_client_hello_roundtrip(self):
        hello = ClientHello(bytes(range(32)),
                            (CipherSuite.RSA_AES128, CipherSuite.PSK_AES128))
        msg_type, body = decode_handshake(hello.encode())
        decoded = ClientHello.decode(body)
        assert decoded == hello

    def test_client_hello_unknown_suite(self):
        body = bytes(32) + bytes([1, 0x7F])
        with pytest.raises(HandshakeError):
            ClientHello.decode(body)

    def test_server_hello_rsa_roundtrip(self):
        hello = ServerHello(bytes(32), CipherSuite.RSA_AES256,
                            rsa_n=b"\x01" * 64, rsa_e=b"\x01\x00\x01")
        _type, body = decode_handshake(hello.encode())
        decoded = ServerHello.decode(body)
        assert decoded == hello
        assert decoded.public_key().n.bit_length() > 0

    def test_server_hello_psk_roundtrip(self):
        hello = ServerHello(bytes(32), CipherSuite.PSK_AES128,
                            psk_hint=b"rmc2000")
        _type, body = decode_handshake(hello.encode())
        decoded = ServerHello.decode(body)
        assert decoded.psk_hint == b"rmc2000"
        with pytest.raises(HandshakeError):
            decoded.public_key()

    def test_client_key_exchange_both_kinds(self):
        rsa = ClientKeyExchange(CipherSuite.RSA_AES128,
                                encrypted_pre_master=bytes(64))
        _t, body = decode_handshake(rsa.encode())
        assert ClientKeyExchange.decode(body, CipherSuite.RSA_AES128) == rsa
        psk = ClientKeyExchange(CipherSuite.PSK_AES128, psk_identity=b"id")
        _t, body = decode_handshake(psk.encode())
        assert ClientKeyExchange.decode(body, CipherSuite.PSK_AES128) == psk

    def test_psk_pre_master_shape(self):
        pre = psk_pre_master(bytes(range(16)))
        assert len(pre) == 48
        with pytest.raises(HandshakeError):
            psk_pre_master(b"")

    def test_key_derivation_is_suite_sized(self):
        for suite in CipherSuite:
            keys = derive_session_keys(bytes(48), bytes(32), bytes(32), suite)
            assert len(keys.client_key) == suite.key_bytes
            assert len(keys.server_key) == suite.key_bytes
            assert len(keys.client_mac) == 20
            assert len(keys.client_iv) == 16
            assert keys.client_key != keys.server_key

    def test_key_derivation_depends_on_randoms(self):
        a = derive_session_keys(bytes(48), b"\x01" * 32, bytes(32),
                                CipherSuite.PSK_AES128)
        b = derive_session_keys(bytes(48), b"\x02" * 32, bytes(32),
                                CipherSuite.PSK_AES128)
        assert a.client_key != b.client_key

    def test_finished_verify_role_separation(self):
        master, transcript = bytes(48), b"transcript"
        assert finished_verify(master, transcript, "client") != \
            finished_verify(master, transcript, "server")
        assert len(finished_verify(master, transcript, "client")) == 36
