"""Crypto cost models: the cycle->seconds arithmetic E4 stands on."""

import pytest

from repro.issl.costmodel import (
    CryptoCostModel,
    FREE,
    RMC2000_ASM,
    RMC2000_C_PORT,
    WORKSTATION,
)


def test_free_model_costs_nothing():
    assert FREE.aes_seconds(1000) == 0.0
    assert FREE.record_seconds(10_000) == 0.0
    assert FREE.rsa_private_seconds() == 0.0


def test_aes_seconds_linear_in_blocks():
    assert RMC2000_ASM.aes_seconds(10) == pytest.approx(
        10 * RMC2000_ASM.cycles_per_aes_block / RMC2000_ASM.clock_hz
    )
    assert RMC2000_ASM.aes_seconds(20) == pytest.approx(
        2 * RMC2000_ASM.aes_seconds(10)
    )


def test_record_seconds_includes_padding_block():
    # A 16-byte payload pads to a second block, plus MAC hashing.
    one = RMC2000_ASM.record_seconds(16)
    assert one > RMC2000_ASM.aes_seconds(2)


def test_record_seconds_monotone_in_payload():
    previous = 0.0
    for size in (0, 16, 64, 256, 1024):
        cost = RMC2000_ASM.record_seconds(size)
        assert cost >= previous
        previous = cost


def test_c_port_slower_than_asm_everywhere():
    for blocks in (1, 16, 100):
        assert RMC2000_C_PORT.aes_seconds(blocks) > \
            10 * RMC2000_ASM.aes_seconds(blocks)


def test_workstation_dwarfs_the_board():
    assert WORKSTATION.record_seconds(256) < \
        RMC2000_ASM.record_seconds(256) / 100


def test_calibration_matches_e1_constants():
    # The presets must stay in sync with the E1 measurements recorded
    # in EXPERIMENTS.md; drift here silently distorts E4.
    assert RMC2000_C_PORT.cycles_per_aes_block == pytest.approx(512_000, rel=0.05)
    assert RMC2000_ASM.cycles_per_aes_block == pytest.approx(20_160, rel=0.05)


def test_rsa_private_op_is_why_rsa_was_dropped():
    # Over a second per op on the board at any plausible estimate.
    assert RMC2000_C_PORT.rsa_private_seconds() > 1.0
    assert WORKSTATION.rsa_private_seconds() < 0.1


def test_custom_model_arithmetic():
    model = CryptoCostModel(
        name="test", clock_hz=1000.0,
        cycles_per_aes_block=10.0, cycles_per_hash_block=20.0,
        cycles_per_rsa_private_op=30.0, cycles_per_rsa_public_op=40.0,
    )
    assert model.aes_seconds(5) == pytest.approx(0.05)
    assert model.hash_seconds(2) == pytest.approx(0.04)
    assert model.rsa_private_seconds() == pytest.approx(0.03)
    assert model.rsa_public_seconds() == pytest.approx(0.04)


def test_demo_keys_are_consistent():
    from repro.crypto.demokeys import DEMO_PSK, demo_rsa_key

    key = demo_rsa_key()
    assert key.n.bit_length() == 512
    assert key.p.mul(key.q) == key.n
    # d*e = 1 mod lcm or phi; verify via a roundtrip instead of algebra.
    from repro.crypto.bignum import BigNum

    message = BigNum.from_int(123456789)
    assert message.modexp(key.e, key.n).modexp(key.d, key.n) == message
    assert len(DEMO_PSK) == 16
