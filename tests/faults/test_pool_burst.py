"""Burst-arrival fault scenarios against the dynamic connection-slot
pool: clean ``redirector.refused.slots`` accounting, no deadlock, and
full recovery after the burst drains."""

from repro.faults.campaign import run_matrix, run_scenario
from repro.faults.scenarios import SCENARIOS, _RECOVERY_SOURCES


class TestRegistration:
    def test_burst_scenarios_registered_at_all_three_sizes(self):
        for slots in (3, 8, 32):
            assert f"pool-burst-{slots}" in SCENARIOS

    def test_slot_refusal_mapped_into_recovery_namespace(self):
        assert _RECOVERY_SOURCES["faults.recovered.slot_refusal"] == (
            "redirector.refused.slots"
        )


class TestBurstVerdicts:
    def _checks(self, verdict):
        return {check["name"]: check for check in verdict["checks"]}

    def test_burst_3_refuses_surplus_and_recovers(self):
        verdict = run_scenario("pool-burst-3", seed=424)
        assert verdict["ok"], self._checks(verdict)
        counters = verdict["counters"]
        assert counters["redirector.refused.slots"] >= 1
        assert counters["faults.recovered.slot_refusal"] == (
            counters["redirector.refused.slots"]
        )
        checks = self._checks(verdict)
        assert checks["refusals_account_for_failures"]["ok"]
        assert checks["refusal_events_recorded"]["ok"]
        assert checks["pool_drained"]["ok"]
        assert checks["recovered_after_burst"]["ok"]

    def test_burst_8_holds_the_same_contract(self):
        verdict = run_scenario("pool-burst-8", seed=424)
        assert verdict["ok"], self._checks(verdict)
        assert verdict["counters"]["redirector.refused.slots"] >= 1
        # Eight slots really ran: the handoff count covers the served
        # first wave plus the late client.
        assert verdict["counters"]["redirector.slots.handoffs"] >= 9

    def test_burst_32_holds_the_same_contract(self):
        verdict = run_scenario("pool-burst-32", seed=424)
        assert verdict["ok"], self._checks(verdict)
        assert verdict["counters"]["redirector.refused.slots"] >= 1

    def test_burst_is_deterministic(self):
        first = run_scenario("pool-burst-3", seed=77)
        second = run_scenario("pool-burst-3", seed=77)
        assert first == second


class TestMatrixIntegration:
    def test_matrix_subset_runs_burst_scenarios(self):
        report = run_matrix(["baseline", "pool-burst-3"], seed=424)
        assert report["verdict"] == "PASS"
        names = [v["name"] for v in report["scenarios"]]
        assert names == ["baseline", "pool-burst-3"]
        # The merged metrics section carries the slot-refusal recovery.
        counters = report["metrics"]["counters"]
        assert counters["faults.recovered.slot_refusal"] >= 1
