"""``python -m repro.faults``: the CLI surface through the real entry
point, mirroring the subprocess gates in ``tests/bench``/``tests/
analysis``.  The core acceptance property -- same seed, byte-identical
JSON -- is pinned on a fast subset here and on the full matrix in the
slow tier.
"""

import json
import os
import pathlib
import subprocess
import sys

import pytest

REPO = pathlib.Path(__file__).resolve().parent.parent.parent

pytestmark = pytest.mark.faults

#: A fast cross-section: one clean run, one link fault, one transport
#: fault, one memory fault.
SUBSET = "baseline,syn-loss,rst-midhandshake,xalloc-exhaustion"


def _run_module(*argv: str) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    return subprocess.run(
        [sys.executable, "-m", "repro.faults", *argv],
        capture_output=True, text=True, env=env, cwd=REPO, timeout=300,
    )


class TestList:
    def test_lists_at_least_ten_scenarios(self):
        completed = _run_module("list")
        assert completed.returncode == 0
        lines = [l for l in completed.stdout.splitlines() if l.strip()]
        assert len(lines) >= 10
        assert any(line.startswith("baseline") for line in lines)


class TestMatrixCli:
    def test_subset_passes_and_emits_valid_report(self, tmp_path):
        out = tmp_path / "report.json"
        completed = _run_module(
            "matrix", "--only", SUBSET, "--out", str(out), "--summary"
        )
        assert completed.returncode == 0, completed.stderr
        assert "PASS:" in completed.stdout
        report = json.loads(out.read_text())
        assert report["kind"] == "matrix"
        assert report["verdict"] == "PASS"
        assert report["total"] == 4
        names = [v["name"] for v in report["scenarios"]]
        assert names == SUBSET.split(",")

    def test_same_seed_byte_identical_reports(self, tmp_path):
        first = tmp_path / "first.json"
        second = tmp_path / "second.json"
        for out in (first, second):
            completed = _run_module(
                "matrix", "--only", SUBSET, "--seed", "11",
                "--out", str(out), "--summary",
            )
            assert completed.returncode == 0, completed.stderr
        assert first.read_bytes() == second.read_bytes()

    def test_jobs_fanout_byte_identical_to_sequential(self, tmp_path):
        """``--jobs 4`` merges child results in scenario order, so the
        report bytes match a sequential run for the same seed."""
        sequential = tmp_path / "sequential.json"
        fanned = tmp_path / "fanned.json"
        for out, jobs in ((sequential, "1"), (fanned, "4")):
            completed = _run_module(
                "matrix", "--only", SUBSET, "--seed", "11",
                "--jobs", jobs, "--out", str(out), "--summary",
            )
            assert completed.returncode == 0, completed.stderr
        assert sequential.read_bytes() == fanned.read_bytes()

    def test_stdout_json_is_the_canonical_encoding(self):
        completed = _run_module("run", "baseline")
        assert completed.returncode == 0, completed.stderr
        report = json.loads(completed.stdout)
        assert completed.stdout == (
            json.dumps(report, indent=1, sort_keys=True) + "\n"
        )

    def test_no_wall_clock_leaks_into_reports(self, tmp_path):
        out = tmp_path / "report.json"
        assert _run_module("run", "baseline", "--out", str(out),
                           "--summary").returncode == 0
        text = out.read_text()
        for forbidden in ("wall", "created", "unix", "timestamp"):
            assert forbidden not in text

    def test_unknown_scenario_exits_two(self):
        completed = _run_module("run", "no-such-scenario")
        assert completed.returncode == 2
        assert "unknown scenario" in completed.stderr


class TestSloFlag:
    """``--slo``: evaluate repro.obs.slo rules against the report.

    The verdict goes to stderr so stdout stays the canonical JSON
    encoding regardless of whether rules are in play.
    """

    def test_met_rules_keep_exit_zero_and_stdout_canonical(self, tmp_path):
        rules = tmp_path / "rules.toml"
        rules.write_text(
            '[[rule]]\nname = "nothing-failed"\npath = "failed"\n'
            'op = "=="\nthreshold = 0.0\nseverity = "error"\n',
            encoding="utf-8",
        )
        completed = _run_module("run", "baseline", "--slo", str(rules))
        assert completed.returncode == 0, completed.stderr
        assert "slo verdict: PASS" in completed.stderr
        report = json.loads(completed.stdout)
        assert completed.stdout == (
            json.dumps(report, indent=1, sort_keys=True) + "\n"
        )

    def test_violated_error_rule_exits_one(self, tmp_path):
        rules = tmp_path / "rules.toml"
        rules.write_text(
            '[[rule]]\nname = "impossible-pass-count"\npath = "passed"\n'
            'op = ">="\nthreshold = 99.0\nseverity = "error"\n',
            encoding="utf-8",
        )
        completed = _run_module("run", "baseline", "--slo", str(rules))
        assert completed.returncode == 1
        assert "FAIL impossible-pass-count [error]" in completed.stderr
        assert "slo verdict: FAIL" in completed.stderr
        # The report itself is still green and still on stdout.
        assert json.loads(completed.stdout)["verdict"] == "PASS"

    def test_invalid_rules_file_exits_two(self, tmp_path):
        bad = tmp_path / "bad.toml"
        bad.write_text("not [ toml", encoding="utf-8")
        completed = _run_module("run", "baseline", "--slo", str(bad))
        assert completed.returncode == 2
        assert "invalid TOML" in completed.stderr


@pytest.mark.slow
class TestFullMatrix:
    def test_full_matrix_deterministic_and_green(self, tmp_path):
        """The acceptance criterion verbatim: the whole matrix passes
        (zero unhandled exceptions anywhere) and the same seed yields
        byte-identical JSON."""
        first = tmp_path / "first.json"
        second = tmp_path / "second.json"
        for out in (first, second):
            completed = _run_module("matrix", "--out", str(out),
                                    "--summary")
            assert completed.returncode == 0, (
                completed.stdout + completed.stderr
            )
        assert first.read_bytes() == second.read_bytes()
        report = json.loads(first.read_text())
        assert report["total"] >= 10
        assert report["failed"] == 0
        for verdict in report["scenarios"]:
            assert verdict["ok"], verdict["checks"]
