"""Unit tests for the hardening primitives the fault campaign leans on.

The campaign tests prove the layers recover end to end; these pin the
individual contracts -- timeout vs EOF distinction, buffered partial
reads, the session ceiling's typed error, and the allocate-once
buffer pool over the no-free allocator.
"""

import pytest

from repro.crypto.demokeys import DEMO_PSK
from repro.crypto.prng import CipherRng
from repro.dync.runtime.xalloc import (
    XallocError,
    XmemAllocator,
    XmemBufferPool,
)
from repro.issl import (
    IsslContext,
    IsslSessionLimitError,
    RMC2000_PORT,
    TransportTimeout,
)
from repro.issl.transport import BsdTransport, TransportError
from repro.net.bsd import SocketError
from repro.obs import Obs


def _drain(generator):
    try:
        while True:
            next(generator)
    except StopIteration as stop:
        return stop.value


class _ScriptedSock:
    """Stands in for a BsdSocket: recv() plays back a script of chunks
    and exceptions."""

    def __init__(self, script):
        self._script = list(script)

    def recv(self, nbytes, timeout=None):
        item = self._script.pop(0)
        if isinstance(item, Exception):
            raise item
        return item[:nbytes]
        yield  # pragma: no cover -- generator protocol


class TestBsdTransportTimeouts:
    def test_timeout_maps_to_transport_timeout(self):
        transport = BsdTransport.__new__(BsdTransport)
        transport._sock = _ScriptedSock([SocketError("recv timed out")])
        transport._buffer = b""
        with pytest.raises(TransportTimeout):
            _drain(transport.recv_exactly(4, timeout=0.1))

    def test_other_socket_errors_stay_transport_errors(self):
        transport = BsdTransport.__new__(BsdTransport)
        transport._sock = _ScriptedSock([SocketError("connection reset")])
        transport._buffer = b""
        with pytest.raises(TransportError) as excinfo:
            _drain(transport.recv_exactly(4))
        assert not isinstance(excinfo.value, TransportTimeout)

    def test_partial_bytes_survive_a_timeout(self):
        """The property handshake retry safety rests on: a timed-out
        read must not lose the bytes that did arrive."""
        transport = BsdTransport.__new__(BsdTransport)
        transport._sock = _ScriptedSock(
            [b"ab", SocketError("recv timed out"), b"cd"]
        )
        transport._buffer = b""
        with pytest.raises(TransportTimeout):
            _drain(transport.recv_exactly(4, timeout=0.1))
        assert transport._buffer == b"ab"
        assert _drain(transport.recv_exactly(4)) == b"abcd"

    def test_eof_mid_message_is_not_a_timeout(self):
        transport = BsdTransport.__new__(BsdTransport)
        transport._sock = _ScriptedSock([b"ab", b""])
        transport._buffer = b""
        with pytest.raises(TransportError, match="EOF after 2 of 4"):
            _drain(transport.recv_exactly(4))


class TestSessionCeiling:
    def _context(self) -> IsslContext:
        return IsslContext(RMC2000_PORT, CipherRng(b"test"),
                           psk=DEMO_PSK)

    def test_limit_error_is_typed_and_catchable_as_issl_error(self):
        from repro.issl import IsslError

        context = self._context()
        for _ in range(RMC2000_PORT.max_sessions):
            context.acquire_session_slot()
        with pytest.raises(IsslSessionLimitError) as excinfo:
            context.acquire_session_slot()
        assert isinstance(excinfo.value, IsslError)
        assert "session limit reached" in str(excinfo.value)

    def test_release_reopens_the_slot(self):
        context = self._context()
        for _ in range(RMC2000_PORT.max_sessions):
            context.acquire_session_slot()
        context.release_session_slot()
        context.acquire_session_slot()  # must not raise
        assert context.sessions_active == RMC2000_PORT.max_sessions


class TestXmemBufferPool:
    def test_allocates_lazily_and_recycles(self):
        obs = Obs()
        allocator = XmemAllocator(capacity=4096, obs=obs)
        pool = XmemBufferPool(allocator, slots=2, slot_bytes=256, obs=obs)
        first = pool.acquire()
        second = pool.acquire()
        assert first != second
        assert allocator.allocations == 2
        assert pool.in_use == 2
        pool.release(first)
        assert pool.in_use == 1
        # Recycled, not re-allocated: the no-free allocator stays flat.
        assert pool.acquire() == first
        assert allocator.allocations == 2

    def test_exhaustion_refuses_with_counter(self):
        obs = Obs()
        allocator = XmemAllocator(capacity=4096, obs=obs)
        pool = XmemBufferPool(allocator, slots=1, slot_bytes=64, obs=obs)
        pool.acquire()
        with pytest.raises(XallocError, match="buffer pool exhausted"):
            pool.acquire()
        counters = obs.metrics.snapshot()["counters"]
        assert counters["xalloc.pool.refusals"] == 1
        assert pool.refusals == 1

    def test_underlying_allocator_failure_counts_as_refusal(self):
        allocator = XmemAllocator(capacity=100)
        pool = XmemBufferPool(allocator, slots=4, slot_bytes=80)
        pool.acquire()
        with pytest.raises(XallocError):
            pool.acquire()  # second carve exceeds xmem capacity
        assert pool.refusals == 1
        assert pool.in_use == 1

    def test_rejects_nonpositive_slots(self):
        with pytest.raises(ValueError, match="slots"):
            XmemBufferPool(XmemAllocator(capacity=64), slots=0,
                           slot_bytes=16)


class TestIsslExceptionHierarchy:
    def test_timeouts_are_issl_errors(self):
        from repro.issl import IsslError, IsslTimeout

        assert issubclass(IsslTimeout, IsslError)
        assert issubclass(IsslSessionLimitError, IsslError)
        assert issubclass(TransportTimeout, TransportError)
