"""The soak satellite: the redirector under sustained mixed faults.

Marked ``slow``: excluded from the default tier-1 run (see
``pyproject.toml``), run explicitly in CI with ``-m slow``.  The checks
are the exhaustion properties the paper's static design makes scary --
no wedged handler, every session slot and xmem buffer returned, the
no-free allocator flat, request accounting exact.
"""

import pytest

from repro.faults.campaign import run_soak

pytestmark = [pytest.mark.faults, pytest.mark.slow]


class TestSoak:
    def test_minutes_of_mixed_faults_no_leaks_no_deadlock(self):
        report = run_soak(sim_minutes=1.0)
        failing = [c for c in report["checks"] if not c["ok"]]
        assert report["verdict"] == "PASS", failing
        assert report["waves"] >= 4
        # Every kind of mischief got its turn.
        assert set(report["mischief"]) == {"silent", "rst", "stall",
                                           "fin"}
        checks = {c["name"]: c for c in report["checks"]}
        assert checks["sessions_released"]["ok"]
        assert checks["buffers_released"]["ok"]
        assert checks["xalloc_flat"]["ok"]
        assert checks["request_accounting_exact"]["ok"]
        # Counters prove both sides: faults fired, layers recovered.
        counters = report["counters"]
        assert counters["faults.injected.drop"] >= 1
        assert counters["faults.recovered.tcp_retransmit"] >= 1
        assert counters["faults.recovered.handler"] >= 1

    def test_same_seed_same_soak_report(self):
        assert run_soak(sim_minutes=0.2, seed=3) == run_soak(
            sim_minutes=0.2, seed=3
        )

    def test_rejects_nonpositive_duration(self):
        with pytest.raises(ValueError, match="positive"):
            run_soak(sim_minutes=0)
