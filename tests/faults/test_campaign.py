"""Campaign-level tests: scenarios recover, verdicts are deterministic.

These run real scenarios end to end (simulated time, so still seconds
of wall clock) and pin the acceptance contract: every named scenario
passes, recovery counters are present and non-zero where the fault
demands recovery, and the same seed produces the same report.
"""

import pytest

from repro.obs import DEFAULT_TAIL
from repro.faults.campaign import (
    DEFAULT_SEED,
    REPORT_SCHEMA_VERSION,
    run_matrix,
    run_scenario,
    scenario_names,
)
from repro.faults import scenarios as scenario_mod

pytestmark = pytest.mark.faults


class TestRegistry:
    def test_at_least_ten_named_scenarios(self):
        assert len(scenario_names()) >= 10

    def test_unknown_scenario_raises(self):
        with pytest.raises(KeyError, match="no-such-scenario"):
            run_scenario("no-such-scenario")
        with pytest.raises(KeyError, match="bogus"):
            run_matrix(["baseline", "bogus"])


class TestVerdicts:
    def test_syn_loss_recovers_via_retransmit(self):
        verdict = run_scenario("syn-loss")
        assert verdict["ok"], verdict["checks"]
        counters = verdict["counters"]
        assert counters["faults.injected.drop"] == 1
        assert counters["faults.recovered.tcp_retransmit"] >= 1

    def test_silent_peer_times_out_and_retries(self):
        verdict = run_scenario("silent-peer")
        assert verdict["ok"], verdict["checks"]
        counters = verdict["counters"]
        assert counters["issl.handshakes.timeouts"] == 2
        assert counters["issl.handshakes.retries"] == 1
        assert counters["faults.recovered.handshake_timeout"] == 2

    def test_corrupt_record_tears_down_via_mac(self):
        verdict = run_scenario("corrupt-app-record")
        assert verdict["ok"], verdict["checks"]
        counters = verdict["counters"]
        assert counters["faults.injected.corrupt"] == 1
        assert counters["issl.records.mac_failures"] >= 1
        assert counters["faults.recovered.mac_teardown"] >= 1

    def test_slot_exhaustion_refuses_and_recycles(self):
        verdict = run_scenario("slot-exhaustion")
        assert verdict["ok"], verdict["checks"]
        counters = verdict["counters"]
        assert counters["redirector.refused.sessions"] >= 1
        assert counters["faults.recovered.session_refusal"] >= 1

    def test_xalloc_exhaustion_refuses_with_counter(self):
        verdict = run_scenario("xalloc-exhaustion")
        assert verdict["ok"], verdict["checks"]
        counters = verdict["counters"]
        assert counters["redirector.refused.memory"] >= 1
        assert counters["faults.recovered.memory_refusal"] >= 1
        assert counters["xalloc.pool.refusals"] >= 1

    def test_stalled_peer_hits_connection_deadline(self):
        verdict = run_scenario("stalled-peer")
        assert verdict["ok"], verdict["checks"]
        assert verdict["counters"][
            "redirector.deadline.expired"] >= 1

    def test_backend_outage_fails_closed(self):
        verdict = run_scenario("backend-outage")
        assert verdict["ok"], verdict["checks"]
        assert verdict["counters"][
            "redirector.errors.backend"] >= 1


class TestCrashContainment:
    def test_escaped_exception_becomes_failed_verdict(self, monkeypatch):
        def exploding(seed):
            raise RuntimeError("handler blew up")

        monkeypatch.setitem(
            scenario_mod.SCENARIOS, "exploding",
            (exploding, "a scenario that crashes"),
        )
        verdict = run_scenario("exploding")
        assert verdict["ok"] is False
        [check] = verdict["checks"]
        assert check["name"] == "no_unhandled_exception"
        assert "handler blew up" in check["detail"]


class TestRecorderEmbedding:
    def test_failed_scenario_carries_the_recorder_tail(self, monkeypatch):
        """A red verdict ships the last-N flight-recorder events -- the
        'why' alongside the 'what' -- capped at DEFAULT_TAIL."""
        def failing(seed):
            world = scenario_mod.build_world(seed, client_hosts=1)
            world.obs.recorder.error("faults", "forced",
                                     "deliberate failure")
            return scenario_mod._verdict(
                "always-fails", world,
                [scenario_mod._check("forced", False, "always fails")],
            )

        monkeypatch.setitem(
            scenario_mod.SCENARIOS, "always-fails",
            (failing, "a scenario that always fails"),
        )
        verdict = run_scenario("always-fails")
        assert verdict["ok"] is False
        events = verdict["events"]
        assert events
        assert len(events) <= DEFAULT_TAIL
        assert any(e["msg"] == "deliberate failure" for e in events)
        for event in events:
            assert set(event) == {"seq", "t", "sev", "cat", "tid", "msg"}

    def test_passing_scenario_has_no_events_key(self):
        """Green verdicts stay byte-identical to the pre-recorder
        reports: no events section at all."""
        verdict = run_scenario("baseline")
        assert verdict["ok"], verdict["checks"]
        assert "events" not in verdict


class TestMatrix:
    def test_subset_report_shape_and_verdict(self):
        report = run_matrix(["baseline", "rst-midhandshake"])
        assert report["schema"] == REPORT_SCHEMA_VERSION
        assert report["seed"] == DEFAULT_SEED
        assert report["total"] == 2
        assert report["passed"] == 2
        assert report["verdict"] == "PASS"
        assert [v["name"] for v in report["scenarios"]] == [
            "baseline", "rst-midhandshake",
        ]

    def test_same_seed_same_report(self):
        names = ["baseline", "hello-loss", "fin-midhandshake"]
        assert run_matrix(names, seed=5) == run_matrix(names, seed=5)

    def test_report_embeds_merged_metrics_section(self):
        report = run_matrix(["baseline", "syn-loss"])
        counters = report["metrics"]["counters"]
        # syn-loss's injection shows up in the fleet-wide merge.
        assert counters["faults.injected.drop"] == 1
        assert list(counters) == sorted(counters)
        # The per-scenario side channel never leaks into the verdicts.
        assert all("_registry" not in v for v in report["scenarios"])
