"""Unit tests for the fault injectors and the link-layer hook chain.

Everything here is synthetic -- hand-built frames and a bare
:class:`~repro.net.link.EthernetSegment` -- so each injector's contract
is pinned without dragging in TCP or issl.  The end-to-end behaviour of
the same injectors lives in the campaign tests.
"""

import random

import pytest

from repro.dync.runtime.xalloc import XallocError
from repro.faults import injectors as inj
from repro.net.addresses import Ipv4Address, MacAddress
from repro.net.link import EthernetSegment, NetworkInterface
from repro.net.packet import (
    ETHERTYPE_ARP,
    ETHERTYPE_IP,
    IPPROTO_TCP,
    ArpPacket,
    EthernetFrame,
    IpPacket,
    TCP_ACK,
    TCP_SYN,
    TcpSegment,
)
from repro.net.sim import Simulator
from repro.obs import Obs

MAC_A = MacAddress(0x0A0000000001)
MAC_B = MacAddress(0x0A0000000002)
IP_A = Ipv4Address.parse("10.0.0.1")
IP_B = Ipv4Address.parse("10.0.0.2")


def tcp_frame(payload: bytes = b"", flags: int = TCP_ACK) -> EthernetFrame:
    segment = TcpSegment(
        src_port=1000, dst_port=2000, seq=1, ack=1,
        flags=flags, window=4096, payload=payload,
    )
    packet = IpPacket(src=IP_A, dst=IP_B, protocol=IPPROTO_TCP,
                      payload=segment)
    return EthernetFrame(src=MAC_A, dst=MAC_B, ethertype=ETHERTYPE_IP,
                         payload=packet)


def arp_frame() -> EthernetFrame:
    arp = ArpPacket(opcode=1, sender_mac=MAC_A, sender_ip=IP_A,
                    target_mac=MAC_B, target_ip=IP_B)
    return EthernetFrame(src=MAC_A, dst=MAC_B, ethertype=ETHERTYPE_ARP,
                         payload=arp)


class TestPredicates:
    def test_is_tcp_never_matches_arp(self):
        assert inj.is_tcp(tcp_frame())
        assert not inj.is_tcp(arp_frame())

    def test_has_tcp_payload(self):
        assert inj.has_tcp_payload(tcp_frame(b"data"))
        assert not inj.has_tcp_payload(tcp_frame(b""))
        assert not inj.has_tcp_payload(arp_frame())

    def test_is_tcp_syn(self):
        assert inj.is_tcp_syn(tcp_frame(flags=TCP_SYN))
        assert not inj.is_tcp_syn(tcp_frame(flags=TCP_ACK))

    def test_tcp_payload_prefix(self):
        predicate = inj.tcp_payload_prefix(b"\x17")
        assert predicate(tcp_frame(b"\x17\x03\x00"))
        assert not predicate(tcp_frame(b"\x16\x03\x00"))
        assert not predicate(arp_frame())


class TestMatchers:
    def test_match_nth_counts_only_qualifying_frames(self):
        matcher = inj.match_nth(1, inj.has_tcp_payload)
        frames = [tcp_frame(), tcp_frame(b"a"), arp_frame(),
                  tcp_frame(b"b"), tcp_frame(b"c")]
        hits = [matcher(frame, i) for i, frame in enumerate(frames)]
        assert hits == [False, False, False, True, False]

    def test_match_every_with_start_and_limit(self):
        matcher = inj.match_every(2, start=1, limit=2)
        hits = [matcher(tcp_frame(), i) for i in range(8)]
        # Qualifying ordinals 1, 3 match; limit stops the rest.
        assert hits == [False, True, False, True, False, False,
                        False, False]

    def test_match_every_rejects_nonpositive_k(self):
        with pytest.raises(ValueError, match="positive"):
            inj.match_every(0)

    def test_match_probability_is_seed_deterministic(self):
        def draws(seed):
            matcher = inj.match_probability(0.5, random.Random(seed))
            return [matcher(tcp_frame(), i) for i in range(50)]

        assert draws(7) == draws(7)
        assert draws(7) != draws(8)

    def test_match_probability_validates_range(self):
        with pytest.raises(ValueError, match="probability"):
            inj.match_probability(1.5, random.Random(0))


class TestFrameInjectors:
    def test_drop_returns_no_deliveries_and_counts(self):
        obs = Obs()
        drop = inj.DropFrames(inj.match_all(), obs=obs)
        assert drop(tcp_frame(), 0, 0.0) == []
        assert drop.injected == 1
        assert obs.metrics.snapshot()["counters"][
            "faults.injected.drop"] == 1

    def test_unmatched_frames_pass_through_untouched(self):
        drop = inj.DropFrames(inj.match_all(inj.is_tcp_syn))
        frame = tcp_frame(b"data")
        assert drop(frame, 0, 0.25) == [(frame, 0.25)]
        assert drop.injected == 0

    def test_duplicate_and_delay(self):
        frame = tcp_frame(b"data")
        duplicate = inj.DuplicateFrames(inj.match_all())
        assert duplicate(frame, 0, 0.0) == [(frame, 0.0), (frame, 0.0)]
        delay = inj.DelayFrames(inj.match_all(), extra_s=0.3)
        assert delay(frame, 0, 0.1) == [(frame, 0.4)]

    def test_corrupt_flips_exactly_one_bit(self):
        corrupt = inj.CorruptFrames(inj.match_all(), byte_offset=1, bit=3)
        frame = tcp_frame(b"\x00\x00\x00")
        [(mutated, _)] = corrupt(frame, 0, 0.0)
        assert mutated.payload.payload.payload == b"\x00\x08\x00"
        # The original frozen dataclass is untouched.
        assert frame.payload.payload.payload == b"\x00\x00\x00"

    def test_corrupt_passes_payloadless_frames_through(self):
        corrupt = inj.CorruptFrames(inj.match_all())
        frame = tcp_frame(b"")
        assert corrupt(frame, 0, 0.0) == [(frame, 0.0)]
        assert corrupt.injected == 1  # matched, but nothing to flip


class TestHookChain:
    def _segment(self):
        sim = Simulator()
        segment = EthernetSegment(sim)
        sender = NetworkInterface(MAC_A, "a")
        receiver = NetworkInterface(MAC_B, "b")
        segment.attach(sender)
        segment.attach(receiver)
        received = []
        receiver.on_receive(received.append)
        return sim, segment, sender, received

    def test_injectors_compose_in_order(self):
        sim, segment, sender, received = self._segment()
        # Duplicate first, then drop one copy of anything duplicated:
        # order matters and both hooks see the chain's intermediate
        # state rather than the raw transmit.
        inj.install(
            segment,
            inj.DuplicateFrames(inj.match_all(inj.has_tcp_payload)),
            inj.DropFrames(inj.match_nth(0, inj.has_tcp_payload)),
        )
        sender.transmit(tcp_frame(b"data"))
        sim.run()
        assert len(received) == 1
        assert segment.frames_dropped == 0  # one copy still delivered

    def test_full_drop_counts_and_skips_medium(self):
        sim, segment, sender, received = self._segment()
        inj.install(segment, inj.DropFrames(inj.match_all()))
        before = segment._medium_free_at
        sender.transmit(tcp_frame(b"data"))
        sim.run()
        assert received == []
        assert segment.frames_dropped == 1
        assert segment._medium_free_at == before

    def test_delay_reorders_delivery(self):
        sim, segment, sender, received = self._segment()
        inj.install(
            segment,
            inj.DelayFrames(inj.match_nth(0, inj.has_tcp_payload),
                            extra_s=0.5),
        )
        sender.transmit(tcp_frame(b"first"))
        sender.transmit(tcp_frame(b"second"))
        sim.run()
        payloads = [f.payload.payload.payload for f in received]
        assert payloads == [b"second", b"first"]

    def test_uninstall_restores_clean_delivery(self):
        sim, segment, sender, received = self._segment()
        (drop,) = inj.install(segment, inj.DropFrames(inj.match_all()))
        sender.transmit(tcp_frame(b"lost"))
        inj.uninstall(segment, drop)
        sender.transmit(tcp_frame(b"kept"))
        sim.run()
        assert [f.payload.payload.payload for f in received] == [b"kept"]

    def test_drop_filter_composes_with_chain(self):
        """The legacy API is a hook at the head of the same chain."""
        sim, segment, sender, received = self._segment()
        duplicate = inj.DuplicateFrames(
            inj.match_all(inj.has_tcp_payload)
        )
        inj.install(segment, duplicate)
        segment.set_drop_filter(lambda frame, index: index == 0)
        sender.transmit(tcp_frame(b"dropped"))
        sender.transmit(tcp_frame(b"doubled"))
        sim.run()
        assert [f.payload.payload.payload for f in received] == [
            b"doubled", b"doubled",
        ]
        assert segment.frames_dropped == 1
        # The dropped frame never reached the later duplicator.
        assert duplicate.injected == 1

    def test_set_drop_filter_replaces_only_itself(self):
        sim, segment, sender, received = self._segment()
        duplicate = inj.DuplicateFrames(inj.match_all())
        inj.install(segment, duplicate)
        segment.set_drop_filter(lambda frame, index: True)
        segment.set_drop_filter(None)
        sender.transmit(tcp_frame(b"data"))
        sim.run()
        assert len(received) == 2  # duplicator survived the unset
        assert segment.frames_dropped == 0


class FakeTransport:
    """Scripted inner transport for CorruptingTransport tests."""

    def __init__(self, chunks):
        self._chunks = list(chunks)
        self.at_eof = False

    def recv_exactly(self, nbytes, timeout=None):
        data = self._chunks.pop(0)
        assert len(data) == nbytes
        return data
        yield  # pragma: no cover -- makes this a generator


class TestCorruptingTransport:
    HEADER_0 = bytes([23, 3, 0, 0, 4])
    BODY_0 = b"\x00\x00\x00\x00"
    HEADER_1 = bytes([23, 3, 0, 0, 2])
    BODY_1 = b"\xaa\xbb"

    def _drain(self, generator):
        try:
            while True:
                next(generator)
        except StopIteration as stop:
            return stop.value

    def test_flips_middle_bit_of_target_record_only(self):
        inner = FakeTransport(
            [self.HEADER_0, self.BODY_0, self.HEADER_1, self.BODY_1]
        )
        transport = inj.CorruptingTransport(inner, record_index=1)
        assert self._drain(transport.recv_exactly(5)) == self.HEADER_0
        assert self._drain(transport.recv_exactly(4)) == self.BODY_0
        assert self._drain(transport.recv_exactly(5)) == self.HEADER_1
        assert self._drain(transport.recv_exactly(2)) == b"\xaa\xba"
        assert transport.injected == 1
        assert transport.records_seen == 2

    def test_zero_length_record_keeps_stream_in_sync(self):
        empty_header = bytes([23, 3, 0, 0, 0])
        inner = FakeTransport(
            [empty_header, self.HEADER_1, self.BODY_1]
        )
        transport = inj.CorruptingTransport(inner, record_index=1)
        assert self._drain(transport.recv_exactly(5)) == empty_header
        assert self._drain(transport.recv_exactly(5)) == self.HEADER_1
        assert self._drain(transport.recv_exactly(2)) == b"\xaa\xba"


class TestMemoryAndSchedulerFaults:
    def test_exhausting_allocator_fails_at_ordinal(self):
        allocator = inj.ExhaustingXmemAllocator(capacity=4096, fail_at=3)
        pointer_a = allocator.xalloc(16)
        pointer_b = allocator.xalloc(16)
        assert pointer_a != pointer_b
        with pytest.raises(XallocError, match="injected exhaustion"):
            allocator.xalloc(16)
        # Exhaustion is permanent, like real xmem with no free.
        with pytest.raises(XallocError):
            allocator.xalloc(16)
        assert allocator.allocations == 2

    def test_exhausting_allocator_rejects_bad_fail_at(self):
        with pytest.raises(ValueError, match="positive"):
            inj.ExhaustingXmemAllocator(capacity=64, fail_at=0)

    def test_starving_costate_is_bounded(self):
        obs = Obs()
        generator = inj.starving_costate(passes=5, busy_s=0.25, obs=obs)
        yields = list(generator)
        assert yields == [0.25] * 5
        assert obs.metrics.snapshot()["counters"][
            "faults.injected.starve"] == 5
