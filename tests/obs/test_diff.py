"""Regression forensics: aligning two runs and naming what moved.

These tests exercise the pure data->text layer on synthetic documents;
the CLI and bench integration get their own subprocess coverage.
"""

import pytest

from repro.obs.diff import (
    diff_documents,
    diff_flames,
    diff_metrics,
    diff_routines,
    diff_telemetry,
    diff_trace_trees,
    forensics_text,
    snapshot_first_divergence,
)


def _rows(**cycles):
    return [{"routine": name, "self cycles": value}
            for name, value in cycles.items()]


class TestDiffRoutines:
    def test_largest_magnitude_first_with_signed_deltas(self):
        out = diff_routines(
            _rows(mix_columns=100, sub_bytes=50, add_round_key=10),
            _rows(mix_columns=150, sub_bytes=45, add_round_key=10),
        )
        assert [r["routine"] for r in out] == ["mix_columns", "sub_bytes"]
        assert out[0]["delta"] == 50
        assert out[0]["pct"] == pytest.approx(50.0)
        assert out[1]["delta"] == -5

    def test_added_and_removed_routines_diff_against_zero(self):
        out = diff_routines(_rows(old=10), _rows(new=30))
        assert [(r["routine"], r["delta"]) for r in out] == [
            ("new", 30), ("old", -10),
        ]
        assert out[0]["pct"] is None

    def test_identical_profiles_yield_nothing(self):
        assert diff_routines(_rows(f=5), _rows(f=5)) == []


class TestDiffFlames:
    def test_only_moved_stacks_survive_with_signed_weights(self):
        base = ["main;aes_encrypt 100", "main;aes_set_key 20"]
        current = ["main;aes_encrypt 160", "main;aes_set_key 20",
                   "main;mix_columns 5"]
        assert diff_flames(base, current) == [
            "main;aes_encrypt +60", "main;mix_columns +5",
        ]


class TestDiffMetrics:
    def test_changed_added_removed(self):
        out = diff_metrics({"a": 1.0, "b": 2.0, "gone": 3.0},
                           {"a": 1.0, "b": 2.5, "new": 4.0})
        assert [(r["metric"], r["status"]) for r in out] == [
            ("b", "changed"), ("gone", "removed"), ("new", "added"),
        ]


class TestDiffTelemetry:
    def test_rows_sorted_by_divergence_time(self):
        base = {
            "early": {"times": [0.0, 1.0], "values": [1.0, 2.0]},
            "late": {"times": [0.0, 5.0], "values": [1.0, 2.0]},
            "same": {"times": [0.0], "values": [9.0]},
        }
        current = {
            "early": {"times": [0.0, 1.0], "values": [1.0, 3.0]},
            "late": {"times": [0.0, 5.0], "values": [1.0, 4.0]},
            "same": {"times": [0.0], "values": [9.0]},
        }
        out = diff_telemetry(base, current)
        assert [r["series"] for r in out] == ["early", "late"]
        assert out[0]["diverges_at"] == 1.0

    def test_one_sided_series_diverge_at_their_first_sample(self):
        out = diff_telemetry({}, {"s": {"times": [2.0], "values": [1.0]}})
        assert out == [{"series": "s", "status": "current-only",
                        "diverges_at": 2.0}]


class TestSnapshotFirstDivergence:
    def _doc(self, cycles_values):
        return {
            "obs": {
                "aes_profile": {
                    "c": {"telemetry": {
                        "cpu.cycles": {"times": [0.0, 0.5],
                                       "values": cycles_values},
                    }},
                },
                "redirector": {"telemetry": {}},
            },
        }

    def test_names_scenario_series_and_time(self):
        hit = snapshot_first_divergence(
            self._doc([0.0, 10.0]), self._doc([0.0, 20.0])
        )
        assert hit == {"scenario": "aes:c", "series": "cpu.cycles",
                       "diverges_at": 0.5}

    def test_identical_snapshots_have_no_divergence(self):
        doc = self._doc([0.0, 10.0])
        assert snapshot_first_divergence(doc, self._doc([0.0, 10.0])) is None
        # Snapshots without embedded telemetry (pre-v3) also compare.
        assert snapshot_first_divergence({}, {}) is None


class TestDiffTraceTrees:
    def _chrome(self, spans):
        # spans: (span_id, parent, name, dur)
        return {"traceEvents": [
            {"ph": "X", "name": name, "ts": 0.0, "dur": dur,
             "pid": 1, "tid": "t",
             "args": {"span_id": sid, "parent": parent, "trace": 1}}
            for sid, parent, name, dur in spans
        ]}

    def test_paths_match_by_name_hierarchy_not_span_id(self):
        base = self._chrome([(1, None, "client.request", 100.0),
                             (2, 1, "service.request", 60.0)])
        # Same logical tree, different ids, slower service hop.
        current = self._chrome([(7, None, "client.request", 100.0),
                                (9, 7, "service.request", 90.0)])
        out = diff_trace_trees(base, current)
        assert len(out) == 1
        assert out[0]["path"] == "client.request/service.request"
        assert out[0]["delta_dur_us"] == pytest.approx(30.0)

    def test_repeated_paths_aggregate_counts_and_durations(self):
        base = self._chrome([(1, None, "req", 10.0)])
        current = self._chrome([(1, None, "req", 10.0),
                                (2, None, "req", 15.0)])
        out = diff_trace_trees(base, current)
        assert out[0]["baseline_count"] == 1
        assert out[0]["current_count"] == 2
        assert out[0]["delta_dur_us"] == pytest.approx(15.0)


class TestDiffDocuments:
    def _snapshot(self):
        return {"schema_version": 1, "tag": "x", "workload": "quick",
                "experiments": {}, "obs": {}, "wall_seconds": {},
                "created_unix": 0.0, "harness": {}}

    def test_two_snapshots_render_a_snapshot_diff(self):
        text, changed = diff_documents(self._snapshot(), self._snapshot())
        assert not changed
        assert "no differences" in text

    def test_two_traces_render_a_trace_diff(self):
        text, changed = diff_documents({"traceEvents": []},
                                       {"traceEvents": []})
        assert not changed
        assert text.startswith("trace diff:")

    def test_mixed_kinds_are_rejected(self):
        with pytest.raises(ValueError, match="cannot diff"):
            diff_documents(self._snapshot(), {"traceEvents": []})


class TestForensicsText:
    def _doc(self, mix_columns):
        return {
            "obs": {
                "aes_profile": {"c": {
                    "routines": _rows(mix_columns=mix_columns,
                                      sub_bytes=50),
                    "telemetry": {"cpu.cycles": {
                        "times": [0.0, 0.25],
                        "values": [0.0, float(mix_columns)],
                    }},
                }},
                "redirector": {
                    "telemetry": {},
                    "recorder_tail": [
                        {"seq": 3, "t": 0.0984, "sev": "DEBUG",
                         "cat": "net.tcp", "tid": "tcp:rmc",
                         "msg": "ESTABLISHED->CLOSE_WAIT"},
                    ],
                },
            },
        }

    def test_names_routine_divergence_and_tail(self):
        text = forensics_text(self._doc(100), self._doc(150))
        assert "mix_columns" in text
        assert "+50 cycles (+50.0%)" in text
        assert "first telemetry divergence: aes:c/cpu.cycles" in text
        assert "at t=0.250000000s" in text
        assert "flight recorder tail" in text
        assert "ESTABLISHED->CLOSE_WAIT" in text

    def test_top_caps_the_routine_table(self):
        base = {"obs": {"aes_profile": {"c": {
            "routines": _rows(a=1, b=2, c=3, d=4, e=5)}}}}
        current = {"obs": {"aes_profile": {"c": {
            "routines": _rows(a=10, b=20, c=30, d=40, e=50)}}}}
        text = forensics_text(base, current, top=3)
        assert "... and 2 more routine(s)" in text

    def test_tolerates_snapshots_without_forensics_sections(self):
        text = forensics_text({}, {})
        assert "routine cycle profiles: identical" in text
        assert "divergence: none" in text

    def test_identical_documents_report_no_divergence(self):
        doc = self._doc(100)
        text = forensics_text(doc, self._doc(100))
        assert "divergence: none (series identical)" in text
