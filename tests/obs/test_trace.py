"""Tracer behaviour: nesting, ordering, exports, and the null variant.

The Chrome export is pinned by a golden file
(``golden_chrome_trace.json``): the trace_event format is consumed by
external viewers, so its shape is a compatibility contract, not an
implementation detail.  Regenerate with
``python tests/obs/test_trace.py`` after a *deliberate* format change.
"""

import json
import pathlib
import time

from repro.obs import NULL_OBS, Obs
from repro.obs.trace import (
    CAT_COSTATE,
    CAT_ISSL,
    CAT_TCP,
    NEW_TRACE,
    NullTracer,
    Tracer,
    context_of,
)

GOLDEN = pathlib.Path(__file__).with_name("golden_chrome_trace.json")


class ManualClock:
    """A settable simulated-time source for deterministic spans."""

    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t


# -- nesting and ordering -----------------------------------------------------

class TestNesting:
    def test_spans_nest_per_tid(self):
        tracer = Tracer()
        outer = tracer.begin("outer", tid="a")
        inner = tracer.begin("inner", tid="a")
        other = tracer.begin("other", tid="b")
        assert inner.parent_id == outer.span_id
        assert other.parent_id is None  # a different timeline
        tracer.end(inner)
        tracer.end(outer)
        tracer.end(other)

    def test_completion_order_is_recording_order(self):
        clock = ManualClock()
        tracer = Tracer(clock=clock)
        outer = tracer.begin("outer")
        clock.t = 1.0
        inner = tracer.begin("inner")
        clock.t = 2.0
        tracer.end(inner)
        clock.t = 3.0
        tracer.end(outer)
        assert [s.name for s in tracer.spans] == ["inner", "outer"]
        assert inner.duration == 1.0
        assert outer.duration == 3.0

    def test_out_of_order_end_tolerated(self):
        # A costatement can yield mid-span; the sibling's span may close
        # first without corrupting the other's parentage.
        tracer = Tracer()
        first = tracer.begin("first", tid="t")
        second = tracer.begin("second", tid="t")
        tracer.end(first)
        third = tracer.begin("third", tid="t")
        assert third.parent_id == second.span_id
        tracer.end(third)
        tracer.end(second)
        assert {s.name for s in tracer.spans} == {"first", "second", "third"}

    def test_double_end_is_idempotent(self):
        tracer = Tracer()
        span = tracer.begin("once")
        tracer.end(span)
        tracer.end(span)
        assert len(tracer.spans) == 1

    def test_context_manager_tags_errors(self):
        tracer = Tracer()
        try:
            with tracer.span("risky"):
                raise ValueError("boom")
        except ValueError:
            pass
        (span,) = tracer.spans
        assert span.args["error"] == "ValueError"
        assert span.end is not None

    def test_finish_open_tags_unfinished(self):
        tracer = Tracer()
        tracer.begin("long-lived", tid="conn")
        tracer.finish_open()
        (span,) = tracer.spans
        assert span.args["unfinished"] is True
        assert tracer.open_spans == []

    def test_add_complete_places_reconstructed_slices(self):
        tracer = Tracer()
        span = tracer.add_complete("slice", 1.5, 2.5, cat=CAT_COSTATE,
                                   tid="bigloop", run=7)
        assert (span.start, span.end) == (1.5, 2.5)
        assert span.parent_id is None
        assert span.args == {"run": 7}


# -- causal contexts ----------------------------------------------------------

class TestCausalContext:
    def test_new_trace_roots_at_the_span(self):
        tracer = Tracer()
        root = tracer.begin("client.request", trace=NEW_TRACE)
        assert root.trace_id == root.span_id

    def test_children_inherit_the_parents_trace(self):
        tracer = Tracer()
        root = tracer.begin("client.request", tid="a", trace=NEW_TRACE)
        child = tracer.begin("tcp.send", tid="a")
        assert child.parent_id == root.span_id
        assert child.trace_id == root.trace_id

    def test_explicit_parent_links_across_timelines(self):
        # How a receiver on another simulated host joins the sender's
        # trace: the propagated TraceContext carries both ids.
        tracer = Tracer()
        root = tracer.begin("client.request", tid="client", trace=NEW_TRACE)
        ctx = context_of(root)
        assert (ctx.trace_id, ctx.span_id) == (root.trace_id, root.span_id)
        remote = tracer.begin("service.request", tid="server",
                              parent=ctx.span_id, trace=ctx.trace_id)
        assert remote.parent_id == root.span_id
        assert remote.trace_id == root.trace_id

    def test_context_of_defaults_trace_to_the_span(self):
        tracer = Tracer()
        plain = tracer.begin("untraced", tid="x")
        ctx = context_of(plain)
        assert ctx.trace_id == plain.span_id

    def test_context_of_null_spans_is_none(self):
        assert context_of(None) is None
        assert context_of(NullTracer().begin("x")) is None

    def test_chrome_args_carry_the_linkage(self):
        tracer = Tracer()
        root = tracer.begin("root", trace=NEW_TRACE)
        child = tracer.begin("child")
        tracer.end(child)
        tracer.end(root)
        events = {e["name"]: e for e in tracer.to_chrome()["traceEvents"]
                  if e["ph"] == "X"}
        assert events["root"]["args"]["trace"] == root.span_id
        assert events["child"]["args"]["parent"] == root.span_id
        assert events["child"]["args"]["trace"] == root.span_id


# -- queries ------------------------------------------------------------------

class TestQueries:
    def test_categories_include_instants(self):
        tracer = Tracer()
        tracer.end(tracer.begin("s", cat=CAT_ISSL))
        tracer.instant("i", cat=CAT_TCP)
        assert tracer.categories() == {CAT_ISSL, CAT_TCP}

    def test_summary_rows_aggregate_by_name(self):
        clock = ManualClock()
        tracer = Tracer(clock=clock)
        for duration in (0.001, 0.003):
            span = tracer.begin("work")
            clock.t += duration
            tracer.end(span)
        (row,) = tracer.summary_rows()
        assert row["span"] == "work"
        assert row["count"] == 2
        assert row["total sim ms"] == 4.0
        assert row["mean sim ms"] == 2.0

    def test_jsonl_one_valid_record_per_line(self):
        tracer = Tracer()
        tracer.end(tracer.begin("s", cat=CAT_ISSL, role="client"))
        tracer.instant("i")
        records = [json.loads(line)
                   for line in tracer.to_jsonl().splitlines()]
        assert [r["type"] for r in records] == ["span", "instant"]
        assert records[0]["args"] == {"role": "client"}


# -- the Chrome trace_event export -------------------------------------------

def _reference_trace() -> Tracer:
    """A deterministic trace touching every event shape the export emits."""
    clock = ManualClock()
    tracer = Tracer(clock=clock)
    handshake = tracer.begin("issl.handshake", cat=CAT_ISSL,
                             tid="issl:server:1", role="server")
    clock.t = 0.010
    rsa = tracer.begin("issl.rsa_decrypt", cat=CAT_ISSL, tid="issl:server:1")
    clock.t = 0.250
    tracer.end(rsa)
    clock.t = 0.300
    tracer.end(handshake, suite="TLS_RSA_WITH_AES_128_CBC_SHA")
    tracer.add_complete("costate.handler1", 0.050, 0.075,
                        cat=CAT_COSTATE, tid="bigloop", run=3)
    tracer.instant("tcp.state", cat=CAT_TCP, tid="tcp:10.0.0.2:1024->443",
                   state="ESTABLISHED")
    return tracer


class TestChromeExport:
    def test_matches_golden_file(self):
        produced = _reference_trace().to_chrome()
        golden = json.loads(GOLDEN.read_text(encoding="utf-8"))
        assert produced == golden

    def test_event_shapes(self):
        trace = _reference_trace().to_chrome()
        events = trace["traceEvents"]
        phases = {e["ph"] for e in events}
        assert phases == {"M", "X", "i"}
        # Every tid is an integer, and every tid used by an event is
        # introduced by a thread_name metadata record.
        named = {e["tid"] for e in events if e["ph"] == "M"}
        for event in events:
            assert isinstance(event["tid"], int)
            assert event["tid"] in named
        # ts/dur are microseconds of simulated time.
        (rsa,) = [e for e in events if e["name"] == "issl.rsa_decrypt"]
        assert (rsa["ts"], rsa["dur"]) == (10_000.0, 240_000.0)

    def test_trace_is_json_serializable(self):
        json.dumps(_reference_trace().to_chrome())


# -- the null variant and its overhead contract -------------------------------

class TestNullTracer:
    def test_all_operations_are_inert(self):
        tracer = NullTracer()
        span = tracer.begin("x", cat=CAT_ISSL, tid="t", attr=1)
        assert tracer.end(span) is span  # one shared singleton
        with tracer.span("y"):
            pass
        tracer.add_complete("z", 0.0, 1.0)
        tracer.instant("i")
        tracer.finish_open()
        assert tracer.spans == []
        assert tracer.instants == []
        assert not tracer.enabled

    def test_null_obs_is_disabled(self):
        assert not NULL_OBS.tracer.enabled
        assert not NULL_OBS.metrics.enabled
        assert Obs().tracer.enabled

    def test_null_path_overhead_smoke(self):
        # The <5 % contract rests on the disabled path allocating nothing
        # and doing no bookkeeping: ~100k instrumented call sites should
        # cost well under a second even on a loaded host.
        tracer = NULL_OBS.tracer
        counter = NULL_OBS.metrics.counter("smoke")
        start = time.perf_counter()
        for _ in range(100_000):
            span = tracer.begin("hot", cat=CAT_ISSL, tid="t")
            counter.inc()
            tracer.end(span)
        elapsed = time.perf_counter() - start
        assert tracer.spans == []
        assert elapsed < 1.0, f"null path too slow: {elapsed:.3f}s"


if __name__ == "__main__":  # regenerate the golden file, deliberately
    GOLDEN.write_text(
        json.dumps(_reference_trace().to_chrome(), indent=1, sort_keys=True)
        + "\n",
        encoding="utf-8",
    )
    print(f"wrote {GOLDEN}")
