"""Metrics registry: instruments, bucket math, snapshots, null variant."""

import json

import pytest

from repro.obs.metrics import (
    Histogram,
    MetricsRegistry,
    NullMetricsRegistry,
)


class TestCounter:
    def test_inc_default_and_amount(self):
        counter = MetricsRegistry().counter("c")
        counter.inc()
        counter.inc(41)
        assert counter.value == 42

    def test_memoized_by_name(self):
        registry = MetricsRegistry()
        assert registry.counter("c") is registry.counter("c")
        assert registry.counter("c") is not registry.counter("d")


class TestGauge:
    def test_high_water_survives_drops(self):
        gauge = MetricsRegistry().gauge("g")
        gauge.set(3.0)
        gauge.set(7.0)
        gauge.set(2.0)
        assert gauge.value == 2.0
        assert gauge.high_water == 7.0


class TestHistogram:
    def test_bounds_must_ascend(self):
        with pytest.raises(ValueError):
            Histogram("h", (2.0, 1.0))
        with pytest.raises(ValueError):
            Histogram("h", ())

    def test_bucket_edges_are_inclusive_upper(self):
        histogram = Histogram("h", (1.0, 2.0, 4.0))
        for value in (0.5, 1.0, 1.5, 4.0, 5.0):
            histogram.observe(value)
        # 0.5 and 1.0 land in [..1.0]; 1.5 in (1.0..2.0]; 4.0 exactly on
        # the last edge stays in (2.0..4.0]; 5.0 overflows.
        assert histogram.counts == [2, 1, 1]
        assert histogram.overflow == 1
        assert histogram.count == 5
        assert histogram.mean == pytest.approx(12.0 / 5)

    def test_bucket_rows_end_with_overflow(self):
        histogram = Histogram("h", (10.0,))
        histogram.observe(100.0)
        assert histogram.bucket_rows() == [
            {"le": 10.0, "count": 0},
            {"le": "+inf", "count": 1},
        ]

    def test_empty_histogram_mean_is_zero(self):
        assert Histogram("h", (1.0,)).mean == 0.0


class TestRegistrySnapshots:
    def _populated(self) -> MetricsRegistry:
        registry = MetricsRegistry()
        registry.counter("issl.records.sent").inc(12)
        registry.gauge("xalloc.used").set(4096)
        registry.histogram("costate.gap_s", (0.001, 0.01)).observe(0.002)
        return registry

    def test_snapshot_shape(self):
        snapshot = self._populated().snapshot()
        assert snapshot["counters"] == {"issl.records.sent": 12}
        assert snapshot["gauges"]["xalloc.used"]["high_water"] == 4096
        histogram = snapshot["histograms"]["costate.gap_s"]
        assert histogram["count"] == 1
        assert histogram["buckets"][-1] == {"le": "+inf", "count": 0}

    def test_rows_filter_by_prefix_and_sort(self):
        registry = self._populated()
        assert [r["metric"] for r in registry.rows()] == [
            "costate.gap_s", "issl.records.sent", "xalloc.used",
        ]
        assert [r["metric"] for r in registry.rows("issl.")] == [
            "issl.records.sent",
        ]

    def test_render_text_and_json(self):
        registry = self._populated()
        text = registry.render_text()
        assert "issl.records.sent" in text
        assert "12" in text
        assert MetricsRegistry().render_text() == "(no metrics recorded)"
        parsed = json.loads(registry.to_json())
        assert parsed == registry.snapshot()


class TestNullRegistry:
    def test_hands_out_one_shared_noop(self):
        registry = NullMetricsRegistry()
        counter = registry.counter("a")
        assert counter is registry.gauge("b")
        assert counter is registry.histogram("c", (1.0,))
        counter.inc()
        counter.set(5.0)
        counter.observe(1.0)
        assert counter.value == 0
        assert registry.snapshot() == {
            "counters": {}, "gauges": {}, "histograms": {},
        }
        assert not registry.enabled
