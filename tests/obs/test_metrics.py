"""Metrics registry: instruments, bucket math, snapshots, null variant."""

import json

import pytest

from repro.obs.metrics import (
    Histogram,
    MetricsRegistry,
    NullMetricsRegistry,
    QuantileSketch,
)


class TestCounter:
    def test_inc_default_and_amount(self):
        counter = MetricsRegistry().counter("c")
        counter.inc()
        counter.inc(41)
        assert counter.value == 42

    def test_memoized_by_name(self):
        registry = MetricsRegistry()
        assert registry.counter("c") is registry.counter("c")
        assert registry.counter("c") is not registry.counter("d")


class TestGauge:
    def test_high_water_survives_drops(self):
        gauge = MetricsRegistry().gauge("g")
        gauge.set(3.0)
        gauge.set(7.0)
        gauge.set(2.0)
        assert gauge.value == 2.0
        assert gauge.high_water == 7.0


class TestHistogram:
    def test_bounds_must_ascend(self):
        with pytest.raises(ValueError):
            Histogram("h", (2.0, 1.0))
        with pytest.raises(ValueError):
            Histogram("h", ())

    def test_bucket_edges_are_inclusive_upper(self):
        histogram = Histogram("h", (1.0, 2.0, 4.0))
        for value in (0.5, 1.0, 1.5, 4.0, 5.0):
            histogram.observe(value)
        # 0.5 and 1.0 land in [..1.0]; 1.5 in (1.0..2.0]; 4.0 exactly on
        # the last edge stays in (2.0..4.0]; 5.0 overflows.
        assert histogram.counts == [2, 1, 1]
        assert histogram.overflow == 1
        assert histogram.count == 5
        assert histogram.mean == pytest.approx(12.0 / 5)

    def test_bucket_rows_end_with_overflow(self):
        histogram = Histogram("h", (10.0,))
        histogram.observe(100.0)
        assert histogram.bucket_rows() == [
            {"le": 10.0, "count": 0},
            {"le": "+inf", "count": 1},
        ]

    def test_empty_histogram_mean_is_zero(self):
        assert Histogram("h", (1.0,)).mean == 0.0


class TestHistogramPercentiles:
    def test_quantile_domain(self):
        histogram = Histogram("h", (1.0,))
        for bad in (0.0, -0.5, 1.5):
            with pytest.raises(ValueError):
                histogram.percentile(bad)

    def test_empty_histogram_percentile_is_zero(self):
        assert Histogram("h", (1.0,)).percentile(0.5) == 0.0

    def test_uniform_single_bucket_interpolation(self):
        # 10 observations in (0..100]: rank of p50 is 5, so the estimate
        # interpolates halfway up the only bucket.
        histogram = Histogram("h", (100.0,))
        for _ in range(10):
            histogram.observe(50.0)
        assert histogram.percentile(0.5) == pytest.approx(50.0)
        assert histogram.percentile(1.0) == pytest.approx(100.0)

    def test_multi_bucket_interpolation(self):
        # 8 obs <= 10, 2 obs in (10..20]: p50 -> rank 5 of 8 in the
        # first bucket = 10 * 5/8; p90 -> rank 9, the first of the two
        # in (10..20], interpolated halfway through that bucket.
        histogram = Histogram("h", (10.0, 20.0))
        for _ in range(8):
            histogram.observe(5.0)
        for _ in range(2):
            histogram.observe(15.0)
        assert histogram.percentile(0.5) == pytest.approx(10.0 * 5 / 8)
        assert histogram.percentile(0.9) == pytest.approx(10.0 + 10.0 * 0.5)

    def test_skips_empty_buckets(self):
        histogram = Histogram("h", (1.0, 2.0, 3.0))
        for _ in range(4):
            histogram.observe(2.5)
        # Everything sits in (2.0..3.0]; p50 interpolates there.
        assert histogram.percentile(0.5) == pytest.approx(2.5)

    def test_overflow_clamps_to_last_bound(self):
        histogram = Histogram("h", (1.0, 2.0))
        histogram.observe(0.5)
        for _ in range(9):
            histogram.observe(99.0)
        assert histogram.percentile(0.99) == 2.0

    def test_negative_first_bound_extends_lower_edge(self):
        # Both land in (-10..0]; the bucket's lower edge is the previous
        # bound, so p50 interpolates to the middle of that range.
        histogram = Histogram("h", (-10.0, 0.0))
        for _ in range(2):
            histogram.observe(-5.0)
        assert histogram.percentile(0.5) == pytest.approx(-5.0)

    def test_percentiles_summary_keys(self):
        histogram = Histogram("h", (1.0,))
        histogram.observe(0.5)
        summary = histogram.percentiles()
        assert sorted(summary) == ["p50", "p95", "p99"]

    def test_snapshot_carries_percentiles(self):
        registry = MetricsRegistry()
        registry.histogram("h", (4.0,)).observe(2.0)
        snapshot = registry.snapshot()["histograms"]["h"]
        assert snapshot["p50"] == pytest.approx(2.0)
        assert snapshot["p99"] == pytest.approx(3.96)

    def test_null_registry_percentiles(self):
        instrument = NullMetricsRegistry().histogram("h", (1.0,))
        assert instrument.percentile(0.5) == 0.0
        assert instrument.percentiles() == {
            "p50": 0.0, "p95": 0.0, "p99": 0.0,
        }


class TestRegistrySnapshots:
    def _populated(self) -> MetricsRegistry:
        registry = MetricsRegistry()
        registry.counter("issl.records.sent").inc(12)
        registry.gauge("xalloc.used").set(4096)
        registry.histogram("costate.gap_s", (0.001, 0.01)).observe(0.002)
        return registry

    def test_snapshot_shape(self):
        snapshot = self._populated().snapshot()
        assert snapshot["counters"] == {"issl.records.sent": 12}
        assert snapshot["gauges"]["xalloc.used"]["high_water"] == 4096
        histogram = snapshot["histograms"]["costate.gap_s"]
        assert histogram["count"] == 1
        assert histogram["buckets"][-1] == {"le": "+inf", "count": 0}

    def test_rows_filter_by_prefix_and_sort(self):
        registry = self._populated()
        assert [r["metric"] for r in registry.rows()] == [
            "costate.gap_s", "issl.records.sent", "xalloc.used",
        ]
        assert [r["metric"] for r in registry.rows("issl.")] == [
            "issl.records.sent",
        ]

    def test_render_text_and_json(self):
        registry = self._populated()
        text = registry.render_text()
        assert "issl.records.sent" in text
        assert "12" in text
        assert MetricsRegistry().render_text() == "(no metrics recorded)"
        parsed = json.loads(registry.to_json())
        assert parsed == registry.snapshot()


class TestQuantileSketch:
    def test_exact_on_few_observations(self):
        sketch = QuantileSketch("lat", max_centroids=64)
        for value in (1.0, 2.0, 3.0, 4.0):
            sketch.observe(value)
        assert sketch.count == 4
        assert sketch.mean == 2.5
        assert (sketch.min, sketch.max) == (1.0, 4.0)
        assert sketch.percentile(1.0) == 4.0

    def test_compression_caps_centroids_and_keeps_totals(self):
        sketch = QuantileSketch("lat", max_centroids=8)
        for index in range(1000):
            sketch.observe(index / 1000.0)
        assert len(sketch.centroids) <= 8
        assert sketch.count == 1000
        # ~2% accuracy from 8 centroids over a uniform distribution.
        assert abs(sketch.percentile(0.5) - 0.5) < 0.05
        assert abs(sketch.percentile(0.95) - 0.95) < 0.05

    def test_percentiles_clamp_to_observed_range(self):
        sketch = QuantileSketch("lat", max_centroids=4)
        for value in (5.0, 5.0, 5.0, 100.0):
            sketch.observe(value)
        assert sketch.percentile(0.01) >= 5.0
        assert sketch.percentile(1.0) <= 100.0

    def test_merge_matches_sequential_observation(self):
        # The mergeability contract: merging shard states in shard
        # order equals observing the shards' values in the same order.
        values = [float(v % 17) / 7.0 for v in range(200)]
        sequential = QuantileSketch("lat", max_centroids=16)
        shard_a = QuantileSketch("lat", max_centroids=16)
        shard_b = QuantileSketch("lat", max_centroids=16)
        for value in values[:100]:
            shard_a.observe(value)
        for value in values[100:]:
            shard_b.observe(value)
        merged = QuantileSketch("lat", max_centroids=16)
        merged.merge_state(shard_a.to_state())
        merged.merge_state(shard_b.to_state())
        for value in values:
            sequential.observe(value)
        assert merged.count == sequential.count == 200
        assert merged.total == pytest.approx(sequential.total)
        assert merged.percentile(0.5) == pytest.approx(
            sequential.percentile(0.5), abs=0.2
        )

    def test_merge_rejects_mismatched_sizes(self):
        sketch = QuantileSketch("lat", max_centroids=8)
        other = QuantileSketch("lat", max_centroids=16)
        with pytest.raises(ValueError):
            sketch.merge_state(other.to_state())

    def test_rejects_tiny_cap(self):
        with pytest.raises(ValueError):
            QuantileSketch("lat", max_centroids=1)


class TestRegistryMerge:
    def _shard(self, factor: int) -> MetricsRegistry:
        registry = MetricsRegistry()
        registry.counter("reqs").inc(10 * factor)
        registry.gauge("active").set(2.0 * factor)
        registry.histogram("gap", (0.01, 0.1)).observe(0.05 * factor)
        registry.sketch("lat").observe(0.5 * factor)
        return registry

    def test_merged_shards_equal_sequential_snapshot(self):
        merged = MetricsRegistry()
        merged.merge_state(self._shard(1).to_state())
        merged.merge_state(self._shard(2).to_state())
        sequential = MetricsRegistry()
        sequential.counter("reqs").inc(10)
        sequential.counter("reqs").inc(20)
        sequential.gauge("active").set(2.0)
        sequential.gauge("active").set(4.0)
        histogram = sequential.histogram("gap", (0.01, 0.1))
        histogram.observe(0.05)
        histogram.observe(0.10)
        sketch = sequential.sketch("lat")
        sketch.observe(0.5)
        sketch.observe(1.0)
        assert merged.snapshot() == sequential.snapshot()
        assert merged.to_json() == sequential.to_json()

    def test_from_state_round_trips(self):
        original = self._shard(3)
        rebuilt = MetricsRegistry.from_state(original.to_state())
        assert rebuilt.snapshot() == original.snapshot()
        assert rebuilt.to_state() == original.to_state()

    def test_merge_registry_objects(self):
        merged = self._shard(1).merge(self._shard(1))
        assert merged.snapshot()["counters"]["reqs"] == 20

    def test_gauge_merge_is_last_writer_with_max_high_water(self):
        low = MetricsRegistry()
        low.gauge("level").set(9.0)
        low.gauge("level").set(1.0)
        merged = MetricsRegistry()
        merged.gauge("level").set(4.0)
        merged.merge_state(low.to_state())
        gauge = merged.snapshot()["gauges"]["level"]
        assert gauge["value"] == 1.0
        assert gauge["high_water"] == 9.0

    def test_histogram_merge_rejects_different_bounds(self):
        left = MetricsRegistry()
        left.histogram("gap", (0.01,)).observe(0.005)
        right = MetricsRegistry()
        right.histogram("gap", (0.5,)).observe(0.25)
        with pytest.raises(ValueError):
            left.merge(right)

    def test_snapshot_key_order_is_sorted_not_insertion(self):
        backwards = MetricsRegistry()
        backwards.counter("z.last").inc()
        backwards.counter("a.first").inc()
        forwards = MetricsRegistry()
        forwards.counter("a.first").inc()
        forwards.counter("z.last").inc()
        assert (list(backwards.snapshot()["counters"])
                == list(forwards.snapshot()["counters"])
                == ["a.first", "z.last"])
        assert backwards.to_json() == forwards.to_json()


class TestNullRegistry:
    def test_hands_out_one_shared_noop(self):
        registry = NullMetricsRegistry()
        counter = registry.counter("a")
        assert counter is registry.gauge("b")
        assert counter is registry.histogram("c", (1.0,))
        counter.inc()
        counter.set(5.0)
        counter.observe(1.0)
        assert counter.value == 0
        assert registry.snapshot() == {
            "counters": {}, "gauges": {}, "histograms": {}, "sketches": {},
        }
        assert not registry.enabled
