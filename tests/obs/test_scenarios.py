"""The canned scenarios behind ``python -m repro.obs``.

The redirector scenario is the acceptance surface for the tracing
subsystem: one run must produce spans from at least four layers of the
stack and a Chrome trace a viewer will load.
"""

import json

import pytest

from repro.obs.scenarios import run_aes_scenario, run_redirector_scenario


@pytest.fixture(scope="module")
def redirector():
    return run_redirector_scenario()


class TestRedirectorScenario:
    def test_clients_complete(self, redirector):
        for report in redirector["reports"]:
            assert report.error is None
            assert len(report.request_times) == 4
        assert redirector["stats"]["redirected"] == 12

    def test_spans_cover_at_least_four_layers(self, redirector):
        tracer = redirector["obs"].tracer
        span_cats = {s.cat for s in tracer.spans}
        assert {"issl", "net.tcp", "costate", "service"} <= span_cats
        assert "xalloc" in tracer.categories()

    def test_counters_track_the_run(self, redirector):
        counters = redirector["obs"].metrics.snapshot()["counters"]
        assert counters["issl.handshakes.completed"] == 3
        assert counters["redirector.redirected"] == 12
        assert counters["issl.bytes.encrypted"] > 0
        assert counters["issl.log.messages"] > 0
        assert counters["xalloc.allocations"] == 3

    def test_costate_slices_sit_inside_the_run(self, redirector):
        # Slices are reconstructed ahead of the scheduler's lump charge,
        # so the last one may extend past the instant the sim stopped --
        # but every slice must start inside the run and have width.
        sim = redirector["sim"]
        scheduler = redirector["scheduler"]
        slices = [s for s in redirector["obs"].tracer.spans
                  if s.cat == "costate"]
        assert slices
        for span in slices:
            assert span.end > span.start >= 0.0
            assert span.start <= sim.now + scheduler.pass_overhead_s

    def test_chrome_trace_is_valid(self, redirector):
        trace = json.loads(
            json.dumps(redirector["obs"].tracer.to_chrome())
        )
        events = trace["traceEvents"]
        assert {e["ph"] for e in events} <= {"M", "X", "i"}
        assert len([e for e in events if e["ph"] == "X"]) >= 20

    def test_telemetry_samples_simulated_time(self, redirector):
        telemetry = redirector["obs"].telemetry
        names = telemetry.names()
        assert "sim.pending_events" in names
        assert "redirector.active_connections" in names
        assert any(n.startswith("tcp.") for n in names)
        sim_now = redirector["sim"].now
        for name in names:
            for t, _value in telemetry.series(name).samples():
                assert 0.0 <= t <= sim_now

    def test_chrome_counter_events_mirror_telemetry(self, redirector):
        obs = redirector["obs"]
        trace = obs.tracer.to_chrome(telemetry=obs.telemetry)
        counters = [e for e in trace["traceEvents"] if e["ph"] == "C"]
        assert counters
        assert ({e["name"] for e in counters}
                == set(obs.telemetry.names()))
        for event in counters:
            assert event["ts"] >= 0.0
            assert "value" in event["args"]


class TestCausalTraceTree:
    """A client request must render as one connected tree spanning
    client, redirector, and backend -- walked through the parent links
    the Chrome export carries in ``args``."""

    def test_request_tree_spans_three_hosts(self, redirector):
        events = [e for e in redirector["obs"].tracer.to_chrome()
                  ["traceEvents"] if e["ph"] == "X"]
        by_id = {e["args"]["span_id"]: e for e in events}
        clients = [e for e in events if e["name"] == "client.request"]
        services = [e for e in events if e["name"] == "service.request"]
        backends = [e for e in events if e["name"] == "backend.request"]
        assert clients and services and backends
        # Every client request roots its own trace.
        for event in clients:
            assert event["args"]["trace"] == event["args"]["span_id"]
        # Every backend span walks parent links back to a client root,
        # crossing the service hop, all inside one trace.
        for backend in backends:
            trace = backend["args"]["trace"]
            service = by_id[backend["args"]["parent"]]
            assert service["name"] == "service.request"
            assert service["args"]["trace"] == trace
            client = by_id[service["args"]["parent"]]
            assert client["name"] == "client.request"
            assert client["args"]["trace"] == trace
            assert client["args"]["span_id"] == trace
            # Three distinct logical timelines: the hop is real.
            assert len({backend["tid"], service["tid"],
                        client["tid"]}) == 3

    def test_every_client_request_reaches_the_backend(self, redirector):
        spans = redirector["obs"].tracer.spans
        client_traces = {s.trace_id for s in spans
                         if s.name == "client.request"}
        backend_traces = {s.trace_id for s in spans
                          if s.name == "backend.request"}
        assert len(client_traces) == 12
        assert backend_traces == client_traces


class TestTraceContextUnderLinkFaults:
    """A dropped-then-retransmitted segment must not sever causality:
    the retransmit re-emits with the original trace context, so the
    client->redirector->backend tree stays connected."""

    @pytest.fixture(scope="class")
    def faulted(self):
        dropped = {"count": 0}

        def install_drop(lan):
            sim = lan.sim

            def drop_first_ctx_frame(frame, index):
                # Drop exactly the first frame carrying a trace context
                # (a client request segment mid-flight on the wire).
                if dropped["count"] == 0 and sim.wire_trace_ctx is not None:
                    dropped["count"] += 1
                    return True
                return False

            lan.set_drop_filter(drop_first_ctx_frame)

        result = run_redirector_scenario(lan_hook=install_drop)
        result["dropped"] = dropped["count"]
        return result

    def test_the_fault_actually_fired(self, faulted):
        assert faulted["dropped"] == 1
        counters = faulted["obs"].metrics.snapshot()["counters"]
        assert counters["tcp.segments.retransmitted"] >= 1

    def test_clients_still_complete(self, faulted):
        for report in faulted["reports"]:
            assert report.error is None

    def test_trace_trees_stay_connected_across_the_retransmit(
        self, faulted
    ):
        spans = faulted["obs"].tracer.spans
        by_id = {s.span_id: s for s in spans}
        client_traces = {s.trace_id for s in spans
                        if s.name == "client.request"}
        backends = [s for s in spans if s.name == "backend.request"]
        assert len(client_traces) == 12
        assert {s.trace_id for s in backends} == client_traces
        # Every backend span still walks an unbroken parent chain to
        # its client root -- one connected tree per request, fault or
        # not.
        for backend in backends:
            node = backend
            hops = 0
            while node.parent_id is not None and hops < 16:
                node = by_id[node.parent_id]
                hops += 1
            assert node.name == "client.request"
            assert node.span_id == backend.trace_id


class TestRecorderOverheadContract:
    def test_disabling_the_recorder_changes_no_metrics(self):
        # The bench snapshot times the scenario twice (recorder on/off)
        # for the overhead claim; that is only meaningful if the
        # recorder has zero effect on the deterministic content.
        from repro.obs import NullFlightRecorder, Obs

        recorded = run_redirector_scenario()
        silent = run_redirector_scenario(
            obs=Obs(recorder=NullFlightRecorder())
        )
        assert recorded["obs"].recorder.enabled
        assert not silent["obs"].recorder.enabled
        assert len(recorded["obs"].recorder.events()) > 0
        assert (recorded["obs"].metrics.snapshot()
                == silent["obs"].metrics.snapshot())
        assert recorded["stats"] == silent["stats"]


class TestAesScenario:
    def test_profiles_the_asm_cipher(self):
        result = run_aes_scenario(implementation="asm")
        profiler = result["profiler"]
        assert result["blocks"] == 2
        assert {"aes_set_key", "aes_encrypt"} <= set(profiler.self_cycles)
        assert profiler.total_cycles > 0
        counters = result["obs"].metrics.snapshot()["counters"]
        assert counters["aes.blocks.encrypted"] == 2

    def test_rejects_unknown_implementation(self):
        with pytest.raises(ValueError):
            run_aes_scenario(implementation="fortran")
