"""The canned scenarios behind ``python -m repro.obs``.

The redirector scenario is the acceptance surface for the tracing
subsystem: one run must produce spans from at least four layers of the
stack and a Chrome trace a viewer will load.
"""

import json

import pytest

from repro.obs.scenarios import run_aes_scenario, run_redirector_scenario


@pytest.fixture(scope="module")
def redirector():
    return run_redirector_scenario()


class TestRedirectorScenario:
    def test_clients_complete(self, redirector):
        for report in redirector["reports"]:
            assert report.error is None
            assert len(report.request_times) == 4
        assert redirector["stats"]["redirected"] == 12

    def test_spans_cover_at_least_four_layers(self, redirector):
        tracer = redirector["obs"].tracer
        span_cats = {s.cat for s in tracer.spans}
        assert {"issl", "net.tcp", "costate", "service"} <= span_cats
        assert "xalloc" in tracer.categories()

    def test_counters_track_the_run(self, redirector):
        counters = redirector["obs"].metrics.snapshot()["counters"]
        assert counters["issl.handshakes.completed"] == 3
        assert counters["redirector.redirected"] == 12
        assert counters["issl.bytes.encrypted"] > 0
        assert counters["issl.log.messages"] > 0
        assert counters["xalloc.allocations"] == 3

    def test_costate_slices_sit_inside_the_run(self, redirector):
        # Slices are reconstructed ahead of the scheduler's lump charge,
        # so the last one may extend past the instant the sim stopped --
        # but every slice must start inside the run and have width.
        sim = redirector["sim"]
        scheduler = redirector["scheduler"]
        slices = [s for s in redirector["obs"].tracer.spans
                  if s.cat == "costate"]
        assert slices
        for span in slices:
            assert span.end > span.start >= 0.0
            assert span.start <= sim.now + scheduler.pass_overhead_s

    def test_chrome_trace_is_valid(self, redirector):
        trace = json.loads(
            json.dumps(redirector["obs"].tracer.to_chrome())
        )
        events = trace["traceEvents"]
        assert {e["ph"] for e in events} <= {"M", "X", "i"}
        assert len([e for e in events if e["ph"] == "X"]) >= 20


class TestAesScenario:
    def test_profiles_the_asm_cipher(self):
        result = run_aes_scenario(implementation="asm")
        profiler = result["profiler"]
        assert result["blocks"] == 2
        assert {"aes_set_key", "aes_encrypt"} <= set(profiler.self_cycles)
        assert profiler.total_cycles > 0
        counters = result["obs"].metrics.snapshot()["counters"]
        assert counters["aes.blocks.encrypted"] == 2

    def test_rejects_unknown_implementation(self):
        with pytest.raises(ValueError):
            run_aes_scenario(implementation="fortran")
