"""CycleProfiler: attribution on a tiny program with a known call tree.

The fixture program has three routines -- ``start`` calls ``addone``
twice, ``addone`` calls ``noop`` once -- so every attribution mechanism
(nearest-preceding symbol, shadow call stack, call/return span emission)
has a hand-checkable answer.
"""

import pytest

from repro.obs import Obs
from repro.obs.profile import (
    CycleProfiler,
    _is_control_flow_label,
    assembly_function_symbols,
    collapse_sublabels,
    compiled_function_symbols,
)
from repro.rabbit.asm import assemble
from repro.rabbit.board import CLOCK_HZ, Board

FIXTURE = """
        org  0
start:
        ld   a, 0
        call addone
        call addone
        ret
addone:
        inc  a
        call noop
        ret
noop:
        nop
        ret
"""


@pytest.fixture
def profiled():
    assembly = assemble(FIXTURE)
    board = Board()
    board.program(assembly.code)
    obs = Obs()
    profiler = CycleProfiler(
        board.cpu,
        {name: addr for name, addr in assembly.symbols.items()},
        tracer=obs.tracer,
    )
    with profiler:
        board.cpu.call_subroutine(assembly.symbols["start"])
    return profiler, obs, board


class TestAttribution:
    def test_every_cycle_lands_in_a_routine(self, profiled):
        profiler, _obs, board = profiled
        assert set(profiler.self_cycles) == {"start", "addone", "noop"}
        assert sum(profiler.self_cycles.values()) == profiler.total_cycles
        assert profiler.total_cycles == board.cpu.cycles

    def test_call_counts_match_the_call_tree(self, profiled):
        profiler, _obs, _board = profiled
        assert profiler.call_counts == {"addone": 2, "noop": 2}

    def test_collapsed_stacks_name_full_paths(self, profiled):
        profiler, _obs, _board = profiled
        assert set(profiler.collapsed) == {
            "start", "start;addone", "start;addone;noop",
        }
        assert sum(profiler.collapsed.values()) == profiler.total_cycles
        for line in profiler.flame_lines():
            stack, cycles = line.rsplit(" ", 1)
            assert profiler.collapsed[stack] == int(cycles)

    def test_returns_emit_cpu_spans_innermost_first(self, profiled):
        profiler, obs, board = profiled
        # Each taken RET closes the routine it returns from; the final
        # RET of `start` pops the injected stop address (no shadow frame)
        # so only the four real frames produce spans.
        assert [s.name for s in obs.tracer.spans] == [
            "cpu.noop", "cpu.addone", "cpu.noop", "cpu.addone",
        ]
        for span in obs.tracer.spans:
            assert span.cat == "rabbit.cpu"
            assert span.args["cycles"] == pytest.approx(
                (span.end - span.start) * CLOCK_HZ
            )
        assert obs.tracer.spans[-1].end <= board.cpu.cycles / CLOCK_HZ

    def test_report_rows_are_heaviest_first(self, profiled):
        profiler, _obs, _board = profiled
        rows = profiler.report_rows()
        cycles = [row["self cycles"] for row in rows]
        assert cycles == sorted(cycles, reverse=True)
        assert sum(row["instructions"] for row in rows) > 0
        assert sum(row["% of total"] for row in rows) == pytest.approx(
            100.0, abs=0.5
        )
        assert len(profiler.report_rows(top=2)) == 2

    def test_pc_below_first_symbol_charges_root(self):
        profiler = CycleProfiler(None, {"fn": 0x100})
        assert profiler.routine_at(0x50) == "<root>"
        assert profiler.routine_at(0x100) == "fn"
        assert profiler.routine_at(0x150) == "fn"


class TestInstallation:
    def test_uninstall_restores_the_class_method(self):
        board = Board()
        profiler = CycleProfiler(board.cpu, {"fn": 0})
        profiler.install()
        assert "step" in vars(board.cpu)
        profiler.uninstall()
        assert "step" not in vars(board.cpu)
        profiler.uninstall()  # idempotent

    def test_double_install_rejected(self):
        board = Board()
        profiler = CycleProfiler(board.cpu, {"fn": 0})
        with profiler:
            with pytest.raises(RuntimeError):
                profiler.install()


class TestSampling:
    """``sample_blocks=N`` profiles via ``Cpu.block_listener`` so the
    predecoded-block fast core stays engaged."""

    def _run(self, sample_blocks):
        assembly = assemble(FIXTURE)
        board = Board()
        board.program(assembly.code)
        profiler = CycleProfiler(
            board.cpu, dict(assembly.symbols), sample_blocks=sample_blocks
        )
        with profiler:
            assert board.cpu._fast_eligible()
            board.cpu.call_subroutine(assembly.symbols["start"])
        return profiler, board

    def test_fast_core_stays_engaged(self):
        profiler, board = self._run(sample_blocks=1)
        assert "step" not in vars(board.cpu)
        assert board.cpu._cache is not None
        assert board.cpu._cache.executed_blocks > 0

    def test_every_sample_charges_a_known_routine(self):
        profiler, board = self._run(sample_blocks=1)
        assert profiler.samples > 0
        assert set(profiler.self_cycles) <= {"start", "addone", "noop"}
        assert sum(profiler.self_cycles.values()) == profiler.total_cycles
        # Trailing cycles after the last sampled block stay unattributed.
        assert 0 < profiler.total_cycles <= board.cpu.cycles

    def test_coarser_sampling_still_accounts_all_sampled_cycles(self):
        exact, _board = self._run(sample_blocks=1)
        coarse, _board = self._run(sample_blocks=3)
        assert coarse.samples < exact.samples
        assert coarse.total_cycles <= exact.total_cycles

    def test_no_flame_stacks_in_sampling_mode(self):
        profiler, _board = self._run(sample_blocks=1)
        assert profiler.flame_lines() == []
        assert profiler.call_counts == {}

    def test_uninstall_clears_the_listener(self):
        board = Board()
        profiler = CycleProfiler(board.cpu, {"fn": 0}, sample_blocks=2)
        profiler.install()
        assert board.cpu.block_listener is not None
        assert "step" not in vars(board.cpu)
        profiler.uninstall()
        assert board.cpu.block_listener is None
        profiler.uninstall()  # idempotent

    def test_second_listener_rejected(self):
        board = Board()
        first = CycleProfiler(board.cpu, {"fn": 0}, sample_blocks=1)
        second = CycleProfiler(board.cpu, {"fn": 0}, sample_blocks=1)
        with first:
            with pytest.raises(RuntimeError):
                second.install()

    def test_sample_blocks_must_be_positive(self):
        with pytest.raises(ValueError):
            CycleProfiler(None, {"fn": 0}, sample_blocks=0)


class TestSymbolSelection:
    def test_collapse_sublabels_folds_locals(self):
        symbols = {"mul16": 0x10, "mul16_loop": 0x14, "other": 0x30}
        assert collapse_sublabels(symbols) == {"mul16": 0x10, "other": 0x30}

    def test_assembly_function_symbols_filter_by_prefix(self):
        assembly = assemble(FIXTURE)
        assert assembly_function_symbols(assembly) == dict(assembly.symbols)
        assert assembly_function_symbols(assembly, prefix="add") == {
            "addone": assembly.symbols["addone"],
        }

    def test_control_flow_labels_recognized(self):
        for label in ("__for_17", "__endif_2", "__while_103",
                      "__ret_add_round_key", "__code_end", "__image_end"):
            assert _is_control_flow_label(label), label
        for label in ("__mul16", "__debug_trap", "__memcpy8"):
            assert not _is_control_flow_label(label), label

    def test_compiled_function_symbols_strip_and_filter(self):
        class FakeAssembly:
            symbols = {
                "_fn_main": 0x00,
                "_fn_xtime_c": 0x40,
                "__mul16": 0x80,
                "__mul16_loop": 0x84,
                "__for_17": 0x20,
                "__ret_main": 0x3E,
                "__code_end": 0xFF,
            }

        class FakeCompilation:
            assembly = FakeAssembly()

        assert compiled_function_symbols(FakeCompilation()) == {
            "main": 0x00, "xtime_c": 0x40, "__mul16": 0x80,
        }
