"""The ``python -m repro.obs`` entry point.

Two subprocess tests pin the acceptance contract (``--help`` and a
minimal ``report`` exit 0 through the real module entry point); the
rest drive :func:`repro.obs.cli.main` in-process for speed.
"""

import json
import os
import pathlib
import subprocess
import sys

from repro.obs.cli import main

REPO = pathlib.Path(__file__).resolve().parent.parent.parent


def _run_module(*argv: str) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    return subprocess.run(
        [sys.executable, "-m", "repro.obs", *argv],
        capture_output=True, text=True, env=env, cwd=REPO, timeout=300,
    )


class TestEntryPoint:
    def test_help_exits_zero(self):
        completed = _run_module("--help")
        assert completed.returncode == 0
        for subcommand in ("report", "trace", "flame"):
            assert subcommand in completed.stdout

    def test_minimal_report_exits_zero(self):
        completed = _run_module("report", "--scenario", "aes")
        assert completed.returncode == 0, completed.stderr
        assert "cycles by routine" in completed.stdout
        assert "aes_encrypt" in completed.stdout

    def test_trace_spans_nest(self, tmp_path):
        """The AES C port's runtime-helper calls must render as spans
        strictly contained in their caller's span on the same thread."""
        out = tmp_path / "trace.json"
        completed = _run_module(
            "trace", "--scenario", "aes", "--implementation", "c",
            "--out", str(out),
        )
        assert completed.returncode == 0, completed.stderr
        events = [
            e for e in json.loads(out.read_text(encoding="utf-8"))
            ["traceEvents"] if e["ph"] == "X"
        ]
        assert events
        nested = 0
        for inner in events:
            for outer in events:
                if (inner is not outer and inner["tid"] == outer["tid"]
                        and outer["ts"] <= inner["ts"]
                        and inner["ts"] + inner["dur"]
                        <= outer["ts"] + outer["dur"]):
                    nested += 1
                    break
        assert nested > 0

    def test_flame_stacks_are_non_empty_and_multiframe(self, tmp_path):
        out = tmp_path / "flame.txt"
        completed = _run_module(
            "flame", "--implementation", "c", "--out", str(out)
        )
        assert completed.returncode == 0, completed.stderr
        lines = out.read_text(encoding="utf-8").splitlines()
        assert lines
        for line in lines:
            stack, cycles = line.rsplit(" ", 1)
            assert stack
            assert int(cycles) >= 0
        # The C port calls into runtime helpers, so at least one stack
        # is deeper than a single frame.
        assert any(";" in line.rsplit(" ", 1)[0] for line in lines)


class TestInProcess:
    def test_report_to_file(self, tmp_path, capsys):
        out = tmp_path / "report.txt"
        assert main(["report", "--scenario", "aes", "--out", str(out)]) == 0
        text = out.read_text(encoding="utf-8")
        assert "== metrics ==" in text
        assert "aes.blocks.encrypted" in text
        assert capsys.readouterr().out == ""

    def test_trace_chrome_is_loadable_json(self, tmp_path):
        # The C port's runtime-helper calls give the profiler RET edges
        # to emit cpu spans from (the hand assembly never calls inward).
        out = tmp_path / "trace.json"
        assert main(["trace", "--scenario", "aes", "--implementation", "c",
                     "--out", str(out)]) == 0
        trace = json.loads(out.read_text(encoding="utf-8"))
        assert any(e["ph"] == "X" for e in trace["traceEvents"])

    def test_trace_jsonl_lines_parse(self, tmp_path):
        out = tmp_path / "trace.jsonl"
        assert main(["trace", "--scenario", "aes", "--implementation", "c",
                     "--format", "jsonl", "--out", str(out)]) == 0
        lines = out.read_text(encoding="utf-8").splitlines()
        assert lines
        for line in lines:
            json.loads(line)

    def test_flame_emits_collapsed_stacks(self, tmp_path):
        out = tmp_path / "flame.txt"
        assert main(["flame", "--out", str(out)]) == 0
        lines = out.read_text(encoding="utf-8").splitlines()
        assert lines
        for line in lines:
            stack, cycles = line.rsplit(" ", 1)
            assert stack
            int(cycles)

    def test_flame_on_cpu_less_scenario_fails_cleanly(self, capsys):
        assert main(["flame", "--scenario", "redirector"]) == 2
        assert "no CPU profile" in capsys.readouterr().err


RULES_TOML = """
[[rule]]
name = "no-failures"
path = "faults/failed"
op = "=="
threshold = 0.0
severity = "error"

[[rule]]
name = "throughput-floor"
path = "metrics/rate"
op = ">="
threshold = 5.0
severity = "warn"
"""


class TestSloCommand:
    def _paths(self, tmp_path, document):
        rules = tmp_path / "rules.toml"
        rules.write_text(RULES_TOML, encoding="utf-8")
        doc = tmp_path / "doc.json"
        doc.write_text(json.dumps(document), encoding="utf-8")
        return str(doc), str(rules)

    def test_all_rules_met_exits_zero(self, tmp_path, capsys):
        doc, rules = self._paths(
            tmp_path, {"faults": {"failed": 0}, "metrics": {"rate": 9.0}}
        )
        assert main(["slo", doc, "--rules", rules]) == 0
        assert "slo verdict: PASS" in capsys.readouterr().out

    def test_error_violation_exits_one_with_rule_line(self, tmp_path, capsys):
        doc, rules = self._paths(
            tmp_path, {"faults": {"failed": 2}, "metrics": {"rate": 9.0}}
        )
        assert main(["slo", doc, "--rules", rules]) == 1
        out = capsys.readouterr().out
        assert "FAIL no-failures [error]" in out
        assert "slo verdict: FAIL" in out

    def test_warn_violation_and_missing_do_not_fail(self, tmp_path, capsys):
        doc, rules = self._paths(tmp_path, {"faults": {"failed": 0}})
        assert main(["slo", doc, "--rules", rules]) == 0
        out = capsys.readouterr().out
        assert "MISS throughput-floor [warn]" in out
        assert "slo verdict: PASS" in out

    def test_bad_rules_file_exits_two(self, tmp_path, capsys):
        doc, _rules = self._paths(tmp_path, {})
        bad = tmp_path / "bad.toml"
        bad.write_text("[[rule]]\nname = 'x'\n", encoding="utf-8")
        assert main(["slo", doc, "--rules", str(bad)]) == 2
        assert "slo:" in capsys.readouterr().err

    def test_bad_document_exits_two(self, tmp_path, capsys):
        _doc, rules = self._paths(tmp_path, {})
        assert main(["slo", str(tmp_path / "nope.json"),
                     "--rules", rules]) == 2
        assert "cannot load" in capsys.readouterr().err

    def test_repo_slo_file_passes_on_committed_baseline(self):
        completed = _run_module("slo", "BENCH_baseline.json", "--verbose")
        assert completed.returncode == 0, completed.stderr
        assert "slo verdict: PASS" in completed.stdout
