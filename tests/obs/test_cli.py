"""The ``python -m repro.obs`` entry point.

Two subprocess tests pin the acceptance contract (``--help`` and a
minimal ``report`` exit 0 through the real module entry point); the
rest drive :func:`repro.obs.cli.main` in-process for speed.
"""

import json
import os
import pathlib
import subprocess
import sys

from repro.obs.cli import main

REPO = pathlib.Path(__file__).resolve().parent.parent.parent


def _run_module(*argv: str) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    return subprocess.run(
        [sys.executable, "-m", "repro.obs", *argv],
        capture_output=True, text=True, env=env, cwd=REPO, timeout=300,
    )


class TestEntryPoint:
    def test_help_exits_zero(self):
        completed = _run_module("--help")
        assert completed.returncode == 0
        for subcommand in ("report", "trace", "flame"):
            assert subcommand in completed.stdout

    def test_minimal_report_exits_zero(self):
        completed = _run_module("report", "--scenario", "aes")
        assert completed.returncode == 0, completed.stderr
        assert "cycles by routine" in completed.stdout
        assert "aes_encrypt" in completed.stdout


class TestInProcess:
    def test_report_to_file(self, tmp_path, capsys):
        out = tmp_path / "report.txt"
        assert main(["report", "--scenario", "aes", "--out", str(out)]) == 0
        text = out.read_text(encoding="utf-8")
        assert "== metrics ==" in text
        assert "aes.blocks.encrypted" in text
        assert capsys.readouterr().out == ""

    def test_trace_chrome_is_loadable_json(self, tmp_path):
        # The C port's runtime-helper calls give the profiler RET edges
        # to emit cpu spans from (the hand assembly never calls inward).
        out = tmp_path / "trace.json"
        assert main(["trace", "--scenario", "aes", "--implementation", "c",
                     "--out", str(out)]) == 0
        trace = json.loads(out.read_text(encoding="utf-8"))
        assert any(e["ph"] == "X" for e in trace["traceEvents"])

    def test_trace_jsonl_lines_parse(self, tmp_path):
        out = tmp_path / "trace.jsonl"
        assert main(["trace", "--scenario", "aes", "--implementation", "c",
                     "--format", "jsonl", "--out", str(out)]) == 0
        lines = out.read_text(encoding="utf-8").splitlines()
        assert lines
        for line in lines:
            json.loads(line)

    def test_flame_emits_collapsed_stacks(self, tmp_path):
        out = tmp_path / "flame.txt"
        assert main(["flame", "--out", str(out)]) == 0
        lines = out.read_text(encoding="utf-8").splitlines()
        assert lines
        for line in lines:
            stack, cycles = line.rsplit(" ", 1)
            assert stack
            int(cycles)

    def test_flame_on_cpu_less_scenario_fails_cleanly(self, capsys):
        assert main(["flame", "--scenario", "redirector"]) == 2
        assert "no CPU profile" in capsys.readouterr().err
