"""The ``python -m repro.obs`` entry point.

Two subprocess tests pin the acceptance contract (``--help`` and a
minimal ``report`` exit 0 through the real module entry point); the
rest drive :func:`repro.obs.cli.main` in-process for speed.
"""

import json
import os
import pathlib
import subprocess
import sys

import pytest

from repro.obs.cli import main

REPO = pathlib.Path(__file__).resolve().parent.parent.parent


def _run_module(*argv: str) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    return subprocess.run(
        [sys.executable, "-m", "repro.obs", *argv],
        capture_output=True, text=True, env=env, cwd=REPO, timeout=300,
    )


class TestEntryPoint:
    def test_help_exits_zero(self):
        completed = _run_module("--help")
        assert completed.returncode == 0
        for subcommand in ("report", "trace", "flame"):
            assert subcommand in completed.stdout

    def test_minimal_report_exits_zero(self):
        completed = _run_module("report", "--scenario", "aes")
        assert completed.returncode == 0, completed.stderr
        assert "cycles by routine" in completed.stdout
        assert "aes_encrypt" in completed.stdout

    def test_trace_spans_nest(self, tmp_path):
        """The AES C port's runtime-helper calls must render as spans
        strictly contained in their caller's span on the same thread."""
        out = tmp_path / "trace.json"
        completed = _run_module(
            "trace", "--scenario", "aes", "--implementation", "c",
            "--out", str(out),
        )
        assert completed.returncode == 0, completed.stderr
        events = [
            e for e in json.loads(out.read_text(encoding="utf-8"))
            ["traceEvents"] if e["ph"] == "X"
        ]
        assert events
        nested = 0
        for inner in events:
            for outer in events:
                if (inner is not outer and inner["tid"] == outer["tid"]
                        and outer["ts"] <= inner["ts"]
                        and inner["ts"] + inner["dur"]
                        <= outer["ts"] + outer["dur"]):
                    nested += 1
                    break
        assert nested > 0

    def test_flame_stacks_are_non_empty_and_multiframe(self, tmp_path):
        out = tmp_path / "flame.txt"
        completed = _run_module(
            "flame", "--implementation", "c", "--out", str(out)
        )
        assert completed.returncode == 0, completed.stderr
        lines = out.read_text(encoding="utf-8").splitlines()
        assert lines
        for line in lines:
            stack, cycles = line.rsplit(" ", 1)
            assert stack
            assert int(cycles) >= 0
        # The C port calls into runtime helpers, so at least one stack
        # is deeper than a single frame.
        assert any(";" in line.rsplit(" ", 1)[0] for line in lines)


class TestInProcess:
    def test_report_to_file(self, tmp_path, capsys):
        out = tmp_path / "report.txt"
        assert main(["report", "--scenario", "aes", "--out", str(out)]) == 0
        text = out.read_text(encoding="utf-8")
        assert "== metrics ==" in text
        assert "aes.blocks.encrypted" in text
        assert capsys.readouterr().out == ""

    def test_trace_chrome_is_loadable_json(self, tmp_path):
        # The C port's runtime-helper calls give the profiler RET edges
        # to emit cpu spans from (the hand assembly never calls inward).
        out = tmp_path / "trace.json"
        assert main(["trace", "--scenario", "aes", "--implementation", "c",
                     "--out", str(out)]) == 0
        trace = json.loads(out.read_text(encoding="utf-8"))
        assert any(e["ph"] == "X" for e in trace["traceEvents"])

    def test_trace_jsonl_lines_parse(self, tmp_path):
        out = tmp_path / "trace.jsonl"
        assert main(["trace", "--scenario", "aes", "--implementation", "c",
                     "--format", "jsonl", "--out", str(out)]) == 0
        lines = out.read_text(encoding="utf-8").splitlines()
        assert lines
        for line in lines:
            json.loads(line)

    def test_flame_emits_collapsed_stacks(self, tmp_path):
        out = tmp_path / "flame.txt"
        assert main(["flame", "--out", str(out)]) == 0
        lines = out.read_text(encoding="utf-8").splitlines()
        assert lines
        for line in lines:
            stack, cycles = line.rsplit(" ", 1)
            assert stack
            int(cycles)

    def test_flame_on_cpu_less_scenario_fails_cleanly(self, capsys):
        assert main(["flame", "--scenario", "redirector"]) == 2
        assert "no CPU profile" in capsys.readouterr().err


RULES_TOML = """
[[rule]]
name = "no-failures"
path = "faults/failed"
op = "=="
threshold = 0.0
severity = "error"

[[rule]]
name = "throughput-floor"
path = "metrics/rate"
op = ">="
threshold = 5.0
severity = "warn"
"""


class TestSloCommand:
    def _paths(self, tmp_path, document):
        rules = tmp_path / "rules.toml"
        rules.write_text(RULES_TOML, encoding="utf-8")
        doc = tmp_path / "doc.json"
        doc.write_text(json.dumps(document), encoding="utf-8")
        return str(doc), str(rules)

    def test_all_rules_met_exits_zero(self, tmp_path, capsys):
        doc, rules = self._paths(
            tmp_path, {"faults": {"failed": 0}, "metrics": {"rate": 9.0}}
        )
        assert main(["slo", doc, "--rules", rules]) == 0
        assert "slo verdict: PASS" in capsys.readouterr().out

    def test_error_violation_exits_one_with_rule_line(self, tmp_path, capsys):
        doc, rules = self._paths(
            tmp_path, {"faults": {"failed": 2}, "metrics": {"rate": 9.0}}
        )
        assert main(["slo", doc, "--rules", rules]) == 1
        out = capsys.readouterr().out
        assert "FAIL no-failures [error]" in out
        assert "slo verdict: FAIL" in out

    def test_warn_violation_and_missing_do_not_fail(self, tmp_path, capsys):
        doc, rules = self._paths(tmp_path, {"faults": {"failed": 0}})
        assert main(["slo", doc, "--rules", rules]) == 0
        out = capsys.readouterr().out
        assert "MISS throughput-floor [warn]" in out
        assert "slo verdict: PASS" in out

    def test_bad_rules_file_exits_two(self, tmp_path, capsys):
        doc, _rules = self._paths(tmp_path, {})
        bad = tmp_path / "bad.toml"
        bad.write_text("[[rule]]\nname = 'x'\n", encoding="utf-8")
        assert main(["slo", doc, "--rules", str(bad)]) == 2
        assert "slo:" in capsys.readouterr().err

    def test_bad_document_exits_two(self, tmp_path, capsys):
        _doc, rules = self._paths(tmp_path, {})
        assert main(["slo", str(tmp_path / "nope.json"),
                     "--rules", rules]) == 2
        assert "cannot load" in capsys.readouterr().err

    def test_repo_slo_file_passes_on_committed_baseline(self):
        completed = _run_module("slo", "BENCH_baseline.json", "--verbose")
        assert completed.returncode == 0, completed.stderr
        assert "slo verdict: PASS" in completed.stdout


class TestDiffCommand:
    def _write(self, tmp_path, name, document):
        path = tmp_path / name
        path.write_text(json.dumps(document), encoding="utf-8")
        return str(path)

    def _snapshot(self, mix_columns=100):
        return {
            "schema_version": 1, "tag": "t", "workload": "quick",
            "created_unix": 0.0, "harness": {},
            "experiments": {}, "wall_seconds": {},
            "obs": {"aes_profile": {"c": {
                "total_cycles": mix_columns + 50, "blocks": 1,
                "routines": [
                    {"routine": "mix_columns", "self cycles": mix_columns},
                    {"routine": "sub_bytes", "self cycles": 50},
                ],
                "telemetry": {"cpu.cycles": {
                    "n": 2, "last": float(mix_columns + 50),
                    "max": float(mix_columns + 50),
                    "times": [0.0, 0.25],
                    "values": [0.0, float(mix_columns + 50)],
                }},
            }}},
        }

    def test_identical_snapshots_exit_zero(self, tmp_path, capsys):
        a = self._write(tmp_path, "a.json", self._snapshot())
        b = self._write(tmp_path, "b.json", self._snapshot())
        assert main(["diff", a, b]) == 0
        out = capsys.readouterr().out
        assert "no differences" in out
        assert "telemetry: identical" in out

    def test_differing_snapshots_exit_one_naming_the_routine(
        self, tmp_path, capsys
    ):
        a = self._write(tmp_path, "a.json", self._snapshot(100))
        b = self._write(tmp_path, "b.json", self._snapshot(150))
        assert main(["diff", a, b]) == 1
        out = capsys.readouterr().out
        assert "mix_columns" in out
        assert "+50 cycles (+50.0%)" in out
        assert "first telemetry divergence: aes:c/cpu.cycles" in out

    def test_trace_documents_diff_by_span_path(self, tmp_path, capsys):
        def trace(dur):
            return {"traceEvents": [
                {"ph": "X", "name": "client.request", "ts": 0.0,
                 "dur": dur, "pid": 1, "tid": "c",
                 "args": {"span_id": 1, "parent": None, "trace": 1}},
            ]}

        a = self._write(tmp_path, "a.json", trace(100.0))
        b = self._write(tmp_path, "b.json", trace(130.0))
        assert main(["diff", a, b]) == 1
        out = capsys.readouterr().out
        assert "client.request" in out
        assert "+30.000us" in out

    def test_unreadable_document_exits_two(self, tmp_path, capsys):
        a = self._write(tmp_path, "a.json", self._snapshot())
        assert main(["diff", a, str(tmp_path / "missing.json")]) == 2
        assert "cannot load" in capsys.readouterr().err

    def test_mixed_document_kinds_exit_two(self, tmp_path, capsys):
        a = self._write(tmp_path, "a.json", self._snapshot())
        b = self._write(tmp_path, "b.json", {"traceEvents": []})
        assert main(["diff", a, b]) == 2
        assert "cannot diff" in capsys.readouterr().err

    def test_out_writes_the_report_to_a_file(self, tmp_path, capsys):
        a = self._write(tmp_path, "a.json", self._snapshot(100))
        b = self._write(tmp_path, "b.json", self._snapshot(150))
        out = tmp_path / "report.txt"
        assert main(["diff", a, b, "--out", str(out)]) == 1
        assert "mix_columns" in out.read_text(encoding="utf-8")
        assert capsys.readouterr().out == ""


@pytest.fixture(scope="module")
def quick_snapshots(tmp_path_factory):
    """Quick snapshots of the same tiny workload built at --jobs 1 and
    --jobs 2, saved to disk for subprocess-level diffing."""
    from repro.bench.schema import save_snapshot
    from repro.bench.snapshot import build_snapshot

    directory = tmp_path_factory.mktemp("snapshots")
    paths = {}
    for jobs in (1, 2):
        document = build_snapshot(
            f"jobs{jobs}", workload="quick", experiments=["E6", "E7"],
            include_faults=False, jobs=jobs,
        )
        paths[jobs] = save_snapshot(
            document, directory / f"BENCH_jobs{jobs}.json"
        )
    return paths


class TestDiffGoldenDeterminism:
    """Satellite contract: ``repro.obs diff`` output is byte-identical
    across repeated runs and across snapshots built at different
    ``--jobs`` counts."""

    def test_jobs_counts_do_not_change_the_measurement(
        self, quick_snapshots
    ):
        completed = _run_module(
            "diff", str(quick_snapshots[1]), str(quick_snapshots[2])
        )
        assert completed.returncode == 0, completed.stdout
        assert "no differences" in completed.stdout
        assert "telemetry: identical" in completed.stdout

    def test_diff_output_is_byte_identical_across_runs(
        self, quick_snapshots, tmp_path
    ):
        # Perturb one routine so the diff has real content to render.
        document = json.loads(
            quick_snapshots[2].read_text(encoding="utf-8")
        )
        profile = document["obs"]["aes_profile"]["c"]
        for row in profile["routines"]:
            if row["routine"] == "mix_columns":
                row["self cycles"] = int(row["self cycles"] * 1.5)
        perturbed = tmp_path / "BENCH_perturbed.json"
        perturbed.write_text(json.dumps(document), encoding="utf-8")
        runs = [
            _run_module("diff", str(quick_snapshots[1]), str(perturbed))
            for _ in range(2)
        ]
        for completed in runs:
            assert completed.returncode == 1, completed.stdout
            assert "mix_columns" in completed.stdout
        assert runs[0].stdout == runs[1].stdout
        assert runs[0].stderr == runs[1].stderr
