"""The declarative SLO engine: parsing, resolution, and verdicts."""

import pytest

from repro.obs.slo import (
    MISSING,
    OK,
    VIOLATED,
    SloConfigError,
    evaluate_slo,
    load_rules,
    parse_rules,
    resolve_path,
    sum_prefix,
)

DOCUMENT = {
    "faults": {"failed": 0, "passed": 18},
    "obs": {
        "redirector": {
            "counters": {"issl.handshakes.failed": 0},
            "histograms": {"costate.gap_s": {"p99": 0.04}},
        },
    },
    "metrics": {
        "counters": {
            "faults.injected.loss": 10,
            "faults.injected.rst": 4,
            "faults.recovered.loss": 9,
            "faults.recovered.rst": 4,
        },
    },
    "flags": {"reproduced": True},
}


class TestResolution:
    def test_path_walks_nested_keys(self):
        assert resolve_path(DOCUMENT, "faults/failed") == 0.0
        assert resolve_path(
            DOCUMENT, "obs/redirector/histograms/costate.gap_s/p99"
        ) == 0.04

    def test_booleans_resolve_as_numbers(self):
        assert resolve_path(DOCUMENT, "flags/reproduced") == 1.0

    def test_absent_or_non_scalar_is_none(self):
        assert resolve_path(DOCUMENT, "faults/nope") is None
        assert resolve_path(DOCUMENT, "obs/redirector") is None

    def test_sum_prefix_totals_matching_keys(self):
        assert sum_prefix(
            DOCUMENT, "metrics/counters/faults.injected."
        ) == 14.0
        assert sum_prefix(
            DOCUMENT, "metrics/counters/faults.recovered."
        ) == 13.0

    def test_sum_prefix_with_no_match_is_none(self):
        assert sum_prefix(DOCUMENT, "metrics/counters/nothing.") is None
        assert sum_prefix(DOCUMENT, "absent/branch/x.") is None


RULES = """
[[rule]]
name = "no-failed-scenarios"
path = "faults/failed"
op = "=="
threshold = 0.0
severity = "error"
description = "every scenario recovers"

[[rule]]
name = "recovery-ratio"
numerator = "metrics/counters/faults.recovered."
denominator = "metrics/counters/faults.injected."
op = ">="
threshold = 0.9
severity = "warn"

[[rule]]
name = "unmeasurable"
path = "not/there"
op = "<"
threshold = 1.0
severity = "error"
"""


class TestEvaluation:
    def test_statuses_and_values(self):
        report = evaluate_slo(parse_rules(RULES), DOCUMENT)
        by_name = {r.rule.name: r for r in report.results}
        assert by_name["no-failed-scenarios"].status == OK
        ratio = by_name["recovery-ratio"]
        assert ratio.status == OK
        assert ratio.value == pytest.approx(13 / 14)
        assert by_name["unmeasurable"].status == MISSING

    def test_missing_reports_but_never_fails_the_gate(self):
        report = evaluate_slo(parse_rules(RULES), DOCUMENT)
        assert report.ok
        assert len(report.violations) == 1
        assert report.failures == []

    def test_error_violation_fails(self):
        report = evaluate_slo(
            parse_rules(RULES), {**DOCUMENT, "faults": {"failed": 3}}
        )
        assert not report.ok
        (failure,) = report.failures
        assert failure.rule.name == "no-failed-scenarios"
        assert failure.status == VIOLATED

    def test_warn_violation_does_not_fail(self):
        document = dict(DOCUMENT)
        document["metrics"] = {
            "counters": {"faults.injected.x": 10, "faults.recovered.x": 1}
        }
        report = evaluate_slo(parse_rules(RULES), document)
        assert report.ok
        assert any(r.rule.name == "recovery-ratio"
                   for r in report.violations)

    def test_zero_denominator_is_missing(self):
        document = dict(DOCUMENT)
        document["metrics"] = {
            "counters": {"faults.injected.x": 0, "faults.recovered.x": 0}
        }
        report = evaluate_slo(parse_rules(RULES), document)
        by_name = {r.rule.name: r for r in report.results}
        assert by_name["recovery-ratio"].status == MISSING

    def test_format_has_per_rule_lines_and_verdict(self):
        report = evaluate_slo(
            parse_rules(RULES), {**DOCUMENT, "faults": {"failed": 3}}
        )
        text = report.format(verbose=True)
        assert "FAIL no-failed-scenarios [error]" in text
        assert "PASS recovery-ratio [warn]" in text
        assert "MISS unmeasurable [error]" in text
        assert "every scenario recovers" in text
        assert text.endswith("slo verdict: FAIL")


class TestValidation:
    def _rejects(self, toml_text, fragment):
        with pytest.raises(SloConfigError) as excinfo:
            parse_rules(toml_text)
        assert fragment in str(excinfo.value)

    def test_invalid_toml(self):
        self._rejects("not [ toml", "invalid TOML")

    def test_no_rules(self):
        self._rejects("x = 1", "no [[rule]] tables")

    def test_missing_name(self):
        self._rejects('[[rule]]\npath = "a"\nop = ">"\nthreshold = 1.0',
                      "missing 'name'")

    def test_bad_op(self):
        self._rejects(
            '[[rule]]\nname = "r"\npath = "a"\nop = "~"\nthreshold = 1.0',
            "'op' must be one of",
        )

    def test_bad_threshold(self):
        self._rejects(
            '[[rule]]\nname = "r"\npath = "a"\nop = ">"\nthreshold = "x"',
            "'threshold' must be a number",
        )

    def test_bad_severity(self):
        self._rejects(
            '[[rule]]\nname = "r"\npath = "a"\nop = ">"\n'
            'threshold = 1.0\nseverity = "fatal"',
            "'severity' must be",
        )

    def test_path_and_ratio_are_exclusive(self):
        self._rejects(
            '[[rule]]\nname = "r"\npath = "a"\nnumerator = "b"\n'
            'denominator = "c"\nop = ">"\nthreshold = 1.0',
            "not both",
        )

    def test_ratio_needs_both_halves(self):
        self._rejects(
            '[[rule]]\nname = "r"\nnumerator = "b"\nop = ">"\n'
            "threshold = 1.0",
            "needs 'path'",
        )

    def test_load_rules_wraps_read_errors(self, tmp_path):
        with pytest.raises(SloConfigError) as excinfo:
            load_rules(str(tmp_path / "absent.toml"))
        assert "cannot read" in str(excinfo.value)

    def test_load_rules_reads_a_file(self, tmp_path):
        path = tmp_path / "rules.toml"
        path.write_text(RULES, encoding="utf-8")
        assert len(load_rules(str(path))) == 3


_TAIL_RECORD = {"seq": 5, "t": 0.125, "sev": "ERROR", "cat": "net.tcp",
                "tid": "tcp:rmc", "msg": "connection reset"}

_ERROR_RULE = ('[[rule]]\nname = "no-failures"\npath = "faults/failed"\n'
               'op = "=="\nthreshold = 0.0\nseverity = "error"')

_WARN_RULE = ('[[rule]]\nname = "soft"\npath = "faults/failed"\n'
              'op = "=="\nthreshold = 0.0\nseverity = "warn"')


class TestRecorderTailAttachment:
    def test_error_violation_attaches_the_embedded_tail(self):
        document = {
            "faults": {"failed": 2},
            "obs": {"redirector": {"recorder_tail": [_TAIL_RECORD]}},
        }
        report = evaluate_slo(parse_rules(_ERROR_RULE), document)
        assert not report.ok
        assert report.recorder_tail == [_TAIL_RECORD]
        text = report.format()
        assert "flight recorder tail (last 1 events):" in text
        assert "connection reset" in text

    def test_top_level_events_list_is_the_fallback(self):
        document = {"faults": {"failed": 2}, "events": [_TAIL_RECORD]}
        report = evaluate_slo(parse_rules(_ERROR_RULE), document)
        assert report.recorder_tail == [_TAIL_RECORD]

    def test_passing_report_attaches_nothing(self):
        document = {
            "faults": {"failed": 0},
            "obs": {"redirector": {"recorder_tail": [_TAIL_RECORD]}},
        }
        report = evaluate_slo(parse_rules(_ERROR_RULE), document)
        assert report.ok
        assert report.recorder_tail == []
        assert "flight recorder" not in report.format()

    def test_warn_severity_violation_attaches_nothing(self):
        document = {
            "faults": {"failed": 2},
            "obs": {"redirector": {"recorder_tail": [_TAIL_RECORD]}},
        }
        report = evaluate_slo(parse_rules(_WARN_RULE), document)
        assert report.ok
        assert report.recorder_tail == []

    def test_document_without_a_tail_formats_cleanly(self):
        report = evaluate_slo(parse_rules(_ERROR_RULE),
                              {"faults": {"failed": 2}})
        assert not report.ok
        assert "flight recorder" not in report.format()
