"""FlightRecorder: ring semantics, deterministic dumps, null variant.

The recorder is the failure-forensics layer: always on, fixed capacity,
clocked by the simulator, so two runs of the same seed dump identical
bytes and a crash report can always attach "what just happened".
"""

import pytest

from repro.obs import DEFAULT_TAIL, FlightRecorder, NullFlightRecorder
from repro.obs.recorder import DEBUG, ERROR, INFO, WARN


class ManualClock:
    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t


class TestRing:
    def test_events_in_seq_order_before_wrap(self):
        recorder = FlightRecorder(capacity=8)
        for index in range(5):
            recorder.info("sim", "t", f"event {index}")
        assert len(recorder) == 5
        assert recorder.dropped == 0
        assert [e[0] for e in recorder.events()] == [0, 1, 2, 3, 4]

    def test_wrap_keeps_newest_and_counts_dropped(self):
        recorder = FlightRecorder(capacity=4)
        for index in range(10):
            recorder.info("sim", "t", f"event {index}")
        assert len(recorder) == 4
        assert recorder.dropped == 6
        events = recorder.events()
        assert [e[0] for e in events] == [6, 7, 8, 9]
        assert [e[5] for e in events] == [
            "event 6", "event 7", "event 8", "event 9",
        ]

    def test_last_window_narrows_from_the_tail(self):
        recorder = FlightRecorder(capacity=8)
        for index in range(6):
            recorder.info("sim", "t", f"event {index}")
        assert [e[0] for e in recorder.events(last=2)] == [4, 5]

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            FlightRecorder(capacity=0)

    def test_severity_helpers_record_their_level(self):
        recorder = FlightRecorder(capacity=8)
        recorder.debug("c", "t", "d")
        recorder.info("c", "t", "i")
        recorder.warn("c", "t", "w")
        recorder.error("c", "t", "e")
        assert [e[2] for e in recorder.events()] == [DEBUG, INFO, WARN, ERROR]


class TestExports:
    def test_dump_is_plain_host_clock_free_data(self):
        clock = ManualClock()
        recorder = FlightRecorder(capacity=8, clock=clock)
        clock.t = 1.25
        recorder.warn("net.tcp", "conn:1", "retransmit")
        (record,) = recorder.dump()
        assert record == {
            "seq": 0, "t": 1.25, "sev": "WARN",
            "cat": "net.tcp", "tid": "conn:1", "msg": "retransmit",
        }

    def test_two_identically_clocked_runs_dump_identical_bytes(self):
        def run():
            clock = ManualClock()
            recorder = FlightRecorder(capacity=4, clock=clock)
            for index in range(7):
                clock.t = index * 0.5
                recorder.info("sim", "proc", f"step {index}")
            return recorder.dump()

        assert run() == run()

    def test_tail_lines_render_the_window(self):
        clock = ManualClock()
        recorder = FlightRecorder(capacity=64, clock=clock)
        for index in range(DEFAULT_TAIL + 5):
            clock.t = index * 0.001
            recorder.error("costate", "bigloop", f"slice {index}")
        lines = recorder.tail_lines()
        assert len(lines) == DEFAULT_TAIL
        assert "ERROR" in lines[-1]
        assert f"slice {DEFAULT_TAIL + 4}" in lines[-1]
        assert "costate/bigloop" in lines[-1]


class TestNullRecorder:
    def test_everything_is_inert(self):
        recorder = NullFlightRecorder()
        recorder.record(ERROR, "c", "t", "m")
        recorder.debug("c", "t", "m")
        recorder.info("c", "t", "m")
        recorder.warn("c", "t", "m")
        recorder.error("c", "t", "m")
        assert not recorder.enabled
        assert recorder.events() == []
        assert recorder.dump() == []
        assert recorder.tail_lines() == []
