"""Simulated-time telemetry: the columnar store behind forensics.

The contract that matters is the one the bench snapshot relies on:
samples are keyed by *simulated* time, the store merges shard-by-shard
into the same sequence a sequential run records, and the rendered
report is deterministic text.
"""

import pytest

from repro.obs import NULL_OBS, Obs
from repro.obs.timeseries import (
    NullTelemetryStore,
    TelemetryStore,
    TimeSeries,
    first_divergence,
)


class TestTimeSeries:
    def test_record_uses_the_bound_clock(self):
        store = TelemetryStore()
        now = {"t": 0.0}
        store.clock = lambda: now["t"]
        series = store.series("queue.depth")
        series.record(1.0)
        now["t"] = 2.5
        series.record(4.0)
        assert series.samples() == [(0.0, 1.0), (2.5, 4.0)]
        assert series.last == 4.0
        assert series.maximum == 4.0

    def test_exact_duplicate_of_last_sample_is_skipped(self):
        series = TelemetryStore().series("s")
        series.record_at(1.0, 5.0)
        series.record_at(1.0, 5.0)
        series.record_at(2.0, 5.0)  # same value, new time: kept
        assert series.samples() == [(1.0, 5.0), (2.0, 5.0)]

    def test_rates_are_per_interval_derivatives(self):
        series = TelemetryStore().series("cpu.cycles")
        series.record_at(0.0, 0.0)
        series.record_at(1.0, 100.0)
        series.record_at(3.0, 500.0)
        assert series.rates() == [(1.0, 100.0), (3.0, 200.0)]

    def test_sparkline_is_fixed_width_ascii(self):
        series = TelemetryStore().series("s")
        for i in range(10):
            series.record_at(float(i), float(i))
        line = series.sparkline(width=16)
        assert len(line) == 16
        assert line[0] == " " and line[-1] == "@"

    def test_sparkline_of_flat_series_is_mid_level(self):
        series = TelemetryStore().series("s")
        series.record_at(0.0, 7.0)
        series.record_at(1.0, 7.0)
        line = series.sparkline(width=8)
        assert len(line) == 8
        assert len(set(line)) == 1


class TestFirstDivergence:
    def _cols(self, *samples):
        return {"times": [t for t, _ in samples],
                "values": [v for _, v in samples]}

    def test_identical_series_never_diverge(self):
        a = self._cols((0.0, 1.0), (1.0, 2.0))
        assert first_divergence(a, dict(a)) is None

    def test_value_mismatch_names_that_sample_time(self):
        a = self._cols((0.0, 1.0), (1.5, 2.0))
        b = self._cols((0.0, 1.0), (1.5, 3.0))
        assert first_divergence(a, b) == 1.5

    def test_time_mismatch_names_the_earlier_time(self):
        a = self._cols((0.0, 1.0), (1.0, 2.0))
        b = self._cols((0.0, 1.0), (4.0, 2.0))
        assert first_divergence(a, b) == 1.0

    def test_length_mismatch_names_the_first_extra_sample(self):
        a = self._cols((0.0, 1.0))
        b = self._cols((0.0, 1.0), (2.0, 2.0))
        assert first_divergence(a, b) == 2.0
        assert first_divergence(b, a) == 2.0


class TestTelemetryStore:
    def test_snapshot_is_sorted_and_columnar(self):
        store = TelemetryStore()
        store.series("z").record_at(0.0, 1.0)
        store.series("a").record_at(0.5, 2.0)
        snap = store.snapshot()
        assert list(snap) == ["a", "z"]
        assert snap["a"] == {"n": 1, "last": 2.0, "max": 2.0,
                             "times": [0.5], "values": [2.0]}

    def test_merge_reproduces_sequential_recording(self):
        # Shard the same sample stream over two stores; merging in task
        # order must equal the one-store run byte for byte.
        sequential = TelemetryStore()
        shard_a, shard_b = TelemetryStore(), TelemetryStore()
        for i in range(10):
            sequential.series("s").record_at(float(i), float(i * i))
            shard = shard_a if i < 5 else shard_b
            shard.series("s").record_at(float(i), float(i * i))
        merged = TelemetryStore()
        merged.merge(shard_a)
        merged.merge(shard_b)
        assert merged.snapshot() == sequential.snapshot()

    def test_state_round_trip(self):
        store = TelemetryStore()
        store.series("s").record_at(1.0, 2.0)
        clone = TelemetryStore.from_state(store.to_state())
        assert clone.snapshot() == store.snapshot()

    def test_render_text_mentions_every_series(self):
        store = TelemetryStore()
        store.series("tcp.rmc.send_queue").record_at(0.0, 3.0)
        text = store.render_text()
        assert "tcp.rmc.send_queue" in text
        assert "n=" in text and "|" in text
        assert TelemetryStore().render_text() == "(no telemetry recorded)"

    def test_null_store_records_nothing(self):
        null = NullTelemetryStore()
        assert not null.enabled
        null.record("s", 1.0)
        null.series("s").record_at(0.0, 1.0)
        assert null.snapshot() == {}


class TestObsIntegration:
    def test_obs_handle_carries_a_store_and_binds_its_clock(self):
        obs = Obs()
        assert obs.telemetry.enabled
        obs.bind_clock(lambda: 42.0)
        obs.telemetry.record("s", 1.0)
        assert obs.telemetry.series("s").samples() == [(42.0, 1.0)]

    def test_null_obs_telemetry_is_disabled(self):
        assert not NULL_OBS.telemetry.enabled

    def test_simulator_clock_drives_sample_times(self):
        from repro.net.sim import Simulator, sleep

        obs = Obs()
        sim = Simulator(obs=obs)
        series = obs.telemetry.series("probe")

        def probe():
            series.record(1.0)
            yield from sleep(0.5)
            series.record(2.0)

        sim.run_until_complete(sim.spawn(probe()))
        assert series.samples() == [(0.0, 1.0), (0.5, 2.0)]


class TestTimeSeriesSlots:
    def test_series_are_memoized_per_name(self):
        store = TelemetryStore()
        assert store.series("x") is store.series("x")
        assert isinstance(store.series("x"), TimeSeries)

    def test_unknown_attributes_are_rejected(self):
        with pytest.raises(AttributeError):
            TelemetryStore().series("x").bogus = 1
