"""The core library: both deployments of the secure redirector."""

import pytest

from repro.core import build_rmc2000_deployment, build_unix_deployment
from repro.issl import CipherSuite, FREE


@pytest.fixture(scope="module")
def rmc():
    return build_rmc2000_deployment(clients=4,
                                    cost_model=FREE)


class TestRmcDeployment:
    def test_basic_client(self, rmc):
        report = rmc.run_client(requests=3, request_size=32)
        assert report.error is None
        assert len(report.request_times) == 3
        assert rmc.stats["redirected"] >= 3

    def test_sequential_clients_share_world(self, rmc):
        first = rmc.run_client(requests=1)
        second = rmc.run_client(requests=1)
        assert first.error is None and second.error is None
        assert rmc.server_context.sessions_total >= 2

    def test_negotiates_psk_only(self, rmc):
        assert rmc.suites == (CipherSuite.PSK_AES128,)

    def test_circular_log_in_use(self, rmc):
        from repro.issl import CircularLogger

        assert isinstance(rmc.server_context.logger, CircularLogger)

    def test_runs_out_of_client_hosts(self, rmc):
        with pytest.raises(RuntimeError):
            for _ in range(10):
                rmc.run_client(requests=1)


class TestUnixDeployment:
    def test_basic_client_rsa(self):
        deployment = build_unix_deployment(clients=2)
        report = deployment.run_client(requests=2, request_size=16)
        assert report.error is None
        assert deployment.server_host.kernel.forks == 1

    def test_concurrent_clients_fork(self):
        deployment = build_unix_deployment(clients=3)
        reports = deployment.run_clients(2, requests=1, request_size=8)
        assert all(r.error is None for r in reports)
        assert deployment.server_host.kernel.forks == 2

    def test_file_log_grows(self):
        from repro.issl import FileLogger

        deployment = build_unix_deployment(clients=1)
        deployment.run_client(requests=1)
        logger = deployment.server_context.logger
        assert isinstance(logger, FileLogger)
        assert logger.messages_logged >= 1


class TestCrossDeploymentComparison:
    def test_port_is_slower_than_original(self):
        # The whole point of the paper's Table-of-woes: same service,
        # embedded deployment pays for its CPU.
        from repro.issl import RMC2000_ASM

        unix = build_unix_deployment(clients=1)
        unix_report = unix.run_client(requests=3, request_size=128)
        rmc = build_rmc2000_deployment(clients=1, cost_model=RMC2000_ASM)
        rmc_report = rmc.run_client(requests=3, request_size=128)
        assert unix_report.error is None and rmc_report.error is None
        assert rmc_report.throughput_bps < unix_report.throughput_bps
