"""Smoke tests: every example script must run clean from a subprocess.

These protect the documented entry points from refactoring drift; each
example asserts its own correctness internally, so a zero exit status
means the scenario actually worked.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"

EXAMPLES = sorted(path.name for path in EXAMPLES_DIR.glob("*.py"))


def test_examples_present():
    assert len(EXAMPLES) >= 3, EXAMPLES
    assert "quickstart.py" in EXAMPLES


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs_clean(script):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, (
        f"{script} failed:\n{result.stdout[-2000:]}\n{result.stderr[-2000:]}"
    )
    assert result.stdout.strip(), f"{script} printed nothing"
