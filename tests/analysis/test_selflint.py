"""Self-lint: dclint over the repository's own sources, as a CI gate.

Every embedded-DSL source and every runtime call site in the repo must
satisfy the platform contract the paper's authors discovered by hand
(Sections 4-5).  A new error-severity finding here means a change
reintroduced one of the porting bugs; fix it or annotate the deliberate
demonstration with ``dclint: allow(RULE)`` -- do not relax this test.
"""

import pathlib

from repro.analysis import Severity, analyze_dync_source, analyze_paths
from repro.rabbit.programs.aes_c import AES_C_SOURCE
from repro.rabbit.programs.redirector_dc import FIGURE3_MAIN_SOURCE, main_source
from repro.rabbit.programs.rsa_c import generate_source

REPO = pathlib.Path(__file__).resolve().parent.parent.parent

#: The trees the acceptance gate lints (examples + services), plus the
#: subsystems that carry embedded firmware or runtime call sites.
LINTED_TREES = [
    REPO / "examples",
    REPO / "src" / "repro" / "services",
    REPO / "src" / "repro" / "rabbit",
    REPO / "src" / "repro" / "crypto",
    REPO / "src" / "repro" / "experiments",
    REPO / "src" / "repro" / "dync",
    REPO / "src" / "repro" / "obs",
    REPO / "src" / "repro" / "bench",
    REPO / "src" / "repro" / "faults",
    REPO / "src" / "repro" / "net",
    REPO / "src" / "repro" / "issl",
    REPO / "src" / "repro" / "porting",
    REPO / "src" / "repro" / "unixsim",
    REPO / "src" / "repro" / "core",
]

#: Simulation packages whose output must be byte-identical per seed:
#: the determinism sanitizer (PY105/PY106) must hold here with *zero*
#: allow-annotations -- wall clocks belong to the bench/obs harnesses.
SIMULATION_TREES = [
    REPO / "src" / "repro" / "rabbit",
    REPO / "src" / "repro" / "net",
    REPO / "src" / "repro" / "dync",
    REPO / "src" / "repro" / "issl",
    REPO / "src" / "repro" / "faults",
    REPO / "src" / "repro" / "services",
]


def _errors(diagnostics):
    return [d for d in diagnostics if d.severity == Severity.ERROR]


def test_repo_trees_lint_clean():
    diagnostics = analyze_paths(LINTED_TREES)
    assert _errors(diagnostics) == [], "\n".join(
        d.format() for d in _errors(diagnostics)
    )


def test_repo_trees_have_no_undocumented_warnings():
    diagnostics = analyze_paths(LINTED_TREES)
    assert diagnostics == [], "\n".join(d.format() for d in diagnostics)


def test_simulation_packages_are_deterministic():
    """PY105/PY106 over every simulation package, with no escapes.

    An allow(PY105/PY106) annotation is acceptable in harness code
    (bench timings, obs wall-clock spans) but never in the simulation
    itself: here the sanitizer must pass on the raw sources too, so a
    wall-clock read cannot be annotated into the simulator.
    """
    diagnostics = [d for d in analyze_paths(SIMULATION_TREES)
                   if d.rule in ("PY105", "PY106")]
    assert diagnostics == [], "\n".join(d.format() for d in diagnostics)
    for tree in SIMULATION_TREES:
        for path in tree.rglob("*.py"):
            assert "allow(PY105" not in path.read_text(), (
                f"{path}: simulation code may not suppress the "
                "determinism sanitizer"
            )


def test_obs_wall_clock_is_confined_to_trace_spans():
    """The obs v2 additions (flight recorder, mergeable metrics, SLO
    engine, sampling profiler) are deterministic by construction --
    recorder dumps and metric snapshots must merge byte-identically
    across ``--jobs`` fan-out.  Only the tracer's wall-span bookkeeping
    in ``trace.py`` may annotate a wall-clock read; an allow() anywhere
    else in the package is a new nondeterminism sneaking in."""
    obs = REPO / "src" / "repro" / "obs"
    for path in obs.rglob("*.py"):
        if path.name == "trace.py":
            continue
        assert "allow(PY10" not in path.read_text(), (
            f"{path}: obs wall-clock reads belong in trace.py's "
            "wall spans only"
        )
    diagnostics = [d for d in analyze_paths([obs])
                   if d.rule in ("PY105", "PY106")]
    assert diagnostics == [], "\n".join(d.format() for d in diagnostics)


def test_parallel_selflint_matches_serial():
    """--jobs fan-out must not change the diagnostic stream."""
    serial = analyze_paths(LINTED_TREES)
    parallel = analyze_paths(LINTED_TREES, jobs=4)
    assert [d.format() for d in parallel] == [d.format() for d in serial]


def test_figure3_firmware_lints_clean():
    assert analyze_dync_source(FIGURE3_MAIN_SOURCE) == []


def test_generated_firmware_lints_clean():
    """f-string sources static extraction cannot see, linted by import."""
    for source in (AES_C_SOURCE, generate_source(32), main_source(3)):
        assert _errors(analyze_dync_source(source)) == []


def test_fourth_handler_requires_recompile():
    """The paper's trade-off, statically: one more handler costatement
    than the Figure 3 cap is a DC003 finding, not a silent queue."""
    rules = [d.rule for d in analyze_dync_source(main_source(4))]
    assert rules == ["DC003"]


def test_unshared_stats_is_a_torn_write():
    rules = [d.rule for d in analyze_dync_source(
        main_source(3, shared_stats=False)
    )]
    assert rules == ["DC004"]
