"""Flow-sensitive rules DC008..DC012: violating and clean fixtures.

The DC009 class pins the acceptance pair for the DC004 hand-off: the
lattice must *prove safe* a bracketed access the syntactic check used
to flag, and *catch* a bracket-escape the syntactic check cannot see.
"""

import dataclasses

from repro.analysis import Severity, analyze_dync_source
from repro.analysis.config import DEFAULT_CONFIG


def rules_of(source, **config_overrides):
    config = dataclasses.replace(DEFAULT_CONFIG, **config_overrides) \
        if config_overrides else DEFAULT_CONFIG
    return [d.rule for d in analyze_dync_source(source, config=config)]


def diags_of(source):
    return analyze_dync_source(source)


# -- DC008: read before initialization on some path ---------------------------

class TestDC008:
    def test_conditionally_initialized_global_flagged(self):
        source = """
        int cold_boot;
        int sequence;
        void main(void) {
            if (cold_boot) { sequence = 0; }
            log_sequence(sequence);
        }
        """
        assert "DC008" in rules_of(source)

    def test_unconditional_initialization_clean(self):
        source = """
        int cold_boot;
        int sequence;
        void main(void) {
            sequence = 0;
            if (cold_boot) { sequence = 100; }
            log_sequence(sequence);
        }
        """
        assert "DC008" not in rules_of(source)

    def test_static_initializer_clean(self):
        source = """
        int sequence = 0;
        int cold_boot;
        void main(void) {
            if (cold_boot) { sequence = 100; }
            log_sequence(sequence);
        }
        """
        assert "DC008" not in rules_of(source)

    def test_protected_global_exempt(self):
        """battery-backed state is *supposed* to survive uninitialized
        by this run (paper, Figure 1: protected variables)."""
        source = """
        int cold_boot;
        protected int sequence;
        void main(void) {
            if (cold_boot) { sequence = 0; }
            log_sequence(sequence);
        }
        """
        assert "DC008" not in rules_of(source)

    def test_error_severity(self):
        source = """
        int cold_boot;
        int sequence;
        void main(void) {
            if (cold_boot) { sequence = 0; }
            log_sequence(sequence);
        }
        """
        diag, = (d for d in diags_of(source) if d.rule == "DC008")
        assert diag.severity == Severity.ERROR


# -- DC009: flow-sensitive torn-access verdict --------------------------------

#: An unshared multibyte global, written by an ISR, read in main inside
#: a correct Figure 1 bracket.  DC004's syntactic check used to flag
#: this; the interrupt-enable lattice proves every access masked.
BRACKETED_SOURCE = """
int ticks;
void timer_isr(void) {
    ticks = ticks + 1;
}
void main(void) {
    int snapshot;
    for (;;) {
        ipset(1);
        snapshot = ticks;
        ipres();
        report(snapshot);
    }
}
"""

#: The same program with the bracket *escaping* on one path: the early
#: release leaves the second read unprotected on the error path.  The
#: brackets are all syntactically present, so DC004 stays silent --
#: only the path-join to UNKNOWN sees the window.
ESCAPED_SOURCE = """
int ticks;
int fault;
void timer_isr(void) {
    ticks = ticks + 1;
}
void main(void) {
    int snapshot;
    for (;;) {
        ipset(1);
        if (fault) { ipres(); }
        snapshot = ticks;
        ipres();
        report(snapshot);
    }
}
"""


class TestDC009:
    def test_correct_bracket_is_proven_safe(self):
        """The DC004 false positive the lattice retires: no DC004, and
        no DC009, because every access is interrupt-disable-dominated."""
        assert rules_of(BRACKETED_SOURCE) == []

    def test_unbracketed_program_stays_dc004(self):
        """No mask ops anywhere: the syntactic verdict stands."""
        source = """
        int ticks;
        void timer_isr(void) {
            ticks = ticks + 1;
        }
        void main(void) {
            for (;;) {
                report(ticks);
            }
        }
        """
        assert rules_of(source) == ["DC004"]

    def test_conditional_release_escape_caught(self):
        """The torn window DC004 cannot see: brackets are present
        syntactically, but one path releases the mask early."""
        rules = rules_of(ESCAPED_SOURCE)
        assert "DC009" in rules
        assert "DC004" not in rules

    def test_escape_reported_once_at_error_severity(self):
        findings = [d for d in diags_of(ESCAPED_SOURCE)
                    if d.rule == "DC009"]
        assert len(findings) == 1
        assert findings[0].severity == Severity.ERROR
        assert "ticks" in findings[0].message

    def test_shared_global_needs_no_bracket(self):
        source = """
        shared int ticks;
        void timer_isr(void) {
            ticks = ticks + 1;
        }
        void main(void) {
            ipset(1);
            ipres();
            for (;;) {
                report(ticks);
            }
        }
        """
        assert rules_of(source) == []


# -- DC010: unreachable statements --------------------------------------------

class TestDC010:
    def test_statement_after_abort_flagged(self):
        source = """
        int quit;
        void main(void) {
            for (;;) {
                costate {
                    waitfor (quit);
                    abort;
                    cleanup();
                }
            }
        }
        """
        assert "DC010" in rules_of(source)

    def test_statement_after_constant_false_waitfor_flagged(self):
        source = """
        void main(void) {
            for (;;) {
                costate {
                    waitfor (0);
                    blink();
                }
            }
        }
        """
        assert "DC010" in rules_of(source)

    def test_only_dead_region_head_reported(self):
        source = """
        int quit;
        void main(void) {
            for (;;) {
                costate {
                    waitfor (quit);
                    abort;
                    cleanup();
                    cleanup2();
                    cleanup3();
                }
            }
        }
        """
        assert rules_of(source).count("DC010") == 1

    def test_reachable_code_after_waitfor_clean(self):
        source = """
        int quit;
        void main(void) {
            for (;;) {
                costate {
                    waitfor (quit);
                    cleanup();
                }
            }
        }
        """
        assert "DC010" not in rules_of(source)


# -- DC011: a waitfor that can never become true ------------------------------

class TestDC011:
    def test_wait_on_never_written_variable_flagged(self):
        source = """
        char go;
        void main(void) {
            for (;;) {
                costate {
                    waitfor (go);
                    serve();
                }
            }
        }
        """
        assert "DC011" in rules_of(source)

    def test_isr_written_flag_clean(self):
        source = """
        char go;
        void rx_isr(void) {
            go = 1;
        }
        void main(void) {
            for (;;) {
                costate {
                    waitfor (go);
                    serve();
                }
            }
        }
        """
        assert "DC011" not in rules_of(source)

    def test_call_condition_exempt(self):
        """The external world answers a polled condition."""
        source = """
        void main(void) {
            for (;;) {
                costate {
                    waitfor (sock_established(0));
                    serve();
                }
            }
        }
        """
        assert "DC011" not in rules_of(source)

    def test_other_costatement_write_clean(self):
        source = """
        char go;
        void main(void) {
            for (;;) {
                costate {
                    waitfor (go);
                    serve();
                }
                costate {
                    go = 1;
                }
            }
        }
        """
        assert "DC011" not in rules_of(source)


# -- DC012: window pointer escaping its mapping across a yield ----------------

class TestDC012:
    def test_pointer_used_after_yield_flagged(self):
        source = """
        int ready;
        void main(void) {
            int *buffer;
            for (;;) {
                costate {
                    buffer = xmem_window(4096);
                    waitfor (ready);
                    consume(buffer[0]);
                }
            }
        }
        """
        assert "DC012" in rules_of(source)

    def test_remapped_after_yield_clean(self):
        source = """
        int ready;
        void main(void) {
            int *buffer;
            for (;;) {
                costate {
                    buffer = xmem_window(4096);
                    waitfor (ready);
                    buffer = xmem_window(4096);
                    consume(buffer[0]);
                }
            }
        }
        """
        assert "DC012" not in rules_of(source)

    def test_use_before_yield_clean(self):
        source = """
        int ready;
        void main(void) {
            int *buffer;
            for (;;) {
                costate {
                    buffer = xmem_window(4096);
                    consume(buffer[0]);
                    waitfor (ready);
                }
            }
        }
        """
        assert "DC012" not in rules_of(source)

    def test_ordinary_pointer_not_tracked(self):
        source = """
        int ready;
        void main(void) {
            int *buffer;
            for (;;) {
                costate {
                    buffer = root_buffer(16);
                    waitfor (ready);
                    consume(buffer[0]);
                }
            }
        }
        """
        assert "DC012" not in rules_of(source)
