"""The dclint CLI: formats, exit codes, and the golden JSON shape."""

import json
import subprocess
import sys

import pytest

from repro.analysis.cli import main

VIOLATING = """\
int ticks;

void timer_isr(void) {
    ticks = ticks + 1;
}

void main(void) {
    int t;
    t = ticks;
    yield;
}
"""

CLEAN = """\
shared int ticks;

void timer_isr(void) {
    ticks = ticks + 1;
}

void main(void) {
    int t;
    t = ticks;
}
"""


@pytest.fixture
def violating_file(tmp_path):
    path = tmp_path / "violating.c"
    path.write_text(VIOLATING)
    return path


@pytest.fixture
def clean_file(tmp_path):
    path = tmp_path / "clean.c"
    path.write_text(CLEAN)
    return path


class TestExitCodes:
    def test_errors_exit_nonzero(self, violating_file, capsys):
        assert main([str(violating_file)]) == 1
        out = capsys.readouterr().out
        assert "DC002" in out and "DC004" in out

    def test_clean_exits_zero(self, clean_file, capsys):
        assert main([str(clean_file)]) == 0
        assert "0 error(s)" in capsys.readouterr().out

    def test_directory_tree_is_scanned(self, tmp_path, capsys):
        (tmp_path / "sub").mkdir()
        (tmp_path / "sub" / "fw.c").write_text(VIOLATING)
        assert main([str(tmp_path)]) == 1

    def test_fail_on_warning(self, tmp_path, capsys):
        path = tmp_path / "warn.py"
        path.write_text("names = scheduler._costates\n")
        assert main([str(path)]) == 0
        assert main([str(path), "--fail-on=warning"]) == 1

    def test_max_costates_flag(self, tmp_path, capsys):
        blocks = "".join(
            f"costate h{i} {{ yield; }}\n" for i in range(4)
        )
        path = tmp_path / "wide.c"
        path.write_text(f"void main(void) {{ for (;;) {{ {blocks} }} }}")
        assert main([str(path)]) == 1
        assert main([str(path), "--max-costates=4"]) == 0

    def test_module_entry_point(self, violating_file):
        result = subprocess.run(
            [sys.executable, "-m", "repro.analysis", str(violating_file)],
            capture_output=True, text=True,
        )
        assert result.returncode == 1
        assert "DC004" in result.stdout


class TestJsonFormat:
    def test_golden_json(self, violating_file, capsys):
        assert main([str(violating_file), "--format=json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        file = str(violating_file)
        assert payload == {
            "tool": "dclint",
            "schema_version": 2,
            "rules": [f"DC{n:03d}" for n in range(1, 13)]
            + [f"PY{n}" for n in range(101, 107)],
            "diagnostics": [
                {
                    "rule": "DC004",
                    "severity": "error",
                    "message": "multibyte global 'ticks' is written in "
                               "interrupt context and accessed from the "
                               "main loop without the atomic bracket: an "
                               "interrupt between byte stores tears the "
                               "value",
                    "file": file,
                    "line": 4,
                    "col": 11,
                    "hint": "declare it 'shared int ticks;' so updates are "
                            "bracketed with IPSET/IPRES (paper, Figure 1)",
                },
                {
                    "rule": "DC002",
                    "severity": "error",
                    "message": "'yield' outside a costatement has no saved "
                               "program counter to return to",
                    "file": file,
                    "line": 10,
                    "col": 5,
                    "hint": "move the statement into a costate { ... } block",
                },
            ],
            "summary": {"errors": 2, "warnings": 0, "notes": 0},
        }

    def test_json_clean_run(self, clean_file, capsys):
        assert main([str(clean_file), "--format=json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["diagnostics"] == []
        assert payload["summary"] == {"errors": 0, "warnings": 0, "notes": 0}

    def test_diagnostics_sorted_by_location(self, tmp_path, capsys):
        """Schema v2 guarantees (file, line, col, rule) order."""
        (tmp_path / "b.c").write_text(VIOLATING)
        (tmp_path / "a.c").write_text(VIOLATING)
        assert main([str(tmp_path), "--format=json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        keys = [(d["file"], d["line"], d["col"], d["rule"])
                for d in payload["diagnostics"]]
        assert keys == sorted(keys)


class TestJobs:
    def test_parallel_output_byte_identical(self, tmp_path, capsys):
        for name in ("a.c", "b.c", "c.c"):
            (tmp_path / name).write_text(VIOLATING)
        (tmp_path / "clean.c").write_text(CLEAN)
        assert main([str(tmp_path), "--format=json"]) == 1
        serial = capsys.readouterr().out
        assert main([str(tmp_path), "--format=json", "--jobs=3"]) == 1
        assert capsys.readouterr().out == serial

    def test_invalid_jobs_is_a_usage_error(self, clean_file, capsys):
        assert main([str(clean_file), "--jobs=0"]) == 2
