"""dcflow engine tests: CFG shape, solver convergence, mask lattice.

These pin the *mechanics* the DC008..DC012 rules stand on -- the rules
themselves are covered in test_flow_rules.py.
"""

from repro.analysis.flow import (
    BOTTOM,
    UNKNOWN,
    InterruptMaskAnalysis,
    ReachingDefinitions,
    build_cfg,
    interrupts_disabled,
    solve,
)
from repro.analysis.flow.analyses import Def, UNINIT, write_of
from repro.dync.compiler.parser import parse


def cfg_of(source, name="main"):
    return build_cfg(parse(source).function(name))


def node_writing(cfg, name):
    """The unique CFG node that (strongly) writes ``name``."""
    nodes = [n for n in cfg.nodes if write_of(n) == (name, True)]
    assert len(nodes) == 1, nodes
    return nodes[0]


def edge_kinds(node):
    return sorted(edge.kind for edge in node.succs)


# -- CFG shape on a full costatement ------------------------------------------

COSTATE_SOURCE = """
int ready;
int bad;
int step;
void main(void) {
    for (;;) {
        costate {
            waitfor (ready);
            yield;
            if (bad) { abort; }
            step = step + 1;
        }
    }
}
"""


class TestCostateCfg:
    def test_scheduling_node_kinds_present(self):
        cfg = cfg_of(COSTATE_SOURCE)
        kinds = {node.kind for node in cfg.nodes}
        assert {"costate", "costate_exit", "waitfor", "yield",
                "abort", "branch"} <= kinds

    def test_waitfor_has_wait_edge_to_scheduler_and_fall_through(self):
        cfg = cfg_of(COSTATE_SOURCE)
        waitfor, = (n for n in cfg.nodes if n.kind == "waitfor")
        assert edge_kinds(waitfor) == ["fall", "wait"]
        wait_edge, = (e for e in waitfor.succs if e.kind == "wait")
        assert wait_edge.dst.kind == "costate_exit"

    def test_abort_jumps_to_costate_exit(self):
        cfg = cfg_of(COSTATE_SOURCE)
        abort, = (n for n in cfg.nodes if n.kind == "abort")
        assert edge_kinds(abort) == ["abort"]
        assert abort.succs[0].dst.kind == "costate_exit"

    def test_resume_edges_reach_every_yield_point(self):
        """Saved-PC re-entry: the costatement entry resumes at each of
        its yield points, not at the top."""
        cfg = cfg_of(COSTATE_SOURCE)
        enter, = (n for n in cfg.nodes if n.kind == "costate")
        resumed = {e.dst.kind for e in enter.succs if e.kind == "resume"}
        assert resumed == {"waitfor", "yield"}

    def test_big_loop_has_back_edge(self):
        cfg = cfg_of(COSTATE_SOURCE)
        assert any(e.kind == "back" for e in cfg.edges())

    def test_everything_reachable(self):
        cfg = cfg_of(COSTATE_SOURCE)
        assert cfg.reachable() >= set(cfg.nodes) - {cfg.exit}

    def test_statement_after_waitfor_zero_is_disconnected(self):
        cfg = cfg_of("""
        void main(void) {
            for (;;) {
                costate {
                    waitfor (0);
                    blink();
                }
            }
        }
        """)
        dead = [n for n in cfg.nodes
                if n.kind == "stmt" and n not in cfg.reachable()]
        assert len(dead) == 1


# -- worklist solver on a loop ------------------------------------------------

LOOP_SOURCE = """
int total;
void main(void) {
    int i;
    i = 0;
    while (i < 8) {
        total = total + i;
        i = i + 1;
    }
    done(total);
}
"""


class TestSolverConvergence:
    def test_reaches_fixpoint_on_a_loop(self):
        cfg = cfg_of(LOOP_SOURCE)
        solution = solve(cfg, ReachingDefinitions())
        # A worklist solver revisits loop nodes but terminates; the
        # iteration count is bounded by nodes * lattice height, and for
        # this one-loop function a couple of passes suffice.
        assert solution.iterations >= len(cfg.nodes)
        assert solution.iterations <= 4 * len(cfg.nodes)

    def test_loop_body_definition_reaches_the_header(self):
        cfg = cfg_of(LOOP_SOURCE)
        solution = solve(cfg, ReachingDefinitions())
        header, = (n for n in cfg.nodes if n.kind == "branch")
        body_def = node_writing(cfg, "total")
        assert Def("total", body_def.index) in solution.before[header]

    def test_both_definitions_of_counter_join_at_the_header(self):
        cfg = cfg_of(LOOP_SOURCE)
        solution = solve(cfg, ReachingDefinitions())
        writes = {n.index for n in cfg.nodes
                  if write_of(n) == ("i", True)}   # i = 0 and i = i + 1
        header, = (n for n in cfg.nodes if n.kind == "branch")
        defs = {d.node_index for d in solution.before[header]
                if d.name == "i"}
        assert defs == writes and len(defs) == 2


# -- the interrupt-mask lattice -----------------------------------------------

class TestInterruptMaskLattice:
    def test_join_identities(self):
        analysis = InterruptMaskAnalysis()
        assert analysis.join(BOTTOM, (0,)) == (0,)
        assert analysis.join((0, 1), BOTTOM) == (0, 1)
        assert analysis.join((0, 1), (0, 1)) == (0, 1)
        assert analysis.join((0, 1), (0,)) is UNKNOWN

    def test_bracket_proves_mask_inside_only(self):
        cfg = cfg_of("""
        int x;
        void main(void) {
            before();
            ipset(1);
            x = 1;
            ipres();
            after();
        }
        """)
        solution = solve(cfg, InterruptMaskAnalysis())
        inside = node_writing(cfg, "x")
        assert interrupts_disabled(solution.before[inside])
        assert solution.before[inside] == (0, 1)
        after, = (n for n in cfg.nodes if n.kind == "stmt"
                  and getattr(getattr(n.stmt, "expr", None), "name", "")
                  == "after")
        assert solution.before[after] == (0,)
        assert not interrupts_disabled(solution.before[after])

    def test_conditional_release_joins_to_unknown(self):
        cfg = cfg_of("""
        int flag;
        int x;
        void main(void) {
            ipset(1);
            if (flag) { ipres(); }
            x = 1;
        }
        """)
        solution = solve(cfg, InterruptMaskAnalysis())
        merge = node_writing(cfg, "x")
        assert solution.before[merge] is UNKNOWN
        assert not interrupts_disabled(solution.before[merge])

    def test_shift_register_depth_clamped(self):
        analysis = InterruptMaskAnalysis()
        state = (0,)

        class _FakeCall:
            def __init__(self, level):
                self.name = "ipset"
                self.args = [type("N", (), {"value": level})()]

        for level in (1, 2, 3, 1, 2):
            state = (state + (level,))[-4:]
        assert len(state) == 4

    def test_unreached_state_is_bottom(self):
        assert not interrupts_disabled(BOTTOM)
        assert not interrupts_disabled(UNKNOWN)
