"""dclint on the dynamic-pool firmware: DC003 counts the pooled
costatement at its configured capacity, and the build lints clean once
the concurrency cap matches the pool."""

from repro.analysis import LintConfig, analyze_dync_source
from repro.rabbit.programs import (
    POOLED_MAIN_SOURCE,
    pooled_main_source,
)


def test_shipped_pooled_source_is_the_eight_slot_build():
    assert POOLED_MAIN_SOURCE == pooled_main_source()
    assert "int NSLOTS = 8;" in POOLED_MAIN_SOURCE


def test_pool_counted_at_configured_capacity():
    """At the Figure 3 cap the 8-slot pool is a DC003 error that names
    the pooled costatement and its capacity -- the analyzer sees eight
    connections in one costatement, not one."""
    diagnostics = analyze_dync_source(POOLED_MAIN_SOURCE)
    assert [d.rule for d in diagnostics] == ["DC003"]
    (diag,) = diagnostics
    assert "slot_pool pools 8 slots" in diag.message
    assert "8 connection slots" in diag.message


def test_lints_clean_at_matching_cap():
    """Raise the cap to the pool's capacity (the recompile the paper
    describes) and the build has zero errors and zero diagnostics."""
    config = LintConfig(max_costates=8)
    assert analyze_dync_source(POOLED_MAIN_SOURCE, config=config) == []


def test_capacity_tracks_the_generator_argument():
    for slots in (4, 16):
        diagnostics = analyze_dync_source(pooled_main_source(slots))
        (diag,) = diagnostics
        assert f"slot_pool pools {slots} slots" in diag.message
        clean = analyze_dync_source(
            pooled_main_source(slots),
            config=LintConfig(max_costates=slots),
        )
        assert clean == []


def test_non_const_bound_is_not_a_countable_pool():
    """The negative fixture: a runtime-loaded NSLOTS is not
    const-resolvable, so the analyzer conservatively counts the
    costatement as a single slot and the default cap holds."""
    source = pooled_main_source(8, const_bound=False)
    assert "NSLOTS = config_load();" in source
    assert analyze_dync_source(source) == []


def test_non_const_bound_still_counts_as_one_toward_the_cap():
    """Even unresolvable, the pooled costatement occupies one slot in
    the census: with the cap at zero headroom it tips DC003 over."""
    source = pooled_main_source(8, const_bound=False)
    diagnostics = analyze_dync_source(
        source, config=LintConfig(max_costates=0)
    )
    rules = [d.rule for d in diagnostics]
    assert "DC003" in rules
    (dc003,) = [d for d in diagnostics if d.rule == "DC003"]
    # Counted as a plain request costatement, no pool detail.
    assert "pools" not in dc003.message
