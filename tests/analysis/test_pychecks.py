"""Layer 2: Python-side runtime-usage checks and embedded-source lint."""

import textwrap

from repro.analysis import Severity, analyze_python_source


def rules_of(source):
    return [d.rule for d in analyze_python_source(textwrap.dedent(source))]


class TestPY101:
    def test_discarded_xalloc_flagged(self):
        assert rules_of("""
            allocator.xalloc(128)
        """) == ["PY101"]

    def test_bound_xalloc_clean(self):
        assert rules_of("""
            handle = allocator.xalloc(128)
        """) == []

    def test_bare_function_form_flagged(self):
        assert rules_of("""
            xalloc(64)
        """) == ["PY101"]


class TestPY102:
    def test_direct_value_write_flagged(self):
        assert rules_of("""
            state._value = 7
        """) == ["PY102"]

    def test_augmented_write_flagged(self):
        assert rules_of("""
            state._value += 1
        """) == ["PY102"]

    def test_self_write_inside_class_clean(self):
        assert rules_of("""
            class ProtectedVariable:
                def set(self, value):
                    self._value = value
        """) == []

    def test_set_method_clean(self):
        assert rules_of("""
            state.set(7)
        """) == []


class TestPY103:
    def test_free_on_allocator_flagged(self):
        assert rules_of("""
            allocator.free(handle)
        """) == ["PY103"]

    def test_free_on_unrelated_object_clean(self):
        assert rules_of("""
            widget.free(handle)
        """) == []


class TestPY104:
    def test_private_costate_list_warned(self):
        diagnostics = analyze_python_source("names = scheduler._costates\n")
        assert [d.rule for d in diagnostics] == ["PY104"]
        assert diagnostics[0].severity == Severity.WARNING

    def test_public_accessor_clean(self):
        assert rules_of("""
            names = scheduler.costate_names
        """) == []

    def test_self_access_inside_scheduler_clean(self):
        assert rules_of("""
            class CostateScheduler:
                def tick(self):
                    return len(self._costates)
        """) == []


class TestEmbeddedExtraction:
    def test_embedded_dync_literal_is_linted(self):
        diagnostics = analyze_python_source(textwrap.dedent('''
            FIRMWARE = """
            void main(void) {
                yield;
            }
            """
        '''), file="fw.py")
        assert [d.rule for d in diagnostics] == ["DC002"]
        # Line numbers point into the host Python file.
        assert diagnostics[0].file == "fw.py"
        assert diagnostics[0].line == 4

    def test_docstrings_are_not_extracted(self):
        assert rules_of('''
            """Discusses costate { yield; } in prose... with ellipses."""
            x = 1
        ''') == []

    def test_suppression_in_python_source(self):
        assert rules_of("""
            allocator.xalloc(128)  # dclint: allow(PY101)
        """) == []

    def test_python_syntax_error_reported(self):
        diagnostics = analyze_python_source("def broken(:\n")
        assert [d.rule for d in diagnostics] == ["PY000"]
