"""Layer 2: Python-side runtime-usage checks and embedded-source lint."""

import textwrap

from repro.analysis import Severity, analyze_python_source


def rules_of(source):
    return [d.rule for d in analyze_python_source(textwrap.dedent(source))]


class TestPY101:
    def test_discarded_xalloc_flagged(self):
        assert rules_of("""
            allocator.xalloc(128)
        """) == ["PY101"]

    def test_bound_xalloc_clean(self):
        assert rules_of("""
            handle = allocator.xalloc(128)
        """) == []

    def test_bare_function_form_flagged(self):
        assert rules_of("""
            xalloc(64)
        """) == ["PY101"]


class TestPY102:
    def test_direct_value_write_flagged(self):
        assert rules_of("""
            state._value = 7
        """) == ["PY102"]

    def test_augmented_write_flagged(self):
        assert rules_of("""
            state._value += 1
        """) == ["PY102"]

    def test_self_write_inside_class_clean(self):
        assert rules_of("""
            class ProtectedVariable:
                def set(self, value):
                    self._value = value
        """) == []

    def test_set_method_clean(self):
        assert rules_of("""
            state.set(7)
        """) == []


class TestPY103:
    def test_free_on_allocator_flagged(self):
        assert rules_of("""
            allocator.free(handle)
        """) == ["PY103"]

    def test_free_on_unrelated_object_clean(self):
        assert rules_of("""
            widget.free(handle)
        """) == []


class TestPY104:
    def test_private_costate_list_warned(self):
        diagnostics = analyze_python_source("names = scheduler._costates\n")
        assert [d.rule for d in diagnostics] == ["PY104"]
        assert diagnostics[0].severity == Severity.WARNING

    def test_public_accessor_clean(self):
        assert rules_of("""
            names = scheduler.costate_names
        """) == []

    def test_self_access_inside_scheduler_clean(self):
        assert rules_of("""
            class CostateScheduler:
                def tick(self):
                    return len(self._costates)
        """) == []


class TestEmbeddedExtraction:
    def test_embedded_dync_literal_is_linted(self):
        diagnostics = analyze_python_source(textwrap.dedent('''
            FIRMWARE = """
            void main(void) {
                yield;
            }
            """
        '''), file="fw.py")
        assert [d.rule for d in diagnostics] == ["DC002"]
        # Line numbers point into the host Python file.
        assert diagnostics[0].file == "fw.py"
        assert diagnostics[0].line == 4

    def test_docstrings_are_not_extracted(self):
        assert rules_of('''
            """Discusses costate { yield; } in prose... with ellipses."""
            x = 1
        ''') == []

    def test_suppression_in_python_source(self):
        assert rules_of("""
            allocator.xalloc(128)  # dclint: allow(PY101)
        """) == []

    def test_python_syntax_error_reported(self):
        diagnostics = analyze_python_source("def broken(:\n")
        assert [d.rule for d in diagnostics] == ["PY000"]


class TestPY105:
    def test_wall_clock_read_flagged(self):
        assert rules_of("""
            import time
            now = time.time()
        """) == ["PY105"]

    def test_perf_counter_flagged(self):
        assert rules_of("""
            import time
            start = time.perf_counter()
        """) == ["PY105"]

    def test_datetime_now_flagged(self):
        assert rules_of("""
            import datetime
            stamp = datetime.datetime.now()
        """) == ["PY105"]

    def test_global_rng_flagged(self):
        assert rules_of("""
            import random
            jitter = random.random()
            choice = random.randint(0, 7)
        """) == ["PY105", "PY105"]

    def test_seeded_rng_instance_clean(self):
        assert rules_of("""
            import random
            rng = random.Random(42)
            jitter = rng.random()
        """) == []

    def test_from_import_tracked(self):
        assert rules_of("""
            from time import perf_counter
            start = perf_counter()
        """) == ["PY105"]

    def test_from_import_alias_tracked(self):
        assert rules_of("""
            from time import time as wall
            start = wall()
        """) == ["PY105"]

    def test_allow_annotation_suppresses(self):
        assert rules_of("""
            import time
            start = time.time()  # dclint: allow(PY105)
        """) == []

    def test_simulated_clock_clean(self):
        assert rules_of("""
            now = simulator.now()
            later = clock.monotonic
        """) == []

    def test_error_severity(self):
        import textwrap
        diag, = analyze_python_source(textwrap.dedent("""
            import time
            now = time.time()
        """))
        assert diag.severity == Severity.ERROR


class TestPY106:
    def test_for_over_set_literal_flagged(self):
        assert rules_of("""
            for name in {"a", "b"}:
                emit(name)
        """) == ["PY106"]

    def test_for_over_set_call_flagged(self):
        assert rules_of("""
            for name in set(names):
                emit(name)
        """) == ["PY106"]

    def test_comprehension_over_set_flagged(self):
        assert rules_of("""
            rows = [emit(n) for n in frozenset(names)]
        """) == ["PY106"]

    def test_list_laundering_flagged(self):
        assert rules_of("""
            ordered = list({"a", "b"})
        """) == ["PY106"]

    def test_join_laundering_flagged(self):
        assert rules_of("""
            label = ", ".join(set(names))
        """) == ["PY106"]

    def test_sorted_set_clean(self):
        assert rules_of("""
            for name in sorted(set(names)):
                emit(name)
        """) == []

    def test_list_iteration_clean(self):
        assert rules_of("""
            for name in names:
                emit(name)
        """) == []

    def test_membership_test_clean(self):
        assert rules_of("""
            wanted = {"a", "b"}
            if name in wanted:
                emit(name)
        """) == []
