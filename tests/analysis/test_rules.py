"""dclint rule coverage: one violating and one clean fixture per rule.

Each DC rule encodes a porting pitfall from the paper (Sections 4-5);
the positive fixture is the bug class as the authors would have hit it,
the negative fixture is the disciplined version the port shipped.
"""

import dataclasses

import pytest

from repro.analysis import LintConfig, Severity, analyze_dync_source
from repro.analysis.config import DEFAULT_CONFIG


def rules_of(source, **config_overrides):
    config = dataclasses.replace(DEFAULT_CONFIG, **config_overrides) \
        if config_overrides else DEFAULT_CONFIG
    return [d.rule for d in analyze_dync_source(source, config=config)]


def diags_of(source):
    return analyze_dync_source(source)


# -- DC001: blocking constructs inside a costatement -------------------------

class TestDC001:
    def test_blocking_call_flagged(self):
        source = """
        void main(void) {
            for (;;) {
                costate { tcp_read(0, 0, 16); }
            }
        }
        """
        assert rules_of(source) == ["DC001"]

    def test_infinite_loop_without_yield_flagged(self):
        source = """
        void main(void) {
            for (;;) {
                costate { while (1) { work(); } }
            }
        }
        """
        assert rules_of(source) == ["DC001"]

    def test_wait_loop_on_external_condition_flagged(self):
        source = """
        void main(void) {
            for (;;) {
                costate { while (sock_established(0)) { log(1); } }
            }
        }
        """
        assert rules_of(source) == ["DC001"]

    def test_busy_wait_on_unchanged_variable_flagged(self):
        source = """
        int flag;
        void main(void) {
            for (;;) {
                costate { while (flag) { log(1); } }
            }
        }
        """
        assert rules_of(source) == ["DC001"]

    def test_yielding_loop_clean(self):
        source = """
        void main(void) {
            for (;;) {
                costate {
                    while (1) { yield; }
                }
            }
        }
        """
        assert rules_of(source) == []

    def test_bounded_loop_clean(self):
        source = """
        void main(void) {
            int i;
            int acc;
            for (;;) {
                costate {
                    for (i = 0; i < 16; i = i + 1) acc = acc + i;
                    yield;
                }
            }
        }
        """
        assert rules_of(source) == []

    def test_blocking_call_outside_costate_not_dc001(self):
        # The unix original may block; DC001 is a costatement rule.
        source = "void main(void) { tcp_read(0, 0, 16); }"
        assert "DC001" not in rules_of(source)


# -- DC002: cooperative keywords outside a costatement -----------------------

class TestDC002:
    @pytest.mark.parametrize("statement", [
        "yield;", "abort;", "waitfor(ready());",
    ])
    def test_keyword_outside_costate_flagged(self, statement):
        source = f"void main(void) {{ {statement} }}"
        assert rules_of(source) == ["DC002"]

    def test_keywords_inside_costate_clean(self):
        source = """
        void main(void) {
            for (;;) {
                costate { waitfor(ready()); yield; abort; }
            }
        }
        """
        assert rules_of(source) == []


# -- DC003: the Figure 3 static concurrency cap ------------------------------

def _main_with_costates(count, driver=True):
    blocks = "".join(
        f"costate handler{i} {{ yield; }}\n" for i in range(count)
    )
    if driver:
        blocks += "costate tick_driver always_on { yield; }\n"
    return f"void main(void) {{ for (;;) {{ {blocks} }} }}"


class TestDC003:
    def test_four_request_costates_flagged(self):
        assert rules_of(_main_with_costates(4)) == ["DC003"]

    def test_three_request_costates_plus_driver_clean(self):
        # Figure 3 exactly: the driver costatement is exempt by name.
        assert rules_of(_main_with_costates(3)) == []

    def test_cap_is_configurable(self):
        assert rules_of(_main_with_costates(4), max_costates=4) == []
        assert rules_of(_main_with_costates(2), max_costates=1) == ["DC003"]


def _pooled_main(capacity):
    """The indexed-cofunction idiom: one costatement, N slots."""
    return """
    int NSLOTS = %d;
    int state[8];
    void main(void) {
        int slot;
        for (;;) {
            costate tcp_driver { drive(); }
            costate pool {
                for (slot = 0; slot < NSLOTS; slot++) {
                    waitfor (sock_ready(slot));
                    serve(state[slot]);
                }
            }
        }
    }
    """ % capacity


class TestDC003Pools:
    def test_pool_counted_by_configured_capacity(self):
        assert rules_of(_pooled_main(4)) == ["DC003"]

    def test_pool_within_cap_clean(self):
        assert rules_of(_pooled_main(3)) == []

    def test_pool_message_names_the_slot_count(self):
        diag, = diags_of(_pooled_main(4))
        assert "4 connection slots" in diag.message
        assert "pool pools 4 slots" in diag.message

    def test_pool_plus_plain_costate_sums_slots(self):
        source = """
        int NSLOTS = 3;
        int state[8];
        void main(void) {
            int slot;
            for (;;) {
                costate pool {
                    for (slot = 0; slot < NSLOTS; slot++) {
                        waitfor (sock_ready(slot));
                        serve(state[slot]);
                    }
                }
                costate extra {
                    waitfor (sock_ready(7));
                    serve(state[7]);
                }
            }
        }
        """
        assert rules_of(source) == ["DC003"]

    def test_compute_loop_without_yield_is_not_a_pool(self):
        """A constant-bound loop that never yields is routine compute:
        the costatement is still one connection."""
        source = """
        int NSLOTS = 8;
        int state[8];
        void main(void) {
            int slot;
            for (;;) {
                costate warm {
                    for (slot = 0; slot < NSLOTS; slot++) {
                        state[slot] = 0;
                    }
                    yield;
                }
            }
        }
        """
        assert rules_of(source) == []

    def test_pool_bound_by_literal_constant(self):
        source = """
        int state[8];
        void main(void) {
            int slot;
            for (;;) {
                costate pool {
                    for (slot = 0; slot < 5; slot++) {
                        waitfor (sock_ready(slot));
                        serve(state[slot]);
                    }
                }
            }
        }
        """
        assert rules_of(source) == ["DC003"]


# -- DC004: torn-write race detector -----------------------------------------

class TestDC004:
    def test_unshared_dual_context_multibyte_flagged(self):
        source = """
        int ticks;
        void timer_isr(void) { ticks = ticks + 1; }
        void main(void) { int t; t = ticks; }
        """
        assert rules_of(source) == ["DC004"]

    def test_shared_dual_context_clean(self):
        source = """
        shared int ticks;
        void timer_isr(void) { ticks = ticks + 1; }
        void main(void) { int t; t = ticks; }
        """
        assert rules_of(source) == []

    def test_single_byte_global_clean(self):
        # char stores are single-byte and cannot tear.
        source = """
        char flag;
        void timer_isr(void) { flag = 1; }
        void main(void) { int t; t = flag; }
        """
        assert rules_of(source) == []

    def test_single_context_multibyte_clean(self):
        source = """
        int ticks;
        void main(void) { ticks = ticks + 1; }
        """
        assert rules_of(source) == []

    def test_main_writes_isr_reads_flagged(self):
        source = """
        int total;
        void main(void) { total = total + 1; }
        void status_isr(void) { report(total); }
        """
        assert rules_of(source) == ["DC004"]


# -- DC005: static memory budget ---------------------------------------------

class TestDC005:
    def test_root_overflow_flagged(self):
        # The compiler's root data window is ~1.25 KB; two such arrays
        # cannot fit (they would collide with the stack segment).
        source = """
        char a[700];
        char b[700];
        void main(void) { a[0] = b[0]; }
        """
        diagnostics = diags_of(source)
        assert [d.rule for d in diagnostics] == ["DC005"]
        assert diagnostics[0].severity == Severity.ERROR

    def test_near_budget_warns(self):
        source = """
        char a[1200];
        void main(void) { a[0] = 1; }
        """
        diagnostics = diags_of(source)
        assert [d.rule for d in diagnostics] == ["DC005"]
        assert diagnostics[0].severity == Severity.WARNING

    def test_locals_and_params_count(self):
        # Locals are static in Dynamic C: they consume the same window.
        source = """
        int helper(int x) { char buffer[900]; buffer[0] = x; return 0; }
        void main(void) { char other[500]; other[0] = 1; }
        """
        assert "DC005" in rules_of(source)

    def test_const_tables_in_flash_clean(self):
        # Default placement puts const arrays in flash, not root RAM.
        source = """
        const char table[1400] = {1};
        void main(void) { int t; t = table[0]; }
        """
        assert rules_of(source) == []

    def test_small_program_clean(self):
        source = """
        char state[16];
        void main(void) { state[0] = 1; }
        """
        assert rules_of(source) == []


# -- DC006: xmem pointers dereferenced as root pointers ----------------------

class TestDC006:
    def test_indexing_xalloc_result_flagged(self):
        source = """
        void main(void) {
            int p;
            p = xalloc(64);
            p[0] = 1;
        }
        """
        assert rules_of(source) == ["DC006"]

    def test_arithmetic_on_xalloc_result_flagged(self):
        source = """
        void main(void) {
            int p;
            int q;
            p = xalloc(64);
            q = p + 2;
        }
        """
        assert rules_of(source) == ["DC006"]

    def test_opaque_handle_use_clean(self):
        source = """
        void main(void) {
            int p;
            p = xalloc(64);
            xmem2root(0xC400, p, 64);
        }
        """
        assert rules_of(source) == []

    def test_reassigned_variable_clean(self):
        source = """
        void main(void) {
            int p;
            p = xalloc(64);
            p = 0;
            p = p + 2;
        }
        """
        assert rules_of(source) == []


# -- DC007: busy compute loop starves the big loop ----------------------------

class TestDC007:
    def test_unbounded_compute_loop_warns(self):
        # Trip count depends on a runtime variable: could grind for a
        # long time with no scheduling point.
        source = """
        void main(void) {
            int i;
            int n;
            int acc;
            for (;;) {
                costate {
                    for (i = 0; i < n; i = i + 1) acc = acc + i;
                    yield;
                }
            }
        }
        """
        assert rules_of(source) == ["DC007"]
        (diag,) = diags_of(source)
        assert diag.severity == Severity.WARNING

    def test_large_constant_loop_warns(self):
        source = """
        void main(void) {
            int i;
            int acc;
            for (;;) {
                costate {
                    for (i = 0; i < 4096; i = i + 1) acc = acc + i;
                    yield;
                }
            }
        }
        """
        assert rules_of(source) == ["DC007"]

    def test_short_constant_loop_clean(self):
        # 16 iterations of integer math is routine work, not starvation.
        source = """
        void main(void) {
            int i;
            int acc;
            for (;;) {
                costate {
                    for (i = 0; i < 16; i = i + 1) acc = acc + i;
                    yield;
                }
            }
        }
        """
        assert rules_of(source) == []

    def test_loop_with_yield_clean(self):
        source = """
        void main(void) {
            int i;
            int n;
            int acc;
            for (;;) {
                costate {
                    for (i = 0; i < n; i = i + 1) { acc = acc + i; yield; }
                }
            }
        }
        """
        assert rules_of(source) == []

    def test_loop_outside_costate_not_dc007(self):
        source = """
        void main(void) {
            int i;
            int n;
            int acc;
            for (i = 0; i < n; i = i + 1) acc = acc + i;
        }
        """
        assert rules_of(source) == []

    def test_threshold_is_configurable(self):
        source = """
        void main(void) {
            int i;
            int acc;
            for (;;) {
                costate {
                    for (i = 0; i < 16; i = i + 1) acc = acc + i;
                    yield;
                }
            }
        }
        """
        assert rules_of(source, busy_loop_iterations=8) == ["DC007"]


# -- cross-cutting -----------------------------------------------------------

class TestEngine:
    def test_parse_error_becomes_diagnostic(self):
        diagnostics = analyze_dync_source("void main( {", file="broken.c")
        assert len(diagnostics) == 1
        assert diagnostics[0].rule == "PAR001"
        assert diagnostics[0].severity == Severity.ERROR
        assert diagnostics[0].file == "broken.c"

    def test_suppression_comment_silences_rule(self):
        source = """
        void main(void) {
            /* dclint: allow(DC002) */
            yield;
        }
        """
        assert analyze_dync_source(source) == []

    def test_suppression_is_rule_specific(self):
        source = """
        void main(void) {
            /* dclint: allow(DC001) */
            yield;
        }
        """
        assert rules_of(source) == ["DC002"]

    def test_diagnostics_carry_line_and_col(self):
        source = "void main(void) {\n    yield;\n}"
        (diag,) = analyze_dync_source(source)
        assert (diag.line, diag.col) == (2, 5)

    def test_config_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            LintConfig().max_costates = 5
