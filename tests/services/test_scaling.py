"""The concurrency scaling curve (satellite of the dynamic pool):
seeded, monotone, and byte-identical across runs and worker fan-out."""

import json

import pytest

from repro.services.scaling import (
    SCALING_POOL_SIZES,
    run_scaling_curve,
    run_scaling_point,
)

#: Quick workload mirroring the bench's quick snapshot: small enough
#: for tier-1, big enough to exercise refusal + retry on the small
#: pool and a real speedup at 8.
_QUICK = dict(pool_sizes=(3, 8), clients=6, requests=1)


@pytest.fixture(scope="module")
def quick_curve():
    return run_scaling_curve(**_QUICK)


class TestScalingPoint:
    def test_rejects_unknown_variant(self):
        with pytest.raises(ValueError):
            run_scaling_point(variant="threads", slots=3)

    def test_point_is_deterministic(self):
        kwargs = dict(variant="pool", slots=3, clients=4, requests=1)
        assert run_scaling_point(**kwargs) == run_scaling_point(**kwargs)

    def test_point_shape(self):
        point = run_scaling_point(
            variant="static", slots=3, clients=3, requests=1)
        assert point["variant"] == "static"
        assert point["slots"] == 3
        assert point["completed_requests"] == 3
        assert set(point["latency_s"]) == {"p50", "p95", "p99"}
        assert point["xmem_budget_violations"] == 0


class TestCurveProperties:
    def test_section_shape(self, quick_curve):
        assert quick_curve["workload"]["pool_sizes"] == [3, 8]
        assert quick_curve["static3"]["variant"] == "static"
        assert set(quick_curve["pools"]) == {"3", "8"}
        assert "speedup_8_vs_static3" in quick_curve["summary"]

    def test_throughput_monotone_non_decreasing(self, quick_curve):
        assert quick_curve["summary"]["monotone_throughput"] == 1

    def test_refusal_rate_monotone_non_increasing(self, quick_curve):
        assert quick_curve["summary"]["monotone_refusal_rate"] == 1
        sizes = [str(n) for n in quick_curve["workload"]["pool_sizes"]]
        rates = [quick_curve["pools"][n]["refusal_rate"] for n in sizes]
        assert rates == sorted(rates, reverse=True)

    def test_zero_xmem_budget_violations(self, quick_curve):
        assert quick_curve["summary"]["xmem_budget_violations"] == 0
        for point in [quick_curve["static3"]] + list(
            quick_curve["pools"].values()
        ):
            assert point["xmem_used_bytes"] <= point["xmem_capacity_bytes"]

    def test_all_offered_work_eventually_completes(self, quick_curve):
        """Refused clients retry: at every pool size the fixed workload
        is fully served in the end."""
        expected = _QUICK["clients"] * _QUICK["requests"]
        for point in [quick_curve["static3"]] + list(
            quick_curve["pools"].values()
        ):
            assert point["clients_completed"] == _QUICK["clients"]
            assert point["completed_requests"] == expected

    def test_peak_occupancy_bounded_by_pool(self, quick_curve):
        for n, point in quick_curve["pools"].items():
            assert point["peak_slots_occupied"] <= int(n)


class TestDeterminism:
    def test_curve_byte_identical_across_runs(self, quick_curve):
        again = run_scaling_curve(**_QUICK)
        assert json.dumps(quick_curve, sort_keys=True) == json.dumps(
            again, sort_keys=True)

    def test_curve_byte_identical_jobs_1_vs_2(self, quick_curve):
        fanned = run_scaling_curve(jobs=2, **_QUICK)
        assert json.dumps(quick_curve, sort_keys=True) == json.dumps(
            fanned, sort_keys=True)

    def test_default_sizes_cover_the_gate_claim(self):
        # The gate pins speedup at 8 slots; the measured curve must
        # include both endpoints of that claim.
        assert 3 in SCALING_POOL_SIZES
        assert 8 in SCALING_POOL_SIZES

    def test_pool_sizes_deduplicated_and_sorted(self):
        curve = run_scaling_curve(
            pool_sizes=(8, 3, 3), clients=2, requests=1)
        assert curve["workload"]["pool_sizes"] == [3, 8]
