"""The dynamic connection-slot pool redirector (the post-Figure-3
build): structure, end-to-end service, admission refusal, occupancy
telemetry, and the xmem budget."""

import pytest

from repro.crypto.demokeys import DEMO_PSK
from repro.crypto.prng import CipherRng
from repro.dync.runtime.xalloc import XmemAllocator
from repro.issl import FREE, IsslContext, RMC2000_PORT, UNIX_FULL
from repro.net.dynctcp import DyncTcpStack
from repro.net.host import build_lan
from repro.net.sim import Simulator
from repro.obs import Obs
from repro.services import (
    ClientReport,
    SLOT_BUFFER_BYTES,
    TLS_PORT,
    backend_line_server,
    build_pooled_redirector,
    secure_request_client,
)


def _world(slots=3, admission=True, clients=3, obs=None, xmem=None,
           max_sessions=None, **builder_kwargs):
    obs = obs if obs is not None else Obs()
    sim = Simulator(obs=obs)
    names = ["rmc", "backend"] + [f"c{i}" for i in range(clients)]
    _lan, hosts = build_lan(sim, names)
    stack = DyncTcpStack(hosts["rmc"])
    profile = RMC2000_PORT.with_cost_model(FREE)
    if max_sessions is not None:
        from dataclasses import replace
        profile = replace(profile, max_sessions=max_sessions)
    context = IsslContext(profile, CipherRng(b"rmc"), psk=DEMO_PSK, obs=obs)
    stats = {}
    hosts["backend"].spawn(backend_line_server(
        hosts["backend"], backlog=max(5, slots)
    ))
    scheduler = build_pooled_redirector(
        stack, context, "10.0.0.2", slots=slots, admission=admission,
        stats=stats, obs=obs, xmem=xmem, **builder_kwargs)
    scheduler.start()
    return sim, hosts, stats, scheduler, obs


def _client(hosts, sim, index, requests=2, size=16):
    ctx = IsslContext(UNIX_FULL, CipherRng(b"pc%d" % index), psk=DEMO_PSK)
    report = ClientReport(f"c{index}")
    process = hosts[f"c{index}"].spawn(secure_request_client(
        hosts[f"c{index}"], ctx, "10.0.0.1", TLS_PORT, requests, size,
        report))
    return process, report


class TestStructure:
    def test_one_pooled_costate_plus_tick_driver(self):
        _sim, _hosts, _stats, scheduler, _obs = _world(slots=8)
        names = [costate.name for costate in scheduler._costates]
        assert names == ["slot-pool", "tick-driver"]

    def test_slot_capacity_configured_at_build_time(self):
        for slots in (3, 8, 16):
            _sim, _hosts, _stats, scheduler, _obs = _world(slots=slots)
            pool_costate = scheduler._costates[0]
            assert pool_costate.slot_capacity == slots
            # tick driver is one slot in the census, like dclint's.
            assert scheduler.connection_slot_count == slots + 1

    def test_rejects_empty_pool(self):
        with pytest.raises(ValueError):
            _world(slots=0)

    def test_listen_mode_structure(self):
        _sim, _hosts, _stats, scheduler, _obs = _world(
            slots=4, admission=False)
        assert scheduler._costates[0].slot_capacity == 4


class TestService:
    def test_serves_one_client_end_to_end(self):
        sim, hosts, stats, _sched, _obs = _world(slots=3)
        process, report = _client(hosts, sim, 0, requests=3)
        sim.run_until_complete(process, timeout=600)
        assert report.error is None
        assert stats["redirected"] == 3

    def test_serves_more_concurrent_clients_than_figure3(self):
        """Five concurrent connections through one 8-slot costatement:
        the ceiling the static build pins at three."""
        sim, hosts, stats, _sched, obs = _world(
            slots=8, clients=5, max_sessions=8)
        pairs = [_client(hosts, sim, i) for i in range(5)]
        for process, _report in pairs:
            sim.run_until_complete(process, timeout=600)
        assert all(report.error is None for _p, report in pairs)
        assert stats["redirected"] == 10
        gauges = obs.metrics.snapshot()["gauges"]
        peak = gauges["redirector.slots.occupied"]["high_water"]
        assert peak > 3

    def test_listen_mode_serves_clients(self):
        sim, hosts, stats, _sched, _obs = _world(
            slots=3, admission=False, clients=2)
        pairs = [_client(hosts, sim, i) for i in range(2)]
        for process, _report in pairs:
            sim.run_until_complete(process, timeout=600)
        assert all(report.error is None for _p, report in pairs)
        assert stats["redirected"] == 4

    def test_slot_reuse_across_sequential_clients(self):
        sim, hosts, stats, _sched, obs = _world(slots=1, clients=2)
        for index in range(2):
            process, report = _client(hosts, sim, index, requests=1)
            sim.run_until_complete(process, timeout=600)
            assert report.error is None
        assert stats["redirected"] == 2
        counters = dict(obs.metrics.snapshot()["counters"])
        assert counters["redirector.slots.handoffs"] == 2


class TestAdmission:
    def test_burst_past_pool_is_refused_and_counted(self):
        sim, hosts, _stats, _sched, obs = _world(
            slots=1, clients=3, max_sessions=4)
        pairs = [_client(hosts, sim, i, requests=1) for i in range(3)]
        for process, _report in pairs:
            sim.run_until_complete(process, timeout=600)
        sim.run(until=sim.now + 1.0)
        counters = dict(obs.metrics.snapshot()["counters"])
        refused = counters.get("redirector.refused.slots", 0)
        failed = sum(1 for _p, r in pairs if r.error is not None)
        assert refused >= 1
        assert failed == refused
        # Every refusal leaves one flight-recorder event.
        events = obs.recorder.dump()
        assert sum(
            1 for e in events if e["msg"] == "refused: no idle slot"
        ) == refused

    def test_occupancy_gauge_returns_to_zero(self):
        sim, hosts, _stats, _sched, obs = _world(slots=2, clients=2)
        pairs = [_client(hosts, sim, i, requests=1) for i in range(2)]
        for process, _report in pairs:
            sim.run_until_complete(process, timeout=600)
        sim.run(until=sim.now + 1.0)
        gauge = obs.metrics.snapshot()["gauges"]["redirector.slots.occupied"]
        assert gauge["value"] == 0.0
        assert gauge["high_water"] >= 1.0


class TestXmemBudget:
    def test_builder_carves_slot_buffers_from_xmem(self):
        obs = Obs()
        xmem = XmemAllocator(capacity=64 * 1024, obs=obs)
        sim, hosts, stats, _sched, obs = _world(
            slots=3, obs=obs, xmem=xmem)
        process, report = _client(hosts, sim, 0, requests=1)
        sim.run_until_complete(process, timeout=600)
        assert report.error is None
        # One slot served one connection: exactly one buffer carved,
        # never past the budget.
        assert xmem.used == SLOT_BUFFER_BYTES
        assert xmem.used <= xmem.capacity

    def test_refuses_on_memory_instead_of_overallocating(self):
        """An xmem budget below one slot's buffer: admission must refuse
        with the memory counter, not allocate past capacity."""
        obs = Obs()
        xmem = XmemAllocator(capacity=SLOT_BUFFER_BYTES - 1, obs=obs)
        sim, hosts, _stats, _sched, obs = _world(
            slots=2, obs=obs, xmem=xmem)
        process, report = _client(hosts, sim, 0, requests=1)
        sim.run_until_complete(process, timeout=600)
        sim.run(until=sim.now + 1.0)
        counters = dict(obs.metrics.snapshot()["counters"])
        assert report.error is not None
        assert counters.get("redirector.refused.memory", 0) >= 1
        assert xmem.used <= xmem.capacity
