"""Service tests: echo servers, backend, both redirectors, clients."""

import pytest

from repro.crypto.demokeys import DEMO_PSK, demo_rsa_key
from repro.crypto.prng import CipherRng
from repro.dync.runtime import CostateScheduler
from repro.issl import FREE, IsslContext, RMC2000_PORT, UNIX_FULL, WORKSTATION
from repro.net.addresses import Ipv4Address
from repro.net.bsd import socket
from repro.net.dynctcp import DyncTcpStack
from repro.net.host import build_lan, Host
from repro.net.link import EthernetSegment
from repro.net.sim import Simulator
from repro.services import (
    BACKEND_PORT,
    backend_line_server,
    bsd_echo_server,
    build_rmc_redirector,
    ClientReport,
    dync_echo_costate,
    echo_client,
    plain_request_client,
    PLAIN_PORT,
    secure_request_client,
    TLS_PORT,
    unix_plain_redirector,
    unix_secure_redirector,
)
from repro.unixsim import UnixHost


class TestEchoServers:
    def test_bsd_echo_once(self):
        sim = Simulator()
        _lan, hosts = build_lan(sim, ["server", "client"])
        hosts["server"].spawn(bsd_echo_server(hosts["server"], 7))
        results = {}
        process = hosts["client"].spawn(echo_client(
            hosts["client"], "10.0.0.1", 7, b"hello", results))
        sim.run_until_complete(process, timeout=60)
        assert results["echo"] == b"hello\n"

    def test_bsd_echo_repeating(self):
        sim = Simulator()
        _lan, hosts = build_lan(sim, ["server", "c1", "c2"])
        hosts["server"].spawn(bsd_echo_server(hosts["server"], 7, once=False))
        results = {}
        p1 = hosts["c1"].spawn(echo_client(hosts["c1"], "10.0.0.1", 7,
                                           b"first", results, "one"))
        sim.run_until_complete(p1, timeout=60)
        p2 = hosts["c2"].spawn(echo_client(hosts["c2"], "10.0.0.1", 7,
                                           b"second", results, "two"))
        sim.run_until_complete(p2, timeout=60)
        assert results["one"] == b"first\n"
        assert results["two"] == b"second\n"

    def test_dync_echo(self):
        sim = Simulator()
        _lan, hosts = build_lan(sim, ["rmc", "client"])
        stack = DyncTcpStack(hosts["rmc"])
        scheduler = CostateScheduler(sim)
        scheduler.add(dync_echo_costate(stack, 7))
        scheduler.start()
        results = {}
        process = hosts["client"].spawn(echo_client(
            hosts["client"], "10.0.0.1", 7, b"embedded", results))
        sim.run_until_complete(process, timeout=60)
        assert results["echo"] == b"embedded\n"


class TestBackend:
    def test_uppercase_transform_and_stats(self):
        sim = Simulator()
        _lan, hosts = build_lan(sim, ["backend", "client"])
        stats = {}
        hosts["backend"].spawn(backend_line_server(hosts["backend"],
                                                   stats=stats))
        out = {}

        def client():
            sock = socket(hosts["client"])
            yield from sock.connect(("10.0.0.1", BACKEND_PORT))
            yield from sock.sendall(b"make me loud\n")
            data = b""
            while b"\n" not in data:
                chunk = yield from sock.recv(100)
                if not chunk:
                    break
                data += chunk
            out["reply"] = data
            sock.close()

        process = hosts["client"].spawn(client())
        sim.run_until_complete(process, timeout=60)
        assert out["reply"] == b"MAKE ME LOUD\n"
        assert stats["requests"] == 1

    def test_custom_transform(self):
        sim = Simulator()
        _lan, hosts = build_lan(sim, ["backend", "client"])
        hosts["backend"].spawn(backend_line_server(
            hosts["backend"], transform=lambda line: line[::-1]))
        out = {}

        def client():
            sock = socket(hosts["client"])
            yield from sock.connect(("10.0.0.1", BACKEND_PORT))
            yield from sock.sendall(b"abc\n")
            out["reply"] = yield from sock.recv(100)

        process = hosts["client"].spawn(client())
        sim.run_until_complete(process, timeout=60)
        assert out["reply"] == b"cba\n"


def _unix_world():
    sim = Simulator()
    segment = EthernetSegment(sim)
    server = UnixHost(sim, "server", Ipv4Address.parse("10.0.0.1"))
    server.attach(segment)
    backend = Host(sim, "backend", Ipv4Address.parse("10.0.0.2"))
    backend.attach(segment)
    clients = []
    for index in range(3):
        client = Host(sim, f"c{index}", Ipv4Address.parse(f"10.0.0.{3 + index}"))
        client.attach(segment)
        clients.append(client)
    return sim, server, backend, clients


class TestUnixRedirector:
    def test_secure_redirection_end_to_end(self):
        sim, server, backend, clients = _unix_world()
        stats = {}
        context = IsslContext(UNIX_FULL.with_cost_model(WORKSTATION),
                              CipherRng(b"srv"), rsa_key=demo_rsa_key())
        backend.spawn(backend_line_server(backend))
        server.spawn_process(
            unix_secure_redirector(server, context, "10.0.0.2", stats=stats),
            name="redirector")
        report = ClientReport("c")
        client_ctx = IsslContext(UNIX_FULL, CipherRng(b"cli"))
        process = clients[0].spawn(secure_request_client(
            clients[0], client_ctx, "10.0.0.1", TLS_PORT, 3, 20, report))
        sim.run_until_complete(process, timeout=600)
        assert report.error is None
        assert len(report.request_times) == 3
        assert stats["redirected"] == 3
        # The backend's transform proves decrypt->forward->encrypt:
        assert report.bytes_received > 0

    def test_fork_per_connection(self):
        sim, server, backend, clients = _unix_world()
        context = IsslContext(UNIX_FULL.with_cost_model(WORKSTATION),
                              CipherRng(b"srv"), rsa_key=demo_rsa_key())
        backend.spawn(backend_line_server(backend))
        server.spawn_process(
            unix_secure_redirector(server, context, "10.0.0.2"),
            name="redirector")
        reports = []
        processes = []
        for index in range(2):
            report = ClientReport(f"c{index}")
            reports.append(report)
            ctx = IsslContext(UNIX_FULL, CipherRng(b"c%d" % index))
            processes.append(clients[index].spawn(secure_request_client(
                clients[index], ctx, "10.0.0.1", TLS_PORT, 1, 10, report)))
        for process in processes:
            sim.run_until_complete(process, timeout=600)
        assert server.kernel.forks == 2
        assert all(r.error is None for r in reports)

    def test_plain_redirector(self):
        sim, server, backend, clients = _unix_world()
        stats = {}
        backend.spawn(backend_line_server(backend))
        server.spawn(unix_plain_redirector(server, "10.0.0.2", stats=stats))
        report = ClientReport("c")
        process = clients[0].spawn(plain_request_client(
            clients[0], "10.0.0.1", PLAIN_PORT, 4, 16, report))
        sim.run_until_complete(process, timeout=600)
        # The final stats increment happens after the server's sendall
        # sees its ACK, which can land just after the client finishes.
        sim.run(until=sim.now + 1.0)
        assert report.error is None
        assert stats["redirected"] == 4


class TestRmcRedirector:
    def _world(self, handlers=3, secure=True):
        sim = Simulator()
        _lan, hosts = build_lan(sim, ["rmc", "backend", "c0", "c1", "c2"])
        stack = DyncTcpStack(hosts["rmc"])
        context = IsslContext(RMC2000_PORT.with_cost_model(FREE),
                              CipherRng(b"rmc"), psk=DEMO_PSK)
        stats = {}
        hosts["backend"].spawn(backend_line_server(hosts["backend"]))
        scheduler = build_rmc_redirector(
            stack, context, "10.0.0.2", handlers=handlers, secure=secure,
            stats=stats, listen_port=TLS_PORT if secure else PLAIN_PORT)
        scheduler.start()
        return sim, hosts, stats, scheduler

    def test_figure3_structure(self):
        _sim, _hosts, _stats, scheduler = self._world(handlers=3)
        names = [costate.name for costate in scheduler._costates]
        assert names == ["handler1", "handler2", "handler3", "tick-driver"]

    def test_secure_service(self):
        sim, hosts, stats, _sched = self._world()
        report = ClientReport("c")
        ctx = IsslContext(UNIX_FULL, CipherRng(b"c"), psk=DEMO_PSK)
        process = hosts["c0"].spawn(secure_request_client(
            hosts["c0"], ctx, "10.0.0.1", TLS_PORT, 3, 24, report))
        sim.run_until_complete(process, timeout=600)
        assert report.error is None
        assert stats["redirected"] == 3

    def test_plain_variant(self):
        sim, hosts, stats, _sched = self._world(secure=False)
        report = ClientReport("c")
        process = hosts["c0"].spawn(plain_request_client(
            hosts["c0"], "10.0.0.1", PLAIN_PORT, 3, 24, report))
        sim.run_until_complete(process, timeout=600)
        assert report.error is None
        assert stats["redirected"] == 3

    def test_handler_reuse_across_sequential_clients(self):
        sim, hosts, stats, _sched = self._world(handlers=1)
        ctx0 = IsslContext(UNIX_FULL, CipherRng(b"c0"), psk=DEMO_PSK)
        ctx1 = IsslContext(UNIX_FULL, CipherRng(b"c1"), psk=DEMO_PSK)
        r0, r1 = ClientReport("c0"), ClientReport("c1")
        p0 = hosts["c0"].spawn(secure_request_client(
            hosts["c0"], ctx0, "10.0.0.1", TLS_PORT, 1, 8, r0))
        sim.run_until_complete(p0, timeout=600)
        p1 = hosts["c1"].spawn(secure_request_client(
            hosts["c1"], ctx1, "10.0.0.1", TLS_PORT, 1, 8, r1))
        sim.run_until_complete(p1, timeout=600)
        assert r0.error is None and r1.error is None
        assert stats["redirected"] == 2

    def test_three_concurrent_clients(self):
        sim, hosts, stats, _sched = self._world(handlers=3)
        reports = []
        processes = []
        for index in range(3):
            ctx = IsslContext(UNIX_FULL, CipherRng(b"cc%d" % index),
                              psk=DEMO_PSK)
            report = ClientReport(f"c{index}")
            reports.append(report)
            processes.append(hosts[f"c{index}"].spawn(secure_request_client(
                hosts[f"c{index}"], ctx, "10.0.0.1", TLS_PORT, 2, 8, report)))
        for process in processes:
            sim.run_until_complete(process, timeout=600)
        assert all(r.error is None for r in reports)
        assert stats["redirected"] == 6


class TestClientReport:
    def test_throughput_computation(self):
        report = ClientReport("x")
        report.start, report.end = 1.0, 3.0
        report.bytes_sent, report.bytes_received = 1000, 1000
        assert report.total_time == 2.0
        assert report.throughput_bps == pytest.approx(8000.0)

    def test_zero_duration(self):
        report = ClientReport("x")
        assert report.throughput_bps == 0.0
