"""Differential regression: the dynamic pool at ``slots=3`` against the
static Figure 3 redirector, plus exactly-once buffer release across
every handler exit path.

The listen-mode pool runs the very same handler bodies the static
build does, one per slot, inside one pooled costatement -- so on the
canned fault-scenario corpus its whole verdict (``redirector.*``
counters, client outcomes, even simulated time) must be identical to
the static build's, byte for byte."""

import functools

import pytest

from repro.dync.runtime.xalloc import XmemBufferPool
from repro.faults import scenarios as fscen

#: The canned corpus: one scenario per handler exit path.
_DIFFERENTIAL_SCENARIOS = [
    "baseline",            # clean close
    "stalled-peer",        # progress deadline expired
    "corrupt-app-record",  # MAC failure teardown
    "silent-peer",         # handshake timeout + retry
    "backend-outage",      # backend unreachable
    "slot-exhaustion",     # session-limit refusal
    "xalloc-exhaustion",   # memory refusal
]


def _run(name: str, monkeypatch, **world_kwargs) -> dict:
    runner = fscen.SCENARIOS[name][0]
    if world_kwargs:
        monkeypatch.setattr(
            fscen, "build_world",
            functools.partial(fscen.build_world, **world_kwargs),
        )
    try:
        verdict = runner(9911)
    finally:
        monkeypatch.undo()
    verdict.pop("_registry", None)
    verdict.pop("events", None)
    return verdict


class TestListenModeParity:
    @pytest.mark.parametrize("name", _DIFFERENTIAL_SCENARIOS)
    def test_pooled_slots3_reproduces_static_verdict(self, name,
                                                     monkeypatch):
        static = _run(name, monkeypatch)
        pooled = _run(name, monkeypatch,
                      pooled=True, pool_admission=False)
        assert pooled == static


class StrictBufferPool(XmemBufferPool):
    """A buffer pool that refuses a double release -- the detector the
    exactly-once tests wire through ``build_world``."""

    instances: list = []

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.releases = 0
        StrictBufferPool.instances.append(self)

    def release(self, pointer):
        for idle in self._idle:
            assert idle is not pointer, (
                "buffer released twice without an acquire in between"
            )
        self.releases += 1
        super().release(pointer)


#: Exit paths under the admission-mode pool: every scenario must end
#: with each acquired buffer released exactly once.
_RELEASE_SCENARIOS = [
    "baseline",
    "stalled-peer",
    "corrupt-app-record",
    "silent-peer",
    "backend-outage",
    "pool-burst-3",        # slot refusal (refused before acquire)
]


class TestExactlyOnceRelease:
    @pytest.mark.parametrize("name", _RELEASE_SCENARIOS)
    def test_every_exit_path_releases_exactly_once(self, name,
                                                   monkeypatch):
        StrictBufferPool.instances = []
        monkeypatch.setattr(fscen, "XmemBufferPool", StrictBufferPool)
        monkeypatch.setattr(
            fscen, "build_world",
            functools.partial(fscen.build_world,
                              pooled=True, pool_admission=True,
                              buffer_pool_slots=3),
        )
        runner = fscen.SCENARIOS[name][0]
        verdict = runner(9911)
        assert StrictBufferPool.instances, "strict pool was not wired in"
        for pool in StrictBufferPool.instances:
            # Exactly once: all acquired buffers came back, none twice
            # (a double release raises inside StrictBufferPool.release).
            assert pool.in_use == 0
            assert pool.releases == pool.acquired_total
        # The scenario itself must still hold under the strict pool.
        assert verdict["ok"], [
            check for check in verdict["checks"] if not check["ok"]
        ]

    def test_strict_pool_detects_double_release(self):
        from repro.dync.runtime.xalloc import XmemAllocator

        StrictBufferPool.instances = []
        pool = StrictBufferPool(XmemAllocator(capacity=8192), 1, 1024)
        pointer = pool.acquire()
        pool.release(pointer)
        with pytest.raises(AssertionError):
            pool.release(pointer)
