"""Inline assembly with embedded C (paper, Section 4.1).

"Dynamic C's support for inline assembly is more comprehensive than
most C implementations, and it can also integrate C into assembly
code" -- the ``#asm ... c expr ... #endasm`` form the paper shows, and
what its authors used in the error-handling routines.
"""

import pytest

from repro.dync.compiler import CompiledProgram, CompileError, CompilerOptions
from repro.dync.compiler.libraries import extract_asm_blocks, LibraryError
from repro.rabbit.board import Board


class TestExtraction:
    def test_block_becomes_placeholder(self):
        source = "void f(void) {\n#asm\n  nop\n#endasm\n}\n"
        stripped, blocks = extract_asm_blocks(source)
        assert "__asm_block(0);" in stripped
        assert blocks == ["  nop\n"]

    def test_multiple_blocks_numbered(self):
        source = "#asm\nnop\n#endasm\nint x;\n#asm\nhalt\n#endasm\n"
        stripped, blocks = extract_asm_blocks(source)
        assert "__asm_block(0);" in stripped
        assert "__asm_block(1);" in stripped
        assert len(blocks) == 2

    def test_unterminated_rejected(self):
        with pytest.raises(LibraryError):
            extract_asm_blocks("#asm\nnop\n")

    def test_nodebug_variant_accepted(self):
        stripped, blocks = extract_asm_blocks("#asm nodebug\nnop\n#endasm\n")
        assert len(blocks) == 1

    def test_source_without_asm_untouched(self):
        source = "int x;\n"
        stripped, blocks = extract_asm_blocks(source)
        assert stripped == source
        assert blocks == []


class TestExecution:
    def test_inline_asm_inside_function(self):
        program = CompiledProgram(Board(), """
            int out;
            void main() {
                out = 1;
            #asm
                ld   hl, 0x0777
                ld   (0xC3F8), hl
            #endasm
                out = out + 1;
            }
        """)
        program.call("main")
        assert program.peek_int("out") == 2
        memory = program.board.memory
        assert memory.read8(0xC3F8) | (memory.read8(0xC3F9) << 8) == 0x0777

    def test_embedded_c_lines(self):
        # The paper's InitValues example shape: `c start_time = 0;`.
        program = CompiledProgram(Board(), """
            int start_time;
            int counter;
            void init_values(void) {
            #asm
                ld   hl, 0xA0
            c start_time = 0
            c counter = 256
            #endasm
            }
        """)
        program.poke_int("start_time", 7)
        program.poke_int("counter", 7)
        program.call("init_values")
        assert program.peek_int("start_time") == 0
        assert program.peek_int("counter") == 256

    def test_top_level_asm_routine_callable(self):
        program = CompiledProgram(Board(), """
            int unused;
        #asm
        _answer::
                ld   hl, 42
                ret
        #endasm
        """)
        address = program.compilation.assembly.symbol("_answer")
        program.board.call(address)
        assert program.board.cpu.hl == 42

    def test_asm_mixes_with_optimizer(self):
        source = """
            int out;
            void main() {
                out = 10;
            #asm
                ld   hl, (0xC300)
                add  hl, hl
                ld   (0xC300), hl
            #endasm
            }
        """
        # `out` is the first RAM global, at 0xC300 by construction.
        program = CompiledProgram(
            Board(), source, CompilerOptions(debug=False, optimize=True)
        )
        program.call("main")
        assert program.peek_int("out") == 20

    def test_bad_placeholder_rejected(self):
        from repro.dync.compiler import compile_source

        with pytest.raises(CompileError):
            compile_source("void f(void) { __asm_block(99); }")
