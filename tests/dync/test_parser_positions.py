"""Source positions: every AST node carries usable line/col info.

The analyzer's diagnostics are only as good as the positions the parser
threads through; these tests pin the productions that used to drop them
(functions, globals, params, for-clauses) and the costatement syntax.
"""

from repro.dync.compiler.ast_nodes import (
    Abort,
    Costate,
    ExprStmt,
    Waitfor,
    Yield,
)
from repro.dync.compiler.parser import parse

SOURCE = """\
shared int ticks;
const char table[4] = {1, 2, 3, 4};

int add(int a, int b) {
    return a + b;
}

void main(void) {
    int i;
    for (i = 0; i < 4; i = i + 1) {
        ticks = ticks + table[i];
    }
    for (;;) {
        costate handler1 {
            waitfor(ready());
            yield;
        }
        costate tick_driver always_on {
            tick();
            yield;
        }
    }
}
"""


def test_globals_carry_declaration_position():
    program = parse(SOURCE)
    ticks, table = program.globals
    assert (ticks.line, ticks.col) == (1, 1)
    assert (table.line, table.col) == (2, 1)


def test_functions_and_params_carry_positions():
    program = parse(SOURCE)
    add = program.function("add")
    assert (add.line, add.col) == (4, 1)
    assert [(p.name, p.line) for p in add.params] == [("a", 4), ("b", 4)]
    assert all(p.col > 0 for p in add.params)


def test_for_clauses_carry_positions():
    program = parse(SOURCE)
    counted_for = program.function("main").body[1]
    assert isinstance(counted_for.init, ExprStmt)
    assert (counted_for.init.line, counted_for.init.col) == (10, 10)
    assert isinstance(counted_for.step, ExprStmt)
    assert counted_for.step.line == 10


def test_costate_productions_and_positions():
    program = parse(SOURCE)
    big_loop = program.function("main").body[2]
    handler, driver = big_loop.body
    assert isinstance(handler, Costate)
    assert (handler.name, handler.mode) == ("handler1", "")
    assert (handler.line, handler.col) == (14, 9)
    assert isinstance(handler.body[0], Waitfor)
    assert handler.body[0].line == 15
    assert isinstance(handler.body[1], Yield)
    assert isinstance(driver, Costate)
    assert (driver.name, driver.mode) == ("tick_driver", "always_on")


def test_abort_parses():
    program = parse("""
    void main(void) {
        for (;;) {
            costate { abort; }
        }
    }
    """)
    big_loop = program.function("main").body[0]
    costate = big_loop.body[0]
    assert isinstance(costate.body[0], Abort)


def test_expression_nodes_carry_col():
    program = parse("int f(void) { return 1 + x; }")
    ret = program.function("f").body[0]
    assert ret.value.line == 1
    assert ret.value.col > 0
