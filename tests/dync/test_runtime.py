"""Dynamic C runtime semantics: costatements, xalloc, storage classes,
function chains, error dispatch (paper sections 4.1-4.4, Figure 1)."""

import pytest

from repro.dync.runtime import (
    BatteryBackedRam,
    CostateError,
    CostateScheduler,
    ErrorDispatcher,
    FunctionChainError,
    FunctionChainRegistry,
    ignore_most_errors,
    ProtectedVariable,
    RuntimeErrorCode,
    SharedVariable,
    StaticLocals,
    UnsharedMultibyte,
    wait_delay,
    waitfor,
    XallocError,
    XmemAllocator,
    XmemPointer,
)
from repro.net.sim import Simulator


class TestCostates:
    def test_round_robin_interleaving(self):
        sim = Simulator()
        scheduler = CostateScheduler(sim)
        trace = []

        def co(tag):
            for step in range(3):
                trace.append((tag, step))
                yield

        scheduler.add(co("a"))
        scheduler.add(co("b"))
        scheduler.run_until_all_done()
        assert trace == [("a", 0), ("b", 0), ("a", 1), ("b", 1),
                         ("a", 2), ("b", 2)]

    def test_waitfor_semantics(self):
        sim = Simulator()
        scheduler = CostateScheduler(sim)
        flag = {"ready": False}
        log = []

        def setter():
            for _ in range(5):
                yield
            flag["ready"] = True

        def waiter():
            yield from waitfor(lambda: flag["ready"])
            log.append("released")

        scheduler.add(setter())
        scheduler.add(waiter())
        scheduler.run_until_all_done()
        assert log == ["released"]

    def test_pass_overhead_advances_time(self):
        sim = Simulator()
        scheduler = CostateScheduler(sim, pass_overhead_s=0.001)

        def co():
            for _ in range(9):
                yield

        scheduler.add(co())
        scheduler.start()
        sim.run(until=0.1)
        assert scheduler.passes >= 10
        assert sim.now >= 0.009

    def test_numeric_yield_charges_busy_time(self):
        sim = Simulator()
        scheduler = CostateScheduler(sim, pass_overhead_s=1e-6)

        def cruncher():
            yield 0.5  # blocking computation
            yield

        scheduler.add(cruncher())
        scheduler.start()
        sim.run(until=2.0)
        # The whole loop stalled for the 0.5 s of compute.
        assert sim.now >= 0.5

    def test_abort(self):
        sim = Simulator()
        scheduler = CostateScheduler(sim)
        progress = []

        def forever():
            while True:
                progress.append(1)
                yield

        costate = scheduler.add(forever())
        scheduler.start()
        sim.run(until=0.001)
        costate.abort()
        count = len(progress)
        sim.run(until=0.002)
        assert len(progress) == count
        assert costate.done

    def test_restarting_costate(self):
        sim = Simulator()
        scheduler = CostateScheduler(sim)
        runs = []

        def body():
            runs.append(sim.now)
            yield

        scheduler.add_restarting(lambda: body(), name="again")
        scheduler.start()
        sim.run(until=0.001)
        assert len(runs) > 3  # restarted every pass

    def test_cofunction_via_yield_from(self):
        sim = Simulator()
        scheduler = CostateScheduler(sim)
        results = []

        def cofunc(x):
            yield
            return x * 2

        def caller():
            value = yield from cofunc(21)
            results.append(value)

        scheduler.add(caller())
        scheduler.run_until_all_done()
        assert results == [42]

    def test_wait_delay(self):
        sim = Simulator()
        scheduler = CostateScheduler(sim, pass_overhead_s=0.01)
        stamps = []

        def co():
            yield from wait_delay(scheduler, 0.5)
            stamps.append(sim.now)

        scheduler.add(co())
        scheduler.run_until_all_done()
        assert stamps[0] >= 0.5

    def test_double_start_rejected(self):
        sim = Simulator()
        scheduler = CostateScheduler(sim)
        scheduler.add(iter(()))
        scheduler.start()
        with pytest.raises(CostateError):
            scheduler.start()

    def test_run_until_all_done_detects_stuck(self):
        sim = Simulator()
        scheduler = CostateScheduler(sim)

        def stuck():
            while True:
                yield

        scheduler.add(stuck())
        with pytest.raises(CostateError):
            scheduler.run_until_all_done(timeout=0.05)


class TestXalloc:
    def test_bump_allocation(self):
        allocator = XmemAllocator(1000, base=0x80000)
        first = allocator.xalloc(100)
        second = allocator.xalloc(200)
        assert first.address == 0x80000
        assert second.address == 0x80064
        assert allocator.used == 300
        assert allocator.available == 700

    def test_exhaustion(self):
        allocator = XmemAllocator(256)
        allocator.xalloc(200)
        with pytest.raises(XallocError):
            allocator.xalloc(100)

    def test_no_free(self):
        allocator = XmemAllocator(256)
        pointer = allocator.xalloc(10)
        with pytest.raises(XallocError, match="no free"):
            allocator.free(pointer)

    def test_pointer_arithmetic_forbidden(self):
        pointer = XmemPointer(0x80000, 16)
        with pytest.raises(TypeError):
            pointer + 1
        with pytest.raises(TypeError):
            1 + pointer
        with pytest.raises(TypeError):
            pointer - 1
        assert int(pointer) == 0x80000

    def test_bad_sizes(self):
        with pytest.raises(ValueError):
            XmemAllocator(0)
        allocator = XmemAllocator(100)
        with pytest.raises(ValueError):
            allocator.xalloc(0)


class TestStorageClasses:
    def test_shared_atomic_updates_counted(self):
        var = SharedVariable(0, name="a")
        for value in range(10):
            var.set(value)
        assert var.get() == 9
        assert var.update_count == 10
        assert var.overhead_cycles > 0

    def test_unshared_torn_read(self):
        # The bug class `shared` prevents, demonstrated.
        var = UnsharedMultibyte(width=4)
        var.begin_write(0x11223344)
        var.write_step()  # only one byte written
        torn = var.read()
        assert torn != 0x11223344
        while not var.write_step():
            pass
        assert var.read() == 0x11223344

    def test_protected_restore_after_reset(self):
        ram = BatteryBackedRam()
        var = ProtectedVariable(100, ram, name="state1")
        var.set(200)
        var.lose_to_reset()
        assert var.get() is None
        assert var.restore() == 200

    def test_protected_without_backup(self):
        ram = BatteryBackedRam()
        var = ProtectedVariable(1, ram, name="never_set")
        with pytest.raises(KeyError):
            var.restore()

    def test_battery_ram_capacity(self):
        ram = BatteryBackedRam(capacity=2)
        ram.save("a", 1)
        ram.save("b", 2)
        with pytest.raises(MemoryError):
            ram.save("c", 3)
        ram.save("a", 10)  # updates don't count against capacity
        assert ram.load("a") == 10

    def test_static_locals_persist(self):
        # Dynamic C: locals are static by default; one frame per function.
        statics = StaticLocals()

        def counter():
            frame = statics.frame("counter")
            frame["n"] = frame.get("n", 0) + 1
            return frame["n"]

        assert [counter(), counter(), counter()] == [1, 2, 3]

    def test_static_locals_break_recursion(self):
        # The classic consequence: recursive calls share one frame.
        statics = StaticLocals()

        def fact(n):
            frame = statics.frame("fact")
            frame["n"] = n
            if frame["n"] <= 1:
                return 1
            below = fact(frame["n"] - 1)
            # frame["n"] was clobbered by the recursive call:
            return frame["n"] * below

        assert fact(5) != 120  # broken, exactly as on the real compiler


class TestFunctionChains:
    def test_chain_invocation_order(self):
        registry = FunctionChainRegistry()
        registry.makechain("recover")
        calls = []
        registry.funcchain("recover", lambda: calls.append("free"))
        registry.funcchain("recover", lambda: calls.append("declare"))
        registry.funcchain("recover", lambda: calls.append("init"))
        assert registry.invoke("recover") == 3
        assert calls == ["free", "declare", "init"]

    def test_unknown_chain(self):
        registry = FunctionChainRegistry()
        with pytest.raises(FunctionChainError):
            registry.invoke("nope")
        with pytest.raises(FunctionChainError):
            registry.funcchain("nope", lambda: None)

    def test_duplicate_declaration(self):
        registry = FunctionChainRegistry()
        registry.makechain("c")
        with pytest.raises(FunctionChainError):
            registry.makechain("c")

    def test_empty_chain_runs_zero(self):
        registry = FunctionChainRegistry()
        registry.makechain("empty")
        assert registry.invoke("empty") == 0


class TestErrorDispatch:
    def test_handler_receives_record(self):
        dispatcher = ErrorDispatcher()
        seen = []
        dispatcher.define_error_handler(lambda rec: (seen.append(rec), True)[1])
        assert dispatcher.raise_error(RuntimeErrorCode.DIVIDE_BY_ZERO, 0x1234)
        assert seen[0].code == RuntimeErrorCode.DIVIDE_BY_ZERO
        assert seen[0].address == 0x1234

    def test_no_handler_counts_unhandled(self):
        dispatcher = ErrorDispatcher()
        assert not dispatcher.raise_error(RuntimeErrorCode.RANGE)
        assert dispatcher.unhandled == 1

    def test_ignore_most_errors_policy(self):
        dispatcher = ErrorDispatcher()
        dispatcher.define_error_handler(ignore_most_errors)
        assert dispatcher.raise_error(RuntimeErrorCode.DIVIDE_BY_ZERO)
        assert dispatcher.raise_error(RuntimeErrorCode.ARRAY_INDEX)
        assert not dispatcher.raise_error(RuntimeErrorCode.WATCHDOG)
        assert not dispatcher.raise_error(RuntimeErrorCode.STACK_OVERFLOW)
        assert len(dispatcher.history) == 4
