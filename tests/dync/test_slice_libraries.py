"""Tests for the slice statement (preemptive multitasking) and the
#use library mechanism."""

import pytest

from repro.dync.compiler import CompiledProgram, CompilerOptions
from repro.dync.compiler.libraries import (
    expand_uses,
    LibraryError,
    STANDARD_LIBRARIES,
)
from repro.dync.runtime.slice_stmt import Slice, SliceError, SliceScheduler
from repro.net.sim import Simulator
from repro.rabbit.board import Board


class TestSliceScheduler:
    def test_budget_preempts_long_body(self):
        sim = Simulator()
        scheduler = SliceScheduler(sim)
        trace = []

        def hog():
            for step in range(10):
                trace.append(("hog", step))
                yield 1

        def light():
            for step in range(2):
                trace.append(("light", step))
                yield 1

        hog_task = scheduler.add(hog(), budget_ticks=3)
        scheduler.add(light(), budget_ticks=3)
        scheduler.run_until_all_done()
        # The hog must have been preempted: 'light' entries appear
        # before the hog's 10 steps are done.
        light_first = trace.index(("light", 0))
        hog_last = trace.index(("hog", 9))
        assert light_first < hog_last
        assert hog_task.preemptions >= 2

    def test_voluntary_yield_of_remainder(self):
        sim = Simulator()
        scheduler = SliceScheduler(sim)
        order = []

        def polite():
            order.append("polite-1")
            yield -1  # give up the rest of my slice
            order.append("polite-2")
            yield 1

        def other():
            order.append("other")
            yield 1

        scheduler.add(polite(), budget_ticks=100)
        scheduler.add(other(), budget_ticks=100)
        scheduler.run_until_all_done()
        assert order.index("other") < order.index("polite-2")

    def test_time_advances_per_tick(self):
        sim = Simulator()
        scheduler = SliceScheduler(sim, tick_s=0.001)

        def body():
            for _ in range(5):
                yield 1

        scheduler.add(body(), budget_ticks=2)
        scheduler.run_until_all_done()
        assert sim.now >= 0.005

    def test_tick_accounting(self):
        sim = Simulator()
        scheduler = SliceScheduler(sim)

        def body():
            yield 3
            yield 2

        task = scheduler.add(body(), budget_ticks=10)
        scheduler.run_until_all_done()
        assert task.ticks_consumed == 5
        assert task.done

    def test_bad_budget(self):
        sim = Simulator()
        scheduler = SliceScheduler(sim)
        with pytest.raises(SliceError):
            scheduler.add(iter(()), budget_ticks=0)

    def test_double_start(self):
        sim = Simulator()
        scheduler = SliceScheduler(sim)
        scheduler.add(iter(()), budget_ticks=1)
        scheduler.start()
        with pytest.raises(SliceError):
            scheduler.start()

    def test_contrast_with_costates(self):
        # Costatements NEVER preempt: a body that refuses to yield hogs
        # the loop.  Slices cut it off.  This is the paper's 4.2 split.
        sim = Simulator()
        scheduler = SliceScheduler(sim)
        progress = []

        def stubborn():
            for step in range(100):
                progress.append(step)
                yield 1  # each step costs a tick but never volunteers

        def starved():
            progress.append("starved-ran")
            yield 1

        scheduler.add(stubborn(), budget_ticks=5)
        scheduler.add(starved(), budget_ticks=5)
        scheduler.run_until_all_done(timeout=120)
        assert progress.index("starved-ran") <= 6


class TestLibraries:
    def test_use_splices_library(self):
        source = '#use "rand.lib"\nint out;\nvoid main() { srand_(7); out = rand_(); }\n'
        expanded = expand_uses(source)
        assert "int rand_" in expanded
        assert "#use" not in expanded

    def test_use_is_idempotent(self):
        source = '#use "rand.lib"\n#use "rand.lib"\nint x;\n'
        expanded = expand_uses(source)
        assert expanded.count("int rand_") == 1

    def test_include_rejected(self):
        with pytest.raises(LibraryError, match="does not support #include"):
            expand_uses('#include <stdio.h>\nint x;\n')

    def test_unknown_library(self):
        with pytest.raises(LibraryError, match="no such library"):
            expand_uses('#use "nonsense.lib"\n')

    def test_rand_lib_compiles_and_runs(self):
        source = """
            #use "rand.lib"
            int a; int b; int c;
            void main() {
                srand_(1);
                a = rand_();
                b = rand_();
                srand_(1);
                c = rand_();
            }
        """
        program = CompiledProgram(Board(), source, CompilerOptions(debug=False))
        program.call("main")
        a, b, c = (program.peek_int(n) for n in "abc")
        assert 0 <= a <= 32767
        assert a != b          # stream advances
        assert a == c          # reseeding replays
        # Cross-check the LCG arithmetic in Python (16-bit wrap).
        expected = (1 * 25173 + 13849) & 0xFFFF
        assert a == expected & 32767

    def test_string_lib_memcpy_memcmp(self):
        source = """
            #use "string.lib"
            char src[8];
            char dst[8];
            int cmp_equal; int cmp_diff;
            void main() {
                int i;
                for (i = 0; i < 8; i = i + 1) src[i] = i * 7;
                memcpy_(dst, src, 8);
                cmp_equal = memcmp_(dst, src, 8);
                dst[3] = 99;
                cmp_diff = memcmp_(dst, src, 8);
            }
        """
        program = CompiledProgram(Board(), source, CompilerOptions(debug=False))
        program.call("main")
        assert program.peek_bytes("dst", 3) == bytes(i * 7 for i in range(3))
        assert program.peek_int("cmp_equal") == 0
        assert program.peek_int("cmp_diff") != 0

    def test_ringlog_lib_wraps(self):
        source = """
            #use "ringlog.lib"
            int count;
            void main() {
                int i;
                for (i = 0; i < 100; i = i + 1) ringlog_put(i);
                count = ringlog_count();
            }
        """
        program = CompiledProgram(Board(), source, CompilerOptions(debug=False))
        program.call("main")
        assert program.peek_int("count") == 64  # bounded, never grows past

    def test_registry_contents(self):
        assert set(STANDARD_LIBRARIES) == {"rand.lib", "string.lib",
                                           "ringlog.lib"}
