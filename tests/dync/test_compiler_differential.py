"""Differential testing: random programs, compiled vs Python semantics.

Hypothesis generates small expression trees over 16-bit ints; we
evaluate each both in Python (with explicit 16-bit wrapping) and on the
emulated board through the full compiler pipeline, for every
optimization configuration.  Any divergence is a code generator,
peephole, assembler, or CPU bug.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dync.compiler import CompiledProgram, CompilerOptions
from repro.rabbit.board import Board

MASK = 0xFFFF


def _signed(value: int) -> int:
    value &= MASK
    return value - 0x10000 if value & 0x8000 else value


# -- expression model ---------------------------------------------------------

class Expr:
    def to_c(self) -> str:
        raise NotImplementedError

    def evaluate(self, env: dict[str, int]) -> int:
        raise NotImplementedError


class Lit(Expr):
    def __init__(self, value: int):
        self.value = value

    def to_c(self) -> str:
        return str(self.value)

    def evaluate(self, env) -> int:
        return self.value & MASK


class Ref(Expr):
    def __init__(self, name: str):
        self.name = name

    def to_c(self) -> str:
        return self.name

    def evaluate(self, env) -> int:
        return env[self.name] & MASK


class Bin(Expr):
    def __init__(self, op: str, left: Expr, right: Expr):
        self.op = op
        self.left = left
        self.right = right

    def to_c(self) -> str:
        return f"({self.left.to_c()} {self.op} {self.right.to_c()})"

    def evaluate(self, env) -> int:
        a = self.left.evaluate(env)
        b = self.right.evaluate(env)
        op = self.op
        if op == "+":
            return (a + b) & MASK
        if op == "-":
            return (a - b) & MASK
        if op == "*":
            return (a * b) & MASK
        if op == "&":
            return a & b
        if op == "|":
            return a | b
        if op == "^":
            return a ^ b
        if op == "<<":
            return (a << (b & 15)) & MASK if b < 16 else 0
        if op == ">>":
            return (a >> b) if b < 16 else 0
        if op == "==":
            return int(a == b)
        if op == "!=":
            return int(a != b)
        if op == "<":
            return int(_signed(a) < _signed(b))
        if op == ">":
            return int(_signed(a) > _signed(b))
        if op == "<=":
            return int(_signed(a) <= _signed(b))
        if op == ">=":
            return int(_signed(a) >= _signed(b))
        raise AssertionError(op)


class Un(Expr):
    def __init__(self, op: str, operand: Expr):
        self.op = op
        self.operand = operand

    def to_c(self) -> str:
        return f"({self.op}{self.operand.to_c()})"

    def evaluate(self, env) -> int:
        a = self.operand.evaluate(env)
        if self.op == "-":
            return (-a) & MASK
        if self.op == "~":
            return (~a) & MASK
        if self.op == "!":
            return int(a == 0)
        raise AssertionError(self.op)


_BIN_OPS = ["+", "-", "*", "&", "|", "^", "==", "!=", "<", ">", "<=", ">="]
_UN_OPS = ["-", "~", "!"]
_VARS = ["v0", "v1", "v2"]


def _exprs(depth: int):
    leaf = st.one_of(
        st.integers(min_value=0, max_value=0xFFFF).map(Lit),
        st.sampled_from(_VARS).map(Ref),
    )
    if depth == 0:
        return leaf
    sub = _exprs(depth - 1)
    shift = st.builds(
        Bin,
        st.sampled_from(["<<", ">>"]),
        sub,
        st.integers(min_value=0, max_value=15).map(Lit),
    )
    return st.one_of(
        leaf,
        st.builds(Bin, st.sampled_from(_BIN_OPS), sub, sub),
        st.builds(Un, st.sampled_from(_UN_OPS), sub),
        shift,
    )


ENV = st.fixed_dictionaries(
    {name: st.integers(min_value=0, max_value=0xFFFF) for name in _VARS}
)


@given(expr=_exprs(3), env=ENV)
@settings(max_examples=40, deadline=None)
def test_expression_codegen_matches_python(expr, env):
    source = f"""
        int v0; int v1; int v2;
        int out;
        void main() {{ out = {expr.to_c()}; }}
    """
    program = CompiledProgram(Board(), source, CompilerOptions(debug=False))
    for name, value in env.items():
        program.poke_int(name, value)
    program.call("main")
    assert program.peek_int("out") == expr.evaluate(env), expr.to_c()


@given(expr=_exprs(2), env=ENV)
@settings(max_examples=15, deadline=None)
def test_peephole_preserves_semantics(expr, env):
    source = f"""
        int v0; int v1; int v2;
        int out;
        void main() {{ out = {expr.to_c()}; }}
    """
    plain = CompiledProgram(Board(), source, CompilerOptions(debug=False))
    optimized = CompiledProgram(
        Board(), source, CompilerOptions(debug=False, optimize=True)
    )
    for name, value in env.items():
        plain.poke_int(name, value)
        optimized.poke_int(name, value)
    plain.call("main")
    optimized.call("main")
    assert plain.peek_int("out") == optimized.peek_int("out"), expr.to_c()


@given(
    start=st.integers(min_value=0, max_value=5),
    stop=st.integers(min_value=0, max_value=12),
    env=ENV,
)
@settings(max_examples=15, deadline=None)
def test_unroll_preserves_loop_semantics(start, stop, env):
    source = f"""
        int v0; int v1; int v2;
        int out;
        void main() {{
            int i;
            out = 0;
            for (i = {start}; i < {stop}; i = i + 1)
                out = out + i * v0 + v1;
        }}
    """
    rolled = CompiledProgram(Board(), source, CompilerOptions(debug=False))
    unrolled = CompiledProgram(
        Board(), source, CompilerOptions(debug=False, unroll=True)
    )
    expected = 0
    for i in range(start, stop):
        expected = (expected + i * env["v0"] + env["v1"]) & MASK
    for program in (rolled, unrolled):
        for name, value in env.items():
            program.poke_int(name, value)
        program.call("main")
        assert program.peek_int("out") == expected
