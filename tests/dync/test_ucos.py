"""The µC/OS-II-flavoured kernel: priorities, delays, semaphores."""

import pytest

from repro.dync.runtime.ucos import MicroCos, Semaphore, UcosError
from repro.net.sim import Simulator


def make_kernel(**kwargs):
    sim = Simulator()
    return sim, MicroCos(sim, **kwargs)


class TestPriorities:
    def test_unique_priorities_enforced(self):
        _sim, kernel = make_kernel()
        kernel.task_create(iter(()), 5)
        with pytest.raises(UcosError):
            kernel.task_create(iter(()), 5)
        with pytest.raises(UcosError):
            kernel.task_create(iter(()), 64)

    def test_highest_priority_runs_first(self):
        _sim, kernel = make_kernel()
        order = []

        def task(tag):
            order.append(tag)
            yield ("dly", 1)
            order.append(tag + "-end")

        kernel.task_create(task("low"), 20)
        kernel.task_create(task("high"), 1)
        kernel.run_until_all_done()
        assert order.index("high") < order.index("low")

    def test_delay_wakes_and_preempts(self):
        # A high-priority task sleeping on OSTimeDly preempts the
        # low-priority grinder the moment its delay expires.
        _sim, kernel = make_kernel(steps_per_tick=1)
        trace = []

        def high():
            yield ("dly", 3)
            trace.append("HIGH")

        def low():
            for step in range(8):
                trace.append(step)
                yield

        kernel.task_create(high(), 1)
        kernel.task_create(low(), 30)
        kernel.run_until_all_done()
        position = trace.index("HIGH")
        assert 0 < position < len(trace) - 1  # ran mid-grind
        assert trace[position + 1:] == list(range(position, 8))

    def test_round_robin_is_not_a_thing(self):
        # Strict priority: equal progress is NOT guaranteed; the top
        # task runs to completion before the lower one starts.
        _sim, kernel = make_kernel()
        trace = []

        def task(tag, steps):
            for _ in range(steps):
                trace.append(tag)
                yield

        kernel.task_create(task("top", 5), 1)
        kernel.task_create(task("bottom", 5), 2)
        kernel.run_until_all_done()
        assert trace[:5] == ["top"] * 5


class TestDelays:
    def test_os_time_dly_duration(self):
        sim, kernel = make_kernel(tick_s=0.01)
        stamps = {}

        def sleeper():
            stamps["before"] = sim.now
            yield ("dly", 10)
            stamps["after"] = sim.now

        kernel.task_create(sleeper(), 1)
        kernel.run_until_all_done()
        assert stamps["after"] - stamps["before"] >= 0.09

    def test_bad_delay_rejected(self):
        _sim, kernel = make_kernel()

        def bad():
            yield ("dly", 0)

        kernel.task_create(bad(), 1)
        with pytest.raises(UcosError):
            kernel.run_until_all_done()


class TestSemaphores:
    def test_pend_blocks_until_post(self):
        _sim, kernel = make_kernel()
        order = []

        def consumer(sem):
            yield ("pend", sem)
            order.append("consumed")

        def producer(sem):
            yield ("dly", 2)
            order.append("produced")
            yield ("post", sem)

        kernel_sem = kernel.sem_create(0, "items")
        kernel.task_create(consumer(kernel_sem), 1)
        kernel.task_create(producer(kernel_sem), 10)
        kernel.run_until_all_done()
        assert order == ["produced", "consumed"]

    def test_counting_semantics(self):
        _sim, kernel = make_kernel()
        got = []

        def consumer(sem, tag):
            yield ("pend", sem)
            got.append(tag)

        sem = kernel.sem_create(1)  # one item banked
        kernel.task_create(consumer(sem, "a"), 1)
        kernel.task_create(consumer(sem, "b"), 2)
        kernel.start()
        _sim.run(until=0.05)
        kernel.stop()
        assert got == ["a"]  # only the banked count was consumable

    def test_post_wakes_highest_priority_pender(self):
        _sim, kernel = make_kernel()
        woken = []

        def pender(sem, tag):
            yield ("pend", sem)
            woken.append(tag)

        def poster(sem):
            yield ("dly", 2)
            yield ("post", sem)
            yield ("post", sem)

        sem = kernel.sem_create(0)
        kernel.task_create(pender(sem, "low"), 20)
        kernel.task_create(pender(sem, "high"), 5)
        kernel.task_create(poster(sem), 30)
        kernel.run_until_all_done()
        assert woken == ["high", "low"]

    def test_external_post(self):
        sim, kernel = make_kernel()
        done = []

        def waiter(sem):
            yield ("pend", sem)
            done.append(sim.now)

        sem = kernel.sem_create(0)
        kernel.task_create(waiter(sem), 1)
        kernel.start()
        sim.call_after(0.05, sem.post)
        sim.run(until=0.2)
        kernel.stop()
        assert done and done[0] >= 0.05

    def test_negative_count_rejected(self):
        _sim, kernel = make_kernel()
        with pytest.raises(UcosError):
            kernel.sem_create(-1)


class TestKernel:
    def test_mutex_pattern_protects_critical_section(self):
        _sim, kernel = make_kernel(steps_per_tick=1)
        inside = {"count": 0, "max": 0}

        def worker(mutex, loops):
            for _ in range(loops):
                yield ("pend", mutex)
                inside["count"] += 1
                inside["max"] = max(inside["max"], inside["count"])
                yield  # a preemption point inside the critical section
                inside["count"] -= 1
                yield ("post", mutex)

        mutex = kernel.sem_create(1, "mutex")
        kernel.task_create(worker(mutex, 3), 1)
        kernel.task_create(worker(mutex, 3), 2)
        kernel.run_until_all_done()
        assert inside["max"] == 1  # never two tasks inside at once

    def test_context_switch_accounting(self):
        _sim, kernel = make_kernel()

        def ping():
            for _ in range(3):
                yield ("dly", 1)

        kernel.task_create(ping(), 1)
        kernel.task_create(ping(), 2)
        kernel.run_until_all_done()
        assert kernel.context_switches >= 2

    def test_double_start(self):
        _sim, kernel = make_kernel()
        kernel.task_create(iter(()), 1)
        kernel.start()
        with pytest.raises(UcosError):
            kernel.start()
