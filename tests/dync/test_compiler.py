"""Dynamic C subset compiler: lexer, parser, codegen on the board."""

import pytest

from repro.dync.compiler import (
    BEST,
    CompileError,
    CompiledProgram,
    CompilerOptions,
    compile_source,
    ParseError,
    parse,
    peephole_optimize,
)
from repro.dync.compiler.lexer import LexError, tokenize
from repro.rabbit.board import Board


def run(source: str, options: CompilerOptions | None = None) -> CompiledProgram:
    return CompiledProgram(Board(), source, options)


class TestLexer:
    def test_token_kinds(self):
        tokens = tokenize("int x = 0x10 + 'A'; // comment")
        kinds = [(t.kind, t.value) for t in tokens[:-1]]
        assert kinds == [
            ("keyword", "int"), ("ident", "x"), ("op", "="),
            ("num", 16), ("op", "+"), ("num", 65), ("op", ";"),
        ]

    def test_block_comments_and_lines(self):
        tokens = tokenize("a /* multi\nline */ b")
        assert tokens[0].line == 1
        assert tokens[1].line == 2

    def test_char_escapes(self):
        values = [t.value for t in tokenize(r"'\n' '\t' '\0' '\\'") if t.kind == "num"]
        assert values == [10, 9, 0, 92]

    def test_multi_char_operators(self):
        ops = [t.value for t in tokenize("a <<= b >> c && d") if t.kind == "op"]
        assert ops == ["<<=", ">>", "&&"]

    def test_bad_character(self):
        with pytest.raises(LexError):
            tokenize("int x = @;")

    def test_unterminated_comment(self):
        with pytest.raises(LexError):
            tokenize("/* never ends")


class TestParser:
    def test_program_structure(self):
        program = parse("""
            const char table[3] = {1, 2, 3};
            int counter;
            root int fast(int a, char b) { return a + b; }
            nodebug void quiet(void) { }
        """)
        assert [g.name for g in program.globals] == ["table", "counter"]
        assert program.globals[0].is_const
        fast = program.function("fast")
        assert fast.storage == "root"
        assert [p.name for p in fast.params] == ["a", "b"]
        assert program.function("quiet").nodebug

    def test_constant_folding(self):
        program = parse("int x = 2 * 3 + (10 >> 1);")
        assert program.globals[0].initializer == 11

    def test_statement_kinds(self):
        parse("""
            void f(void) {
                int i;
                if (i) { i = 1; } else i = 2;
                while (i < 10) i++;
                for (i = 0; i < 4; i = i + 1) { break; }
                return;
            }
        """)

    def test_unsigned_spellings(self):
        program = parse("unsigned a; unsigned int b; unsigned char c;")
        assert program.globals[0].ctype.name == "int"
        assert program.globals[2].ctype.name == "char"

    def test_pointer_params(self):
        program = parse("int f(char* p) { return p[0]; }")
        assert program.function("f").params[0].ctype.is_pointer

    def test_bad_assignment_target(self):
        with pytest.raises(ParseError):
            parse("void f(void) { 1 = 2; }")

    def test_array_size_must_be_constant(self):
        with pytest.raises(ParseError):
            parse("int n; char buf[n];")

    def test_missing_semicolon(self):
        with pytest.raises(ParseError):
            parse("int x")


class TestCodegenExecution:
    def test_arithmetic(self):
        program = run("""
            int r_add; int r_sub; int r_mul; int r_neg;
            void main() {
                r_add = 1000 + 2345;
                r_sub = 100 - 250;
                r_mul = 123 * 45;
                r_neg = -7;
            }
        """)
        program.call("main")
        assert program.peek_int("r_add") == 3345
        assert program.peek_int("r_sub") == (100 - 250) & 0xFFFF
        assert program.peek_int("r_mul") == 123 * 45
        assert program.peek_int("r_neg") == (-7) & 0xFFFF

    def test_runtime_mul_not_folded(self):
        program = run("""
            int a; int b; int r;
            void main() { r = a * b; }
        """)
        program.poke_int("a", 250)
        program.poke_int("b", 200)
        program.call("main")
        assert program.peek_int("r") == (250 * 200) & 0xFFFF

    def test_bitwise_and_shifts(self):
        program = run("""
            int a; int b;
            int r_and; int r_or; int r_xor; int r_shl; int r_shr; int r_not;
            void main() {
                r_and = a & b;
                r_or  = a | b;
                r_xor = a ^ b;
                r_shl = a << 3;
                r_shr = a >> 2;
                r_not = ~a;
            }
        """)
        program.poke_int("a", 0b1100_1010)
        program.poke_int("b", 0b1010_0101)
        program.call("main")
        assert program.peek_int("r_and") == 0b1000_0000
        assert program.peek_int("r_or") == 0b1110_1111
        assert program.peek_int("r_xor") == 0b0110_1111
        assert program.peek_int("r_shl") == 0b1100_1010 << 3
        assert program.peek_int("r_shr") == 0b1100_1010 >> 2
        assert program.peek_int("r_not") == (~0b1100_1010) & 0xFFFF

    @pytest.mark.parametrize("a,b", [(5, 3), (3, 5), (5, 5), (0, 0xFFFF),
                                     (0x7FFF, 0x8000)])
    def test_signed_comparisons(self, a, b):
        program = run("""
            int a; int b;
            int lt; int gt; int le; int ge; int eq; int ne;
            void main() {
                lt = a < b;  gt = a > b;
                le = a <= b; ge = a >= b;
                eq = a == b; ne = a != b;
            }
        """)
        program.poke_int("a", a)
        program.poke_int("b", b)
        program.call("main")

        def signed(v):
            return v - 0x10000 if v & 0x8000 else v

        sa, sb = signed(a), signed(b)
        assert program.peek_int("lt") == int(sa < sb)
        assert program.peek_int("gt") == int(sa > sb)
        assert program.peek_int("le") == int(sa <= sb)
        assert program.peek_int("ge") == int(sa >= sb)
        assert program.peek_int("eq") == int(sa == sb)
        assert program.peek_int("ne") == int(sa != sb)

    def test_short_circuit_evaluation(self):
        program = run("""
            int calls;
            int bump(void) { calls = calls + 1; return 1; }
            int r1; int r2;
            void main() {
                calls = 0;
                r1 = 0 && bump();
                r2 = 1 || bump();
            }
        """)
        program.call("main")
        assert program.peek_int("r1") == 0
        assert program.peek_int("r2") == 1
        assert program.peek_int("calls") == 0  # never evaluated

    def test_char_truncation_and_zero_extension(self):
        program = run("""
            char c;
            int wide;
            void main() {
                c = 300;        /* truncates to 44 */
                wide = c + 1;   /* zero-extends */
            }
        """)
        program.call("main")
        assert program.peek_int("c") == 300 & 0xFF
        assert program.peek_int("wide") == (300 & 0xFF) + 1

    def test_arrays_and_pointers(self):
        program = run("""
            char buf[8];
            int words[4];
            int sum;
            int sum_bytes(char* p, int n) {
                int i; int total;
                total = 0;
                for (i = 0; i < n; i = i + 1) total = total + p[i];
                return total;
            }
            void main() {
                int i;
                for (i = 0; i < 8; i = i + 1) buf[i] = i * i;
                for (i = 0; i < 4; i = i + 1) words[i] = 1000 * i;
                sum = sum_bytes(buf, 8);
            }
        """)
        program.call("main")
        assert program.peek_bytes("buf", 8) == bytes(i * i for i in range(8))
        assert program.peek_int("sum") == sum(i * i for i in range(8))
        words = program.peek_bytes("words", 8)
        assert int.from_bytes(words[6:8], "little") == 3000

    def test_statics_persist_across_calls(self):
        # Dynamic C: locals are static by default.
        program = run("""
            int counter(void) {
                int n;
                n = n + 1;
                return n;
            }
            int r;
            void main() { counter(); counter(); r = counter(); }
        """)
        program.call("main")
        assert program.peek_int("r") == 3

    def test_while_break_continue(self):
        program = run("""
            int r;
            void main() {
                int i;
                r = 0;
                i = 0;
                while (1) {
                    i = i + 1;
                    if (i == 3) continue;
                    if (i > 6) break;
                    r = r + i;
                }
            }
        """)
        program.call("main")
        assert program.peek_int("r") == 1 + 2 + 4 + 5 + 6

    def test_compound_assignment_and_incdec(self):
        program = run("""
            int r;
            void main() {
                r = 10;
                r += 5;
                r -= 2;
                r <<= 1;
                r |= 1;
                r++;
                --r;
            }
        """)
        program.call("main")
        assert program.peek_int("r") == ((10 + 5 - 2) << 1 | 1)

    def test_division_by_power_of_two(self):
        program = run("""
            int q; int m;
            void main() { q = 100 / 4; m = 100 % 8; }
        """)
        program.call("main")
        assert program.peek_int("q") == 25
        assert program.peek_int("m") == 4

    def test_division_by_non_power_rejected(self):
        with pytest.raises(CompileError):
            compile_source("int x; void main() { x = x / 3; }")

    def test_function_args_and_return(self):
        program = run("""
            int max3(int a, int b, int c) {
                if (a >= b && a >= c) return a;
                if (b >= c) return b;
                return c;
            }
        """)
        program.call("max3", 3, 9, 5)
        assert program.return_value == 9
        program.call("max3", 30, 9, 5)
        assert program.return_value == 30

    def test_nested_calls(self):
        program = run("""
            int double_(int x) { return x + x; }
            int quad(int x) { return double_(double_(x)); }
        """)
        program.call("quad", 5)
        assert program.return_value == 20

    def test_unknown_function_rejected(self):
        with pytest.raises(CompileError):
            compile_source("void main() { missing(); }")

    def test_wrong_arity_rejected(self):
        with pytest.raises(CompileError):
            compile_source("int f(int a) { return a; } void main() { f(); }")

    def test_undefined_variable_rejected(self):
        with pytest.raises(CompileError):
            compile_source("void main() { ghost = 1; }")

    def test_const_write_rejected(self):
        with pytest.raises(CompileError):
            compile_source("const char t[2] = {1,2}; void main() { t[0] = 9; }")


class TestPlacements:
    SOURCE = """
        const char table[16] = {0,1,4,9,16,25,36,49,64,81,100,121,144,169,196,225};
        int r;
        void main() {
            int i;
            r = 0;
            for (i = 0; i < 16; i = i + 1) r = r + table[i];
        }
    """

    @pytest.mark.parametrize("placement", ["flash", "root_ram", "xmem"])
    def test_results_identical_across_placements(self, placement):
        program = run(self.SOURCE,
                      CompilerOptions(data_placement=placement))
        program.call("main")
        assert program.peek_int("r") == sum(i * i for i in range(16))

    def test_xmem_costs_more_cycles(self):
        cycles = {}
        for placement in ("root_ram", "xmem"):
            program = run(self.SOURCE, CompilerOptions(data_placement=placement))
            cycles[placement] = program.call("main")
        assert cycles["xmem"] > cycles["root_ram"]

    def test_explicit_storage_specifier_overrides(self):
        source = """
            root const char a[2] = {1, 2};
            xmem const char b[2] = {3, 4};
            int r;
            void main() { r = a[0] + b[1]; }
        """
        program = run(source, CompilerOptions(data_placement="flash"))
        program.call("main")
        assert program.peek_int("r") == 5
        assert program.program if False else True
        symbols = program.compilation.globals_map
        assert symbols["a"].placement == "ram"
        assert symbols["b"].placement == "xmem"


class TestOptimizationKnobs:
    SOURCE = """
        int acc;
        void main() {
            int i;
            acc = 0;
            for (i = 0; i < 10; i = i + 1) acc = acc + i * i;
        }
    """

    def test_all_knobs_preserve_semantics(self):
        expected = sum(i * i for i in range(10))
        for options in (CompilerOptions(), BEST,
                        CompilerOptions(debug=False),
                        CompilerOptions(optimize=True),
                        CompilerOptions(unroll=True)):
            program = run(self.SOURCE, options)
            program.call("main")
            assert program.peek_int("acc") == expected, options.describe()

    def test_nodebug_is_faster(self):
        debug = run(self.SOURCE, CompilerOptions(debug=True))
        nodebug = run(self.SOURCE, CompilerOptions(debug=False))
        assert debug.call("main") > nodebug.call("main")

    def test_optimize_is_not_slower(self):
        plain = run(self.SOURCE, CompilerOptions(debug=False))
        optimized = run(self.SOURCE, CompilerOptions(debug=False, optimize=True))
        assert optimized.call("main") <= plain.call("main")

    def test_unroll_grows_code(self):
        rolled = compile_source(self.SOURCE, CompilerOptions())
        unrolled = compile_source(self.SOURCE, CompilerOptions(unroll=True))
        assert unrolled.code_size > rolled.code_size

    def test_unroll_skips_break_loops(self):
        source = """
            int r;
            void main() {
                int i;
                for (i = 0; i < 4; i = i + 1) { if (i == 2) break; r = i; }
            }
        """
        rolled = compile_source(source, CompilerOptions())
        unrolled = compile_source(source, CompilerOptions(unroll=True))
        assert unrolled.code_size == rolled.code_size  # loop left alone

    def test_nodebug_function_attribute(self):
        source = """
            nodebug void quiet(void) { int i; i = 1; }
            void loud(void) { int i; i = 1; }
        """
        compilation = compile_source(source, CompilerOptions(debug=True))
        # Only `loud` gets instrumented.
        assert compilation.statements_instrumented == 1


class TestPeephole:
    def test_push_pop_rewrite(self):
        source = "        push hl\n        pop  de\n"
        optimized = peephole_optimize(source)
        assert "push" not in optimized
        assert "ld   d, h" in optimized

    def test_label_never_consumed(self):
        source = "        push hl\nlabel:\n        pop  de\n"
        optimized = peephole_optimize(source)
        assert "label:" in optimized
        assert "push hl" in optimized  # pattern must NOT fire across labels

    def test_store_reload_elided(self):
        source = "        ld   (0xC300), hl\n        ld   hl, (0xC300)\n"
        optimized = peephole_optimize(source)
        assert optimized.count("0xC300") == 1

    def test_jump_to_next_removed(self):
        source = "        jp   next\nnext:\n        ret\n"
        optimized = peephole_optimize(source)
        assert "jp" not in optimized
