"""The indexed-cofunction slot pool: the runtime shape behind the
dynamic redirector (``cofunc void handler[NSLOTS]``-style slots driven
from one costatement)."""

import pytest

from repro.dync.runtime.costate import (
    CofunctionSlot,
    CostateScheduler,
    IndexedCofunctionPool,
)
from repro.net.sim import Simulator


def _ticker(log, label, busy_s=0.0, passes=3):
    for _ in range(passes):
        log.append(label)
        yield busy_s


class TestCofunctionSlot:
    def test_names_default_to_index(self):
        slot = CofunctionSlot(0, None)
        assert slot.name == "slot1"
        assert CofunctionSlot(4, None, name="custom").name == "custom"

    def test_step_accumulates_busy_and_passes(self):
        log = []
        slot = CofunctionSlot(0, _ticker(log, "a", busy_s=0.5, passes=2))
        assert slot.step() == 0.5
        assert slot.step() == 0.5
        assert not slot.done
        assert slot.step() == 0.0
        assert slot.done
        assert slot.passes == 3
        assert slot.total_busy_s == pytest.approx(1.0)

    def test_bind_attaches_body_later(self):
        log = []
        slot = CofunctionSlot(0, None)
        # An unbound slot idles: stepping it is a no-op, not an error.
        assert slot.step() == 0.0
        assert slot.passes == 0
        slot.bind(_ticker(log, "late", passes=1))
        slot.step()
        assert log == ["late"]


class TestIndexedCofunctionPool:
    def test_capacity_and_index_order(self):
        log = []
        pool = IndexedCofunctionPool()
        for label in ("a", "b", "c"):
            pool.add_slot(_ticker(log, label))
        assert pool.slot_capacity == 3
        assert [slot.index for slot in pool.slots] == [0, 1, 2]
        pool.step_all()
        # One big-loop pass advances every slot in index order.
        assert log == ["a", "b", "c"]

    def test_step_all_sums_busy_and_skips_done(self):
        log = []
        pool = IndexedCofunctionPool()
        pool.add_slot(_ticker(log, "x", busy_s=0.25, passes=1))
        pool.add_slot(_ticker(log, "y", busy_s=0.5, passes=2))
        assert pool.step_all() == pytest.approx(0.75)
        # x exhausted on the pass above; only y contributes now.
        assert pool.step_all() == pytest.approx(0.5)
        assert log == ["x", "y", "y"]

    def test_occupied_reflects_busy_flags(self):
        pool = IndexedCofunctionPool()
        a = pool.add_slot()
        pool.add_slot()
        assert pool.occupied == 0
        a.busy = True
        assert pool.occupied == 1


class TestSchedulerPoolIntegration:
    def test_add_pool_reports_slot_capacity(self):
        sim = Simulator()
        scheduler = CostateScheduler(sim)
        pool = IndexedCofunctionPool(name="pool")
        for _ in range(8):
            pool.add_slot()
        costate = scheduler.add_pool(pool)
        assert costate.name == "pool"
        assert costate.slot_capacity == 8

    def test_connection_slot_count_sums_capacities(self):
        """The scheduler's census mirrors dclint DC003's: a pooled
        costatement counts by its capacity, a plain one as one slot."""
        sim = Simulator()
        scheduler = CostateScheduler(sim)
        pool = IndexedCofunctionPool()
        for _ in range(5):
            pool.add_slot()
        scheduler.add_pool(pool)

        def plain():
            while True:
                yield

        scheduler.add(plain(), name="tick-driver")
        assert scheduler.connection_slot_count == 6

    def test_pool_runs_inside_big_loop(self):
        sim = Simulator()
        scheduler = CostateScheduler(sim)
        log = []
        pool = IndexedCofunctionPool()
        pool.add_slot(_ticker(log, "s1", passes=4))
        pool.add_slot(_ticker(log, "s2", passes=4))
        scheduler.add_pool(pool)
        scheduler.start()
        sim.run(until=sim.now + 1.0)
        scheduler.stop()
        assert log[:4] == ["s1", "s2", "s1", "s2"]
        assert all(slot.done for slot in pool.slots)
