"""Experiment harness and fast-path runner tests.

The full experiment battery runs in the benchmark suite; here we cover
the harness utilities and the cheap runners end to end, plus small-
workload versions of the expensive ones.
"""

import pytest

from repro.experiments import RUNNERS, run_e1, run_e6, run_e7, run_e8, run_e9
from repro.experiments.harness import ExperimentResult, format_table


class TestHarness:
    def test_format_table_alignment(self):
        rows = [{"name": "a", "value": 1}, {"name": "longer", "value": 22}]
        text = format_table(rows)
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].index("value") == lines[2].index("1")

    def test_format_table_empty(self):
        assert "(no rows)" in format_table([])

    def test_float_rendering(self):
        text = format_table([{"x": 1234567.0, "y": 0.123456}])
        assert "1,234,567" in text
        assert "0.123" in text

    def test_none_cell(self):
        assert "-" in format_table([{"x": None}])

    def test_result_format(self):
        result = ExperimentResult(
            experiment_id="EX",
            title="Title",
            paper_claim="claim",
            rows=[{"a": 1}],
            summary="sum",
            reproduced=True,
            notes="note",
        )
        text = result.format()
        assert "[EX] Title" in text
        assert "reproduced: YES" in text
        assert "notes: note" in text

    def test_runner_registry_complete(self):
        assert list(RUNNERS) == [f"E{i}" for i in range(1, 11)]


class TestCheapRunners:
    def test_e6(self):
        result = run_e6()
        assert result.reproduced

    def test_e7(self):
        result = run_e7()
        assert result.reproduced

    def test_e8(self):
        result = run_e8()
        assert result.reproduced

    def test_e9(self):
        result = run_e9()
        assert result.reproduced


class TestSmallWorkloadE1:
    def test_e1_minimal(self):
        result = run_e1(keys=1, blocks_per_key=1)
        assert result.reproduced
        assert len(result.rows) == 2


class TestCli:
    def test_unknown_id(self):
        from repro.experiments.__main__ import main

        assert main(["E42"]) == 2

    def test_single_experiment(self, capsys):
        from repro.experiments.__main__ import main

        assert main(["E9"]) == 0
        captured = capsys.readouterr()
        assert "[E9]" in captured.out
        assert "1/1 experiments reproduced" in captured.out
